//! Vendored, offline, API-compatible subset of `rand` 0.8.
//!
//! `StdRng` here is SplitMix64-based rather than ChaCha12, so it produces
//! *different sequences* than upstream for the same seed — but every
//! consumer in this workspace only needs determinism across runs of this
//! codebase, which SplitMix64 provides (and it is the same generator the
//! workspace's own simulation crates use).

use std::ops::Range;

/// Seedable generators (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Deterministically construct from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core sampling surface (`rand::Rng` subset).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open, like `rand::Rng::gen_range`
    /// with a `Range`).
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        let mut bits = || self.next_u64();
        T::sample(&mut bits, range)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Types samplable from a half-open `Range` (internal to this stub).
pub trait SampleRange: Sized {
    /// Draw a uniform sample from `range` using `bits` as the entropy
    /// source.
    fn sample(bits: &mut dyn FnMut() -> u64, range: Range<Self>) -> Self;
}

macro_rules! sample_uint {
    ($($t:ty),*) => {
        $(impl SampleRange for $t {
            fn sample(bits: &mut dyn FnMut() -> u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + (bits() % span) as $t
            }
        })*
    };
}
sample_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_int {
    ($($t:ty),*) => {
        $(impl SampleRange for $t {
            fn sample(bits: &mut dyn FnMut() -> u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                range.start.wrapping_add((bits() % span) as $t)
            }
        })*
    };
}
sample_int!(i8, i16, i32, i64, isize);

impl SampleRange for f64 {
    fn sample(bits: &mut dyn FnMut() -> u64, range: Range<Self>) -> Self {
        let unit = (bits() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleRange for f32 {
    fn sample(bits: &mut dyn FnMut() -> u64, range: Range<Self>) -> Self {
        f64::sample(bits, range.start as f64..range.end as f64) as f32
    }
}

/// Generator namespace (`rand::rngs`).
pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}
