//! The `Strategy` trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A generator of values (`proptest::strategy::Strategy` subset).
///
/// Object-safe: combinators (`prop_map`, `boxed`) carry `Self: Sized`
/// bounds so `Box<dyn Strategy<Value = T>>` works for `prop_oneof!`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Type-erase for heterogeneous unions.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among strategies (`prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the boxed arms.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

// ---- any::<T>() ----------------------------------------------------------

/// Types with a whole-domain default strategy (`proptest::arbitrary`
/// subset).
pub trait Arbitrary: Sized {
    /// Draw from the full domain of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // All bit patterns: covers NaN, infinities, subnormals — like
        // upstream's full-domain f64 strategy.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// Strategy form of [`Arbitrary`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `proptest::prelude::any::<T>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

// ---- numeric ranges ------------------------------------------------------

macro_rules! range_strategy_int {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        })*
    };
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64 + rng.unit_f64() * (self.end - self.start) as f64) as f32
    }
}

// ---- tuples --------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {
        $(impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        })*
    };
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---- regex-subset string strategies -------------------------------------

/// One regex atom with its repetition bounds.
struct Node {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn printable_ascii() -> Vec<char> {
    (0x20u8..=0x7e).map(|b| b as char).collect()
}

fn unescape(c: char) -> char {
    match c {
        't' => '\t',
        'n' => '\n',
        'r' => '\r',
        other => other,
    }
}

/// Parse the regex subset used by the workspace's tests: literals,
/// escapes, `.`, character classes with ranges, and the quantifiers
/// `{n}`, `{m,n}`, `*`, `+`, `?`.
fn parse_pattern(pat: &str) -> Vec<Node> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut nodes = Vec::new();
    while i < chars.len() {
        let choices: Vec<char> = match chars[i] {
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    // range like a-z (a trailing '-' is a literal)
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = chars[i + 2];
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(lo);
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                set
            }
            '.' => {
                i += 1;
                printable_ascii()
            }
            '\\' => {
                i += 1;
                let c = unescape(chars[i]);
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed {} quantifier in pattern")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(!choices.is_empty(), "empty character class in pattern `{pat}`");
        nodes.push(Node { choices, min, max });
    }
    nodes
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for node in parse_pattern(self) {
            let len = node.min + rng.below(node.max - node.min + 1);
            for _ in 0..len {
                out.push(node.choices[rng.below(node.choices.len())]);
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}
