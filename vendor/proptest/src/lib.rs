//! Vendored, offline, API-compatible subset of `proptest`.
//!
//! Implements the surface the workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config(...)]`), `prop_assert*`,
//! numeric-range and regex-string strategies, `Just`, `prop_map`,
//! `prop_oneof!`, `collection::vec`, and `bool::ANY`.
//!
//! Differences from upstream, deliberate for an offline stub: cases are
//! generated from a deterministic per-test RNG (seeded from the test
//! name, so runs are reproducible), and failing cases are *not* shrunk —
//! the failing input is reported by the plain `assert!` panic.

pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the test files import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// `prop_assert!` — plain `assert!` (no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!` — plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!` — plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among boxed strategies sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The `proptest!` test-definition macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest_internal!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest_internal!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal expansion of `proptest!`. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! proptest_internal {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            // `#[test]` arrives via $meta — the test files write it,
            // exactly as upstream proptest expects.
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                    $body
                }
            }
        )*
    };
}
