//! `proptest::bool` subset: the `ANY` strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding uniform booleans.
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// `proptest::bool::ANY`.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
