//! `proptest::collection` subset: `vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Length specification for [`vec`]: an exact size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max_exclusive: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max_exclusive: r.end }
    }
}

/// Strategy generating `Vec`s of `element` with lengths in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The strategy type returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max_exclusive - self.size.min;
        let len = self.size.min + rng.below(span.max(1));
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
