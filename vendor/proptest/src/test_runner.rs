//! Deterministic test RNG and run configuration.

/// Per-test configuration (`proptest::test_runner::ProptestConfig` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases (the only constructor the workspace
    /// uses).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator seeding each property test. SplitMix64 over an
/// FNV-1a hash of the fully-qualified test name: stable across runs and
/// machines, distinct per test.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[0, bound)` (`bound` must be nonzero).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
