//! Derive macros for the vendored `serde` subset.
//!
//! The container has no cargo registry, so this crate parses the item's
//! `TokenStream` by hand (no `syn`/`quote`) and emits impls of the
//! tree-based `serde::ser::Serialize` / `serde::de::Deserialize` traits.
//!
//! Supported shapes — exactly what the workspace derives on:
//! named structs, tuple structs (newtype and multi-field), unit structs,
//! and enums with unit / tuple / struct variants (externally tagged, like
//! real serde's default). Supported attributes: `#[serde(default)]` and
//! `#[serde(skip_serializing_if = "path")]`. Generic types are rejected
//! with a compile-time panic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default, Clone)]
struct FieldAttrs {
    default: bool,
    skip_serializing_if: Option<String>,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// ---------------------------------------------------------------- parsing

fn ident_at(toks: &[TokenTree], i: usize, what: &str) -> String {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive (vendored): expected {what}, found {other:?}"),
    }
}

/// Consume leading attributes, folding any `#[serde(...)]` contents into
/// the returned `FieldAttrs`. Doc comments (`#[doc = ...]`) and other
/// attributes are consumed and ignored.
fn parse_attrs(toks: &[TokenTree], i: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    loop {
        match (toks.get(*i), toks.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                parse_one_attr(g.stream(), &mut attrs);
                *i += 2;
            }
            _ => return attrs,
        }
    }
}

fn parse_one_attr(ts: TokenStream, attrs: &mut FieldAttrs) {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // not a serde attribute: ignore
    }
    let Some(TokenTree::Group(g)) = toks.get(1) else {
        return;
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        match &inner[j] {
            TokenTree::Punct(p) if p.as_char() == ',' => j += 1,
            TokenTree::Ident(id) => {
                let key = id.to_string();
                let has_eq =
                    matches!(inner.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=');
                match key.as_str() {
                    "default" if !has_eq => {
                        attrs.default = true;
                        j += 1;
                    }
                    "skip_serializing_if" if has_eq => {
                        let lit = match inner.get(j + 2) {
                            Some(TokenTree::Literal(l)) => l.to_string(),
                            other => panic!(
                                "serde_derive (vendored): skip_serializing_if expects a string \
                                 literal, found {other:?}"
                            ),
                        };
                        attrs.skip_serializing_if = Some(lit.trim_matches('"').to_string());
                        j += 3;
                    }
                    other => panic!(
                        "serde_derive (vendored): unsupported serde attribute `{other}` — \
                         supported: default, skip_serializing_if"
                    ),
                }
            }
            other => panic!("serde_derive (vendored): unexpected token in serde attr: {other:?}"),
        }
    }
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        // pub(crate), pub(super), ...
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Advance past a type, stopping at a top-level `,` (depth-aware over
/// `<`/`>` so `BTreeMap<String, Value>` stays one field).
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = toks.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let attrs = parse_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let name = ident_at(&toks, i, "field name");
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive (vendored): expected `:` after field, found {other:?}"),
        }
        skip_type(&toks, &mut i);
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field { name, attrs });
    }
    fields
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    commas + usize::from(!trailing_comma)
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        let _attrs = parse_attrs(&toks, &mut i);
        let name = ident_at(&toks, i, "variant name");
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip a possible `= discriminant` and the separating comma.
        while i < toks.len()
            && !matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',')
        {
            i += 1;
        }
        if i < toks.len() {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let _ = parse_attrs(&toks, &mut i); // item-level attrs: consumed, unused
    skip_vis(&toks, &mut i);
    let kw = ident_at(&toks, i, "`struct` or `enum`");
    i += 1;
    let name = ident_at(&toks, i, "type name");
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported (deriving on `{name}`)");
    }
    let body = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Body::UnitStruct,
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive (vendored): expected enum body, found {other:?}"),
        },
        other => panic!("serde_derive (vendored): cannot derive on `{other}` items"),
    };
    Item { name, body }
}

// --------------------------------------------------------------- codegen

/// Insert statements for a set of named fields into map `map_var`, reading
/// each field through `access` (e.g. `&self.` or `` for match bindings).
fn ser_named_inserts(fields: &[Field], map_var: &str, access: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let n = &f.name;
        let insert = format!(
            "{map_var}.insert(\"{n}\".to_string(), _serde::ser::Serialize::to_value({access}{n}));"
        );
        if let Some(skip) = &f.attrs.skip_serializing_if {
            out.push_str(&format!("if !{skip}({access}{n}) {{ {insert} }}\n"));
        } else {
            out.push_str(&insert);
            out.push('\n');
        }
    }
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => format!(
            "let mut __m = _serde::__priv::Map::new();\n{}_serde::__priv::Value::Object(__m)",
            ser_named_inserts(fields, "__m", "&self.")
        ),
        Body::TupleStruct(1) => "_serde::ser::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("_serde::ser::Serialize::to_value(&self.{k})"))
                .collect();
            format!("_serde::__priv::Value::Array(vec![{}])", elems.join(", "))
        }
        Body::UnitStruct => "_serde::__priv::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "Self::{vn} => _serde::__priv::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let payload = if *n == 1 {
                            "_serde::ser::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("_serde::ser::Serialize::to_value({b})"))
                                .collect();
                            format!("_serde::__priv::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "Self::{vn}({binds}) => {{\n\
                             let mut __m = _serde::__priv::Map::new();\n\
                             __m.insert(\"{vn}\".to_string(), {payload});\n\
                             _serde::__priv::Value::Object(__m)\n\
                             }},\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        arms.push_str(&format!(
                            "Self::{vn} {{ {binds} }} => {{\n\
                             let mut __inner = _serde::__priv::Map::new();\n\
                             {inserts}\
                             let mut __m = _serde::__priv::Map::new();\n\
                             __m.insert(\"{vn}\".to_string(), _serde::__priv::Value::Object(__inner));\n\
                             _serde::__priv::Value::Object(__m)\n\
                             }},\n",
                            binds = binds.join(", "),
                            inserts = ser_named_inserts(fields, "__inner", "")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "const _: () = {{\n\
         extern crate serde as _serde;\n\
         #[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl _serde::ser::Serialize for {name} {{\n\
         fn to_value(&self) -> _serde::__priv::Value {{\n\
         {body}\n\
         }}\n\
         }}\n\
         }};"
    )
}

/// Expression for a missing named field during deserialization.
fn de_missing_expr(ty_name: &str, f: &Field) -> String {
    if f.attrs.default {
        "std::default::Default::default()".to_string()
    } else {
        // Option fields resolve to None via Null; required fields surface
        // a `missing field` error.
        format!(
            "_serde::de::Deserialize::from_value(&_serde::__priv::Value::Null)\
             .map_err(|_| _serde::__priv::missing_field(\"{ty_name}\", \"{n}\"))?",
            n = f.name
        )
    }
}

/// Field initializers for a named-fields body read from map `map_var`.
fn de_named_inits(ty_name: &str, fields: &[Field], map_var: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let n = &f.name;
        out.push_str(&format!(
            "{n}: match {map_var}.get(\"{n}\") {{\n\
             std::option::Option::Some(__f) => _serde::de::Deserialize::from_value(__f)?,\n\
             std::option::Option::None => {missing},\n\
             }},\n",
            missing = de_missing_expr(ty_name, f)
        ));
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => format!(
            "match __v {{\n\
             _serde::__priv::Value::Object(__m) => std::result::Result::Ok(Self {{\n\
             {inits}\
             }}),\n\
             __other => std::result::Result::Err(_serde::__priv::invalid_type(\"{name}\", __other)),\n\
             }}",
            inits = de_named_inits(name, fields, "__m")
        ),
        Body::TupleStruct(1) => {
            "std::result::Result::Ok(Self(_serde::de::Deserialize::from_value(__v)?))".to_string()
        }
        Body::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("_serde::de::Deserialize::from_value(&__a[{k}])?"))
                .collect();
            format!(
                "match __v {{\n\
                 _serde::__priv::Value::Array(__a) if __a.len() == {n} => \
                 std::result::Result::Ok(Self({elems})),\n\
                 __other => std::result::Result::Err(_serde::__priv::invalid_type(\"{name}\", __other)),\n\
                 }}",
                elems = elems.join(", ")
            )
        }
        Body::UnitStruct => "std::result::Result::Ok(Self)".to_string(),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => std::result::Result::Ok(Self::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => payload_arms.push_str(&format!(
                        "\"{vn}\" => std::result::Result::Ok(Self::{vn}(\
                         _serde::de::Deserialize::from_value(__payload)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("_serde::de::Deserialize::from_value(&__a[{k}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => match __payload {{\n\
                             _serde::__priv::Value::Array(__a) if __a.len() == {n} => \
                             std::result::Result::Ok(Self::{vn}({elems})),\n\
                             __bad => std::result::Result::Err(_serde::__priv::invalid_type(\"{name}\", __bad)),\n\
                             }},\n",
                            elems = elems.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => payload_arms.push_str(&format!(
                        "\"{vn}\" => match __payload {{\n\
                         _serde::__priv::Value::Object(__fields) => std::result::Result::Ok(Self::{vn} {{\n\
                         {inits}\
                         }}),\n\
                         __bad => std::result::Result::Err(_serde::__priv::invalid_type(\"{name}\", __bad)),\n\
                         }},\n",
                        inits = de_named_inits(name, fields, "__fields")
                    )),
                }
            }
            format!(
                "match __v {{\n\
                 _serde::__priv::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 _ => std::result::Result::Err(_serde::__priv::unknown_variant(\"{name}\", __v)),\n\
                 }},\n\
                 _serde::__priv::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__k, __payload) = __m.iter().next().unwrap();\n\
                 match __k.as_str() {{\n\
                 {payload_arms}\
                 _ => std::result::Result::Err(_serde::__priv::unknown_variant(\"{name}\", __v)),\n\
                 }}\n\
                 }},\n\
                 __other => std::result::Result::Err(_serde::__priv::invalid_type(\"{name}\", __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "const _: () = {{\n\
         extern crate serde as _serde;\n\
         #[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl<'de> _serde::de::Deserialize<'de> for {name} {{\n\
         fn from_value(__v: &_serde::__priv::Value) -> std::result::Result<Self, _serde::__priv::Error> {{\n\
         {body}\n\
         }}\n\
         }}\n\
         }};"
    )
}

// ---------------------------------------------------------- entry points

/// `#[derive(Serialize)]`
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive (vendored): generated invalid Rust for Serialize")
}

/// `#[derive(Deserialize)]`
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive (vendored): generated invalid Rust for Deserialize")
}
