//! Vendored, offline, API-compatible subset of `criterion`.
//!
//! Runs each benchmark routine a small fixed number of iterations and
//! prints a single mean-time line per benchmark — enough to execute the
//! workspace's `benches/` targets and eyeball relative costs, without
//! upstream's statistics, plotting, or CLI. Timings come from
//! `std::time::Instant` and are **not** part of any determinism gate.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const ITERS: u32 = 10;

/// How `iter_batched` amortizes setup (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One batch per allocation.
    PerIteration,
}

/// Throughput annotation (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Benchmark identifier (`criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Time `routine` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = ITERS;
    }

    /// Time `routine` with fresh per-iteration input from `setup`
    /// (setup time excluded).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = ITERS;
    }
}

fn report(group: &str, name: &str, b: &Bencher) {
    let per_iter = if b.iters > 0 {
        b.elapsed / b.iters
    } else {
        Duration::ZERO
    };
    if group.is_empty() {
        println!("bench {name}: {per_iter:?}/iter");
    } else {
        println!("bench {group}/{name}: {per_iter:?}/iter");
    }
}

/// Top-level benchmark driver (`criterion::Criterion`).
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        report("", name, &b);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into() }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this stub always runs a fixed
    /// iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        report(&self.name, &id.to_string(), &b);
        self
    }

    /// Run a parameterized benchmark inside the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut b, input);
        report(&self.name, &id.to_string(), &b);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Declare a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
