//! The JSON-shaped data model shared by the vendored `serde` and
//! `serde_json` crates. `serde_json` re-exports [`Value`], [`Map`] and
//! [`Number`]; the `Serialize`/`Deserialize` traits convert through this
//! tree instead of serde's streaming visitors.

use std::collections::BTreeMap;
use std::fmt;

/// Deserialization/serialization error (message-only, like
/// `serde_json::Error` as the workspace consumes it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// A new error carrying `msg`.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A JSON number. Mirrors `serde_json::Number`'s storage: non-negative
/// integers as `u64`, negative integers as `i64`, everything else `f64`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Negative integer.
    NegInt(i64),
    /// Non-negative integer.
    PosInt(u64),
    /// Finite float.
    Float(f64),
}

impl Number {
    /// As `i64` if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::NegInt(i) => Some(i),
            Number::PosInt(u) => i64::try_from(u).ok(),
            Number::Float(_) => None,
        }
    }

    /// As `u64` if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::NegInt(i) => u64::try_from(i).ok(),
            Number::PosInt(u) => Some(u),
            Number::Float(_) => None,
        }
    }

    /// As `f64` (integers convert losslessly within 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::NegInt(i) => Some(i as f64),
            Number::PosInt(u) => Some(u as f64),
            Number::Float(f) => Some(f),
        }
    }

    /// Float constructor matching `serde_json::Number::from_f64` (rejects
    /// NaN and infinities).
    pub fn from_f64(f: f64) -> Option<Number> {
        if f.is_finite() {
            Some(Number::Float(f))
        } else {
            None
        }
    }

    /// True when the number is stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self, Number::Float(_))
    }

    /// True when representable as `i64`.
    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }

    /// True when representable as `u64`.
    pub fn is_u64(&self) -> bool {
        matches!(self, Number::PosInt(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::Float(a), Number::Float(b)) => a == b,
            (Number::Float(_), _) | (_, Number::Float(_)) => false,
            _ => match (self.as_i64(), other.as_i64(), self.as_u64(), other.as_u64()) {
                (Some(a), Some(b), _, _) => a == b,
                (_, _, Some(a), Some(b)) => a == b,
                _ => false,
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::NegInt(i) => write!(f, "{i}"),
            Number::PosInt(u) => write!(f, "{u}"),
            // `{:?}` is shortest-roundtrip and always keeps a decimal
            // point ("1.0"), matching serde_json's ryu output for the
            // values this workspace produces.
            Number::Float(v) => write!(f, "{v:?}"),
        }
    }
}

macro_rules! number_from_int {
    ($($u:ty),*; $($i:ty),*) => {
        $(impl From<$u> for Number {
            fn from(v: $u) -> Number { Number::PosInt(v as u64) }
        })*
        $(impl From<$i> for Number {
            fn from(v: $i) -> Number {
                if v < 0 { Number::NegInt(v as i64) } else { Number::PosInt(v as u64) }
            }
        })*
    };
}
number_from_int!(u8, u16, u32, u64, usize; i8, i16, i32, i64, isize);

/// Object storage: alphabetical key order, exactly like default-feature
/// `serde_json::Map`.
pub type Map<K = String, V = Value> = BTreeMap<K, V>;

/// A JSON value tree (`serde_json::Value` work-alike).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

impl Value {
    /// `&str` view of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// `i64` view of an integer value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// `u64` view of a non-negative integer value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// `f64` view of any numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// `bool` view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable array view.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable object view.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True for strings.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// True for numbers.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// True for booleans.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// True for arrays.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// True for objects.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// True for integers representable as `i64`.
    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }

    /// True for integers representable as `u64`.
    pub fn is_u64(&self) -> bool {
        self.as_u64().is_some()
    }

    /// True for float-stored numbers.
    pub fn is_f64(&self) -> bool {
        matches!(self, Value::Number(Number::Float(_)))
    }

    /// Key lookup on objects (`None` elsewhere). Index lookup is available
    /// through `Index<usize>`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Mutable key lookup on objects.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.as_object_mut().and_then(|m| m.get_mut(key))
    }

    /// Take the value, leaving `Null` behind.
    pub fn take(&mut self) -> Value {
        std::mem::take(self)
    }
}

/// Shared sentinel for missing-index reads.
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.is_null() {
            *self = Value::Object(Map::new());
        }
        self.as_object_mut()
            .expect("cannot index non-object Value with a string key")
            .entry(key.to_string())
            .or_insert(Value::Null)
    }
}

// ---- From conversions (the set json! and app code rely on) -------------

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}
impl From<Number> for Value {
    fn from(n: Number) -> Value {
        Value::Number(n)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

macro_rules! value_from_num {
    ($($t:ty),*) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::from(v)) }
        })*
    };
}
value_from_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Number::from_f64(v).map(Value::Number).unwrap_or(Value::Null)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::from(v as f64)
    }
}

// ---- PartialEq against primitives (assert_eq! ergonomics) ---------------

macro_rules! value_eq_num {
    ($($t:ty => $as:ident),*) => {
        $(
            impl PartialEq<$t> for Value {
                // Lifting the primitive into a Value is the point: it
                // reuses Number's eq semantics (u64/i64/f64 unification).
                #[allow(clippy::cmp_owned)]
                fn eq(&self, other: &$t) -> bool {
                    Value::from(*other) == *self
                }
            }
            impl PartialEq<Value> for $t {
                #[allow(clippy::cmp_owned)]
                fn eq(&self, other: &Value) -> bool {
                    Value::from(*self) == *other
                }
            }
            #[allow(unused)]
            fn $as() {}
        )*
    };
}
value_eq_num!(u8 => _vu8, u16 => _vu16, u32 => _vu32, u64 => _vu64, usize => _vusz,
              i8 => _vi8, i16 => _vi16, i32 => _vi32, i64 => _vi64, isize => _visz,
              f32 => _vf32, f64 => _vf64);

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}
impl PartialEq<Value> for str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(self)
    }
}
impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}
impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(self.as_str())
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
impl PartialEq<Value> for bool {
    fn eq(&self, other: &Value) -> bool {
        other.as_bool() == Some(*self)
    }
}

// ---- Display: compact JSON, byte-compatible with serde_json ------------

/// Escape `s` into `out` exactly the way serde_json does (short escapes
/// for the classic control characters, `\u00XX` for the rest, raw UTF-8
/// beyond ASCII).
pub fn escape_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_str(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(e, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, e)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_str(k, out);
                out.push(':');
                write_compact(e, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const PAD: &str = "  ";
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&PAD.repeat(indent + 1));
                write_pretty(e, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, e)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&PAD.repeat(indent + 1));
                escape_str(k, out);
                out.push_str(": ");
                write_pretty(e, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        if f.alternate() {
            write_pretty(self, 0, &mut s);
        } else {
            write_compact(self, &mut s);
        }
        f.write_str(&s)
    }
}

/// Compact rendering (what `serde_json::to_string(&value)` yields).
pub fn to_compact_string(v: &Value) -> String {
    let mut s = String::new();
    write_compact(v, &mut s);
    s
}

/// Pretty rendering with two-space indentation
/// (`serde_json::to_string_pretty`).
pub fn to_pretty_string(v: &Value) -> String {
    let mut s = String::new();
    write_pretty(v, 0, &mut s);
    s
}
