//! `Deserialize`: rebuild a value from the
//! [`Value`](crate::value::Value) tree. The lifetime parameter exists
//! only so `for<'de> Deserialize<'de>` bounds written against real serde
//! keep compiling; this implementation always copies out of the tree.

use crate::value::{Error, Value};

/// Types reconstructible from a [`Value`].
pub trait Deserialize<'de>: Sized {
    /// Parse `v` into `Self`, or describe why it doesn't fit.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Owned-deserialization alias (`serde::de::DeserializeOwned`).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

fn type_err<T>(ty: &str, v: &Value) -> Result<T, Error> {
    Err(crate::__priv::invalid_type(ty, v))
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| crate::__priv::invalid_type("bool", v))
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => type_err("String", other),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_str().and_then(|s| {
            let mut it = s.chars();
            match (it.next(), it.next()) {
                (Some(c), None) => Some(c),
                _ => None,
            }
        }) {
            Some(c) => Ok(c),
            None => type_err("char", v),
        }
    }
}

macro_rules! de_signed {
    ($($t:ty),*) => {
        $(impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| crate::__priv::invalid_type(stringify!($t), v))
            }
        })*
    };
}
de_signed!(i8, i16, i32, i64, isize);

macro_rules! de_unsigned {
    ($($t:ty),*) => {
        $(impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| crate::__priv::invalid_type(stringify!($t), v))
            }
        })*
    };
}
de_unsigned!(u8, u16, u32, u64, usize);

impl<'de> Deserialize<'de> for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| crate::__priv::invalid_type("f64", v))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| crate::__priv::invalid_type("f32", v))
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("Vec", other),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<'de, V: for<'a> Deserialize<'a>> Deserialize<'de>
    for std::collections::BTreeMap<String, V>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, e)| Ok((k.clone(), V::from_value(e)?)))
                .collect(),
            other => type_err("BTreeMap", other),
        }
    }
}

impl<'de, V: for<'a> Deserialize<'a>> Deserialize<'de>
    for std::collections::HashMap<String, V>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, e)| Ok((k.clone(), V::from_value(e)?)))
                .collect(),
            other => type_err("HashMap", other),
        }
    }
}

impl<'de, A: for<'a> Deserialize<'a>, B: for<'a> Deserialize<'a>> Deserialize<'de> for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => type_err("tuple", other),
        }
    }
}
