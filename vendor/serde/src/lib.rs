//! Vendored, offline, API-compatible subset of `serde`.
//!
//! The build container has no network and no cargo registry, so the
//! workspace vendors the small slice of serde it actually uses (see
//! `vendor/README.md`). The data model is deliberately simple: values
//! serialize straight into a JSON-shaped [`Value`] tree (re-exported by
//! the vendored `serde_json` crate) instead of through serde's streaming
//! `Serializer`/`Deserializer` visitors. The public surface the workspace
//! consumes — `serde::{Serialize, Deserialize}` traits and derive macros,
//! `#[serde(default)]`, `#[serde(skip_serializing_if = "...")]` — behaves
//! like the real crate.

pub mod de;
pub mod ser;
pub mod value;

pub use de::Deserialize;
pub use ser::Serialize;
/// Derive macros, shadowing the traits in the macro namespace exactly the
/// way real serde's `derive` feature does.
pub use serde_derive::{Deserialize, Serialize};

/// Internal plumbing used by generated derive code and by `serde_json`.
/// Not part of the emulated public API.
pub mod __priv {
    pub use crate::value::{Error, Map, Number, Value};

    /// `missing field` error constructor for derive-generated code.
    pub fn missing_field(ty: &str, field: &str) -> Error {
        Error::new(format!("missing field `{field}` in `{ty}`"))
    }

    /// `unknown variant` error constructor for derive-generated code.
    pub fn unknown_variant(ty: &str, got: &crate::value::Value) -> Error {
        Error::new(format!("unknown variant for `{ty}`: {got}"))
    }

    /// `invalid type` error constructor for derive-generated code.
    pub fn invalid_type(ty: &str, got: &crate::value::Value) -> Error {
        Error::new(format!("invalid type for `{ty}`: expected shape not found in {got}"))
    }
}
