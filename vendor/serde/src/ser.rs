//! `Serialize`: convert a value into the [`Value`](crate::value::Value)
//! tree. The derive macro generates `to_value` bodies; everything in
//! `serde_json` renders from the tree.

use crate::value::{Map, Number, Value};

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Build the JSON value tree for `self`.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! ser_num {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::from(*self)) }
        })*
    };
}
ser_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::from(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::from(*self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}
