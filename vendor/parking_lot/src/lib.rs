//! Vendored, offline, API-compatible subset of `parking_lot`.
//!
//! Thin wrappers over `std::sync` locks exposing parking_lot's
//! poison-free API: `lock()`/`read()`/`write()` return guards directly.
//! A poisoned std lock (panicking holder) is recovered transparently,
//! matching parking_lot's no-poisoning semantics.

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// `parking_lot::Mutex` work-alike.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (no poison `Result`, like parking_lot).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// `parking_lot::RwLock` work-alike.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// New lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}
