//! Vendored, offline, API-compatible subset of `bytes`.
//!
//! `Bytes`/`BytesMut` are plain `Vec<u8>` wrappers (no refcounted slab —
//! the workspace only frames and unframes small messages), and the
//! `Buf`/`BufMut` traits cover the big-endian accessors the protocol
//! layer uses.

use std::ops::Deref;

/// Immutable byte buffer (`bytes::Bytes` work-alike).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Empty buffer.
    pub const fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrow as a slice. Kept as an inherent method to mirror the real
    /// `bytes` crate's call sites (`buf.as_ref()` without a trait import).
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.0
    }

    /// Copy out the underlying bytes.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    /// Split off the bytes after `at`, keeping `[0, at)` in `self`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let rest = self.0.split_off(at);
        Bytes(std::mem::replace(&mut self.0, rest))
    }

    /// Sub-slice copy (`bytes::Bytes::slice`).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes(self.0[range].to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes(v.to_vec())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes(v.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes(v.into_bytes())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

/// Growable byte buffer (`bytes::BytesMut` work-alike).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer.
    pub const fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Reserve additional capacity.
    pub fn reserve(&mut self, additional: usize) {
        self.0.reserve(additional);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Split off the bytes after `at`, keeping `[0, at)` in `self`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.0.split_off(at);
        BytesMut(std::mem::replace(&mut self.0, rest))
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read-side cursor trait (`bytes::Buf` subset). Implemented for `&[u8]`,
/// advancing the slice as values are read.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Advance the cursor by `cnt`.
    fn advance(&mut self, cnt: usize);
    /// View of the remaining bytes.
    fn chunk(&self) -> &[u8];

    /// Read a big-endian `u32` and advance.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Read a big-endian `u64` and advance.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let mut b = [0u8; 8];
        b.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Read one byte and advance.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write-side trait (`bytes::BufMut` subset) for [`BytesMut`].
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, data: &[u8]);

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}
