//! Recursive-descent JSON parser producing [`Value`] trees.

use crate::{Error, Map, Number, Value};

pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), Error> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(())
        } else {
            Err(Error::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    Error::new(format!("bad \\u escape at byte {}", self.pos))
                                })?;
                            // Surrogate pairs are not needed by this
                            // workspace; lone surrogates map to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let start = self.pos;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?;
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(Error::new(format!(
                            "unescaped control character at byte {start}"
                        )));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(format!("invalid number: {e}")))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
        }
        text.parse::<f64>()
            .ok()
            .and_then(Number::from_f64)
            .map(Value::Number)
            .ok_or_else(|| Error::new(format!("invalid number `{text}` at byte {start}")))
    }
}
