//! Vendored, offline, API-compatible subset of `serde_json`.
//!
//! Backed by the vendored `serde` crate's [`Value`] tree. Covers the
//! surface the workspace uses: `json!`, `Value`/`Map`/`Number`,
//! `to_value`/`from_value`, `to_string`/`to_string_pretty`/`to_vec`,
//! `from_str`/`from_slice`, and the value accessors. Rendering is
//! byte-compatible with default-feature serde_json for the value shapes
//! this workspace produces (compact `,`/`:` separators, 2-space pretty
//! indent, alphabetical object keys, `ryu`-style float text for the
//! simple floats emitted here).

use serde::de::Deserialize;
use serde::ser::Serialize;

pub use serde::__priv::{Error, Map, Number, Value};

mod parse;

/// `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Deserialize a `T` out of a [`Value`] tree.
pub fn from_value<T: for<'de> Deserialize<'de>>(value: Value) -> Result<T> {
    T::from_value(&value)
}

/// Compact JSON text for `value`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::value::to_compact_string(&value.to_value()))
}

/// Pretty JSON text (2-space indent) for `value`.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::value::to_pretty_string(&value.to_value()))
}

/// Compact JSON bytes for `value`.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Parse JSON text into a `T`.
pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T> {
    let v = parse::parse(s)?;
    T::from_value(&v)
}

/// Parse JSON bytes into a `T`.
pub fn from_slice<'a, T: Deserialize<'a>>(bytes: &'a [u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    let v = parse::parse(s)?;
    T::from_value(&v)
}

/// Construct a [`Value`] from JSON-ish literal syntax, like the real
/// `serde_json::json!` macro. Keys must be string literals (the only form
/// the workspace uses); values may be any serializable expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::Value::Array($crate::json_array_internal!([] $($tt)*)) };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __jm = $crate::Map::new();
        $crate::json_object_internal!(__jm () $($tt)*);
        $crate::Value::Object(__jm)
    }};
    ($other:expr) => { $crate::to_value(&$other).unwrap() };
}

/// Internal: array elements accumulator. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_internal {
    // done
    ([ $($elem:expr,)* ]) => { vec![ $($elem,)* ] };
    // trailing comma already consumed by the per-element arms
    ([ $($elem:expr,)* ] null $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!([ $($elem,)* $crate::Value::Null, ] $($($rest)*)?)
    };
    ([ $($elem:expr,)* ] true $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!([ $($elem,)* $crate::Value::Bool(true), ] $($($rest)*)?)
    };
    ([ $($elem:expr,)* ] false $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!([ $($elem,)* $crate::Value::Bool(false), ] $($($rest)*)?)
    };
    ([ $($elem:expr,)* ] [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!([ $($elem,)* $crate::json!([ $($arr)* ]), ] $($($rest)*)?)
    };
    ([ $($elem:expr,)* ] { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!([ $($elem,)* $crate::json!({ $($obj)* }), ] $($($rest)*)?)
    };
    ([ $($elem:expr,)* ] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!([ $($elem,)* $crate::json!($next), ] $($($rest)*)?)
    };
}

/// Internal: object member accumulator. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    // done
    ($map:ident ()) => {};
    // skip a separating comma before the next key
    ($map:ident () , $($rest:tt)*) => {
        $crate::json_object_internal!($map () $($rest)*);
    };
    // capture the key
    ($map:ident () $key:literal : $($rest:tt)*) => {
        $crate::json_object_internal!($map ($key) $($rest)*);
    };
    // values: special forms before the generic expr arm
    ($map:ident ($key:literal) null $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::Value::Null);
        $crate::json_object_internal!($map () $($rest)*);
    };
    ($map:ident ($key:literal) true $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::Value::Bool(true));
        $crate::json_object_internal!($map () $($rest)*);
    };
    ($map:ident ($key:literal) false $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::Value::Bool(false));
        $crate::json_object_internal!($map () $($rest)*);
    };
    ($map:ident ($key:literal) [ $($arr:tt)* ] $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!([ $($arr)* ]));
        $crate::json_object_internal!($map () $($rest)*);
    };
    ($map:ident ($key:literal) { $($obj:tt)* } $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!({ $($obj)* }));
        $crate::json_object_internal!($map () $($rest)*);
    };
    // generic expression value: runs to the next top-level comma
    ($map:ident ($key:literal) $value:expr , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!($value));
        $crate::json_object_internal!($map () $($rest)*);
    };
    ($map:ident ($key:literal) $value:expr) => {
        $map.insert($key.to_string(), $crate::json!($value));
    };
}
