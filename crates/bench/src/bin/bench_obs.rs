//! Observability-layer benchmark + gates (E9).
//!
//! Drives one mixed serving workload — sequential chats over a fleet with
//! a spiked replica (so hedging fires), a batched `chat_many` through the
//! continuous-batching engine, and RAG retrievals sharing the same
//! [`dbgpt_obs::Obs`] handle — three ways:
//!
//! 1. **Identity gate**: observability disabled vs enabled must produce
//!    byte-identical outcomes, clock advance and resilience metrics.
//! 2. **Determinism gate**: two enabled runs must dump byte-identical
//!    trace JSON and metric snapshots.
//! 3. **Overhead**: wall-clock cost per request, disabled vs enabled
//!    (printed only — the committed JSON stays deterministic).
//!
//! It also prints the rendered trace tree of a hedged request and of the
//! batched `chat_many` drain — the debugging view the obs crate exists
//! for — and emits `results/BENCH_obs.json`.
//!
//! ```text
//! cargo run -p dbgpt-bench --release --bin bench_obs            # full
//! cargo run -p dbgpt-bench --release --bin bench_obs -- --smoke # CI gate
//! ```

use std::fmt::Write as _;
use std::fs;
use std::time::Instant;

use dbgpt_llm::GenerationParams;
use dbgpt_obs::render::render_metrics;
use dbgpt_obs::ObsConfig;
use dbgpt_rag::knowledge::KnowledgeBase;
use dbgpt_rag::retriever::RetrievalStrategy;
use dbgpt_smmf::{
    ApiServer, DeploymentMode, EngineConfig, HedgeConfig, ResilienceConfig, RoutingPolicy,
};

/// Seed for every run.
const SEED: u64 = 42;

/// What one workload run looks like from the caller's side — everything
/// observability must NOT change.
type Semantics = (Vec<Result<(String, u64), &'static str>>, u64, String);

/// Run the mixed workload; return its semantics plus the server and
/// knowledge base (for trace/metric inspection).
fn run_workload(chats: usize, batch: usize, obs: ObsConfig) -> (Semantics, ApiServer, KnowledgeBase) {
    let cfg = ResilienceConfig {
        hedge: Some(HedgeConfig { delay_us: 50_000 }),
        deadline_budget_us: None,
        ..ResilienceConfig::full()
    };
    let mut s = ApiServer::with_observability(
        DeploymentMode::Local,
        RoutingPolicy::LeastLatency,
        SEED,
        cfg,
        EngineConfig::full(),
        obs,
    );
    s.deploy_builtin("sim-qwen", 3).unwrap();
    // Spike replica w0: least-latency dispatches to it first (all cold),
    // its slow response exceeds the hedge delay, and the hedge races a
    // healthy sibling — every first chat produces a hedged trace.
    s.controller().workers("sim-qwen").unwrap()[0].set_latency_factor(100.0);

    let mut kb = KnowledgeBase::with_defaults();
    kb.set_obs(s.obs().clone());
    kb.add_text("awel", "AWEL composes agents into directed acyclic graphs.");
    kb.add_text("smmf", "SMMF keeps model serving private, local and observable.");
    kb.add_text("rag", "Retrieval augmented generation enriches prompts with context.");

    let mut outcomes = Vec::new();
    for i in 0..chats {
        s.advance_clock(5_000);
        let hits = kb.retrieve("model serving context", 2, RetrievalStrategy::Hybrid);
        let prompt = format!(
            "### context: {}\nQ{i}: explain join ordering",
            hits.first().map(|h| h.chunk.text.as_str()).unwrap_or("")
        );
        outcomes.push(
            s.chat("sim-qwen", &prompt, &GenerationParams::default())
                .map(|c| (c.text, c.simulated_latency_us))
                .map_err(|e| e.kind()),
        );
    }
    let jobs: Vec<(String, GenerationParams)> = (0..batch)
        .map(|i| {
            (
                format!("### system: data copilot\nshared prefix\nQ{i}: join ordering?"),
                GenerationParams::default(),
            )
        })
        .collect();
    for r in s.chat_many("sim-qwen", &jobs) {
        outcomes.push(r.map(|c| (c.text, c.simulated_latency_us)).map_err(|e| e.kind()));
    }
    let now = s.now_us();
    let metrics = format!("{:?}", s.metrics());
    ((outcomes, now, metrics), s, kb)
}

/// The sweep, callable from `main` (and reusable from harnesses).
pub fn run(smoke: bool, out_path: &str) {
    let (chats, batch, reps, mode) = if smoke {
        (8usize, 6usize, 20u32, "smoke")
    } else {
        (40usize, 16usize, 200u32, "full")
    };
    println!("BENCH obs ({mode})");
    println!("  {chats} chats + {batch} batched jobs, seed = {SEED}, simulated clock (deterministic)");

    // Gate 1: observability must be invisible to request semantics.
    let (sem_off, s_off, _) = run_workload(chats, batch, ObsConfig::disabled());
    let (sem_on, s_on, _) = run_workload(chats, batch, ObsConfig::enabled(SEED));
    assert_eq!(sem_off, sem_on, "enabled observability changed the workload");
    assert_eq!(s_off.obs().span_count(), 0, "disabled obs must record nothing");

    // Gate 2: enabled runs are deterministic, byte for byte — the trace
    // dump, the metrics snapshot (JSON and rendered table), and the
    // snapshot structure itself.
    let (_, s_on2, _) = run_workload(chats, batch, ObsConfig::enabled(SEED));
    assert_eq!(s_on.obs().trace_json(), s_on2.obs().trace_json(), "trace dumps must be reproducible");
    assert_eq!(s_on.obs().metrics_json(), s_on2.obs().metrics_json(), "metric snapshots must be reproducible");
    assert_eq!(s_on.obs().metrics_snapshot(), s_on2.obs().metrics_snapshot(), "snapshot structures must match");
    assert_eq!(
        render_metrics(&s_on.obs().metrics_snapshot()),
        render_metrics(&s_on2.obs().metrics_snapshot()),
        "rendered metric tables must be reproducible"
    );
    for q in ["\"p50\":", "\"p90\":", "\"p99\":"] {
        assert!(s_on.obs().metrics_json().contains(q), "snapshot JSON must carry {q} quantiles");
    }

    // Overhead: wall-clock per request, disabled vs enabled. Printed only;
    // the committed JSON stays deterministic.
    let time_per_request = |obs: ObsConfig| {
        let t = Instant::now();
        for _ in 0..reps {
            let _ = run_workload(chats, batch, obs);
        }
        t.elapsed().as_nanos() as f64 / (reps as f64 * (chats + batch) as f64)
    };
    let ns_off = time_per_request(ObsConfig::disabled());
    let ns_on = time_per_request(ObsConfig::enabled(SEED));
    println!(
        "\n  wall-clock/request: disabled {:.0} ns, enabled {:.0} ns ({:+.1}%)",
        ns_off,
        ns_on,
        100.0 * (ns_on - ns_off) / ns_off
    );

    // The debugging view: a hedged request's trace tree, then the batched
    // chat_many drain under the engine.
    let spans = s_on.obs().finished_spans();
    let hedged_trace = spans
        .iter()
        .find(|r| r.name == "smmf.hedge")
        .map(|r| r.trace)
        .expect("the spiked replica must force at least one hedge");
    println!("\n  trace: hedged chat request");
    for line in s_on.obs().render_trace(hedged_trace).lines() {
        println!("    {line}");
    }
    let batched_trace = spans
        .iter()
        .find(|r| r.name == "smmf.chat_many")
        .map(|r| r.trace)
        .expect("chat_many must open a root span");
    println!("\n  trace: batched chat_many drain");
    for line in s_on.obs().render_trace(batched_trace).lines() {
        println!("    {line}");
    }

    let obs = s_on.obs();
    let counters = [
        "smmf.requests",
        "smmf.hedges",
        "smmf.hedge_wins",
        "smmf.retries",
        "llm.engine.succeeded",
        "llm.engine.steps",
        "llm.prefix_cache.hit_tokens",
        "rag.queries",
        "rag.chunks_scanned",
    ];
    println!("\n  {:<28} {:>12}", "counter", "value");
    println!("  {}", "-".repeat(42));
    for name in counters {
        println!("  {:<28} {:>12}", name, obs.counter_value(name));
    }

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"obs\",\n  \"mode\": \"{mode}\",\n  \
         \"generated_by\": \"cargo run -p dbgpt-bench --release --bin bench_obs\",\n  \
         \"seed\": {SEED},\n  \"chats\": {chats},\n  \"batched_jobs\": {batch},\n  \
         \"gates\": [\"disabled == enabled semantics\", \"enabled runs dump identical bytes\", \
         \"disabled handle records zero spans\"],\n  \
         \"spans\": {},\n  \"traces\": {},\n  \"counters\": {{\n",
        obs.span_count(),
        obs.trace_ids().len(),
    );
    for (i, name) in counters.iter().enumerate() {
        let _ = write!(json, "    \"{name}\": {}", obs.counter_value(name));
        json.push_str(if i + 1 < counters.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }\n}\n");
    fs::create_dir_all("results").ok();
    fs::write(out_path, json).expect("write results file");
    println!("\n  identity + determinism gates passed");
    println!("  wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_override = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone());
    let out_path = out_override.unwrap_or_else(|| {
        if smoke {
            "results/BENCH_obs_smoke.json".to_string()
        } else {
            "results/BENCH_obs.json".to_string()
        }
    });
    run(smoke, &out_path);
}
