//! Experiment **E1**: Text-to-SQL accuracy, base vs fine-tuned
//! (the DB-GPT-Hub workflow of paper §2.5).
//!
//! ```text
//! cargo run -p dbgpt-bench --bin exp_text2sql --release
//! ```

use std::time::Instant;

use dbgpt_text2sql::{dataset, evaluate, FineTuner, Text2SqlModel};

fn main() {
    println!("Experiment E1: Text-to-SQL fine-tuning (DB-GPT-Hub)");
    println!("===================================================\n");

    let bench = dataset::spider_like(2024);
    println!(
        "benchmark: {} domains, {} train pairs, {} test pairs ({}% paraphrased)",
        bench.databases.len(),
        bench.train.len(),
        bench.test.len(),
        (bench.test.iter().filter(|e| e.paraphrased).count() * 100) / bench.test.len(),
    );

    let base = Text2SqlModel::base();
    let t = Instant::now();
    let lexicon = FineTuner::new().fit(&bench.databases, &bench.train);
    println!(
        "fine-tuning: learned {} lexicon entries in {:.2?}\n",
        lexicon.len(),
        t.elapsed()
    );
    let tuned = Text2SqlModel::fine_tuned("t2s-tuned", lexicon);

    println!(
        "{:<10} | {:>8} | {:>8} | {:>8} | {:>14} | {:>15}",
        "model", "EM", "exec", "errors", "canonical EM", "paraphrased EM"
    );
    println!("{}", "-".repeat(78));
    for model in [&base, &tuned] {
        let r = evaluate(model, &bench);
        println!(
            "{:<10} | {:>7.1}% | {:>7.1}% | {:>8} | {:>13.1}% | {:>14.1}%",
            r.model,
            r.em_accuracy() * 100.0,
            r.exec_accuracy() * 100.0,
            r.generation_errors,
            r.canonical.0 as f64 / r.canonical.1.max(1) as f64 * 100.0,
            r.paraphrased.0 as f64 / r.paraphrased.1.max(1) as f64 * 100.0,
        );
    }
    println!(
        "\n(shape check: the fine-tuned model should dominate on paraphrased \
         questions while matching the base model on canonical ones)"
    );
}
