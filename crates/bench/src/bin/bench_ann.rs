//! ANN retrieval benchmark: HNSW + scalar quantization vs the exact flat
//! scan (E13).
//!
//! Builds the E5 synthetic corpus at 100k chunks (full) or 2k (smoke),
//! then measures three retrieval arms over the same vector store:
//!
//! - `flat` — the exact sequential scan (the recall ground truth),
//! - `hnsw-f32` — HNSW graph search scoring against the contiguous f32
//!   matrix,
//! - `hnsw-sq8` — HNSW search through the scalar-quantized u8 codes with
//!   exact rescore of the top candidates.
//!
//! ```text
//! cargo run -p dbgpt-bench --release --bin bench_ann            # full, gated
//! cargo run -p dbgpt-bench --release --bin bench_ann -- --smoke # CI size
//! ```
//!
//! # Query sets
//!
//! The **gated** query set is held-out documents: corpus-distribution
//! vectors that were never indexed, the same methodology as the standard
//! ANN benchmarks (SIFT/GloVe/DEEP1B query splits). A second,
//! **informative** set uses short synthetic user questions
//! ([`doc_queries`]); those sit far off the document manifold and their
//! exact top-10 scatters across the corpus's topic clusters, which is
//! adversarial for any graph index — the bench reports that recall in
//! the JSON without gating on it.
//!
//! Gates (enforced on every run):
//! - held-out recall@10 ≥ 0.95 vs the exact flat scan, both ANN arms;
//! - quantized scoring storage ≤ 30% of the f32 vectors;
//! - byte-identical indexes and hit lists across a full rebuild with the
//!   same seed (determinism);
//! - **full mode only** (the corpus is ≥ 100k chunks): ≥ 20× speedup
//!   over the flat scan for both ANN arms. Smoke corpora are too small
//!   for the asymptotic win, so there the speedup is informative.

use std::fs;
use std::time::Instant;

use dbgpt_bench::{doc_queries, synthetic_corpus};
use dbgpt_rag::{
    AnnBuildConfig, AnnStorage, Embedder, Embedding, HashEmbedder, RetrievalConfig, VectorStore,
};

/// Hits per query (the recall@k cut).
const K: usize = 10;

/// Layer-0 beam width the bench operates the index at. Tighter than the
/// library default (100): at 100k chunks ef=64 keeps held-out recall
/// ≈ 0.99 while leaving both arms comfortable speedup headroom.
const EF_SEARCH: usize = 64;

fn recall_vs(exact: &[Vec<usize>], approx: &[Vec<usize>]) -> f64 {
    let mut overlap = 0usize;
    let mut total = 0usize;
    for (e, a) in exact.iter().zip(approx) {
        overlap += a.iter().filter(|id| e.contains(id)).count();
        total += e.len();
    }
    overlap as f64 / total.max(1) as f64
}

fn top_ids(hits: &[(usize, f32)]) -> Vec<usize> {
    hits.iter().map(|&(i, _)| i).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_override = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone());
    let (n_docs, n_queries, flat_reps, ann_reps, mode) = if smoke {
        (2_000usize, 40usize, 5usize, 20usize, "smoke")
    } else {
        (100_000usize, 100usize, 3usize, 25usize, "full")
    };
    let out_path = out_override.unwrap_or_else(|| {
        if smoke {
            "results/BENCH_ann_smoke.json".to_string()
        } else {
            "results/BENCH_ann.json".to_string()
        }
    });

    println!("BENCH ann ({mode})");
    println!("  corpus: {n_docs} chunks, k = {K}, ef_search = {EF_SEARCH}");

    let t = Instant::now();
    let docs = synthetic_corpus(n_docs + n_queries, 5);
    let embedder = HashEmbedder::new();
    let mut store = VectorStore::new();
    for d in &docs[..n_docs] {
        store.add(embedder.embed(&d.text));
    }
    println!("  embedded + stored in {:.1}s", t.elapsed().as_secs_f64());

    // Gated queries: held-out documents (corpus-distribution vectors that
    // were never indexed). Informative queries: short user questions.
    let queries: Vec<Embedding> = docs[n_docs..].iter().map(|d| embedder.embed(&d.text)).collect();
    let text_queries: Vec<Embedding> = doc_queries(&docs[..n_docs], 40, 9)
        .into_iter()
        .map(|(_, q)| embedder.embed(&q))
        .collect();

    let cfg = RetrievalConfig {
        ann_ef_search: EF_SEARCH,
        ..RetrievalConfig::SEQUENTIAL // 1 thread: isolate the algorithmic win
    };
    let f32_bytes = store.ann_storage_bytes();

    // Ground truth for both query sets.
    let exact: Vec<Vec<usize>> = queries
        .iter()
        .map(|q| top_ids(&store.search_flat_with(q, K, &cfg)))
        .collect();
    let text_exact: Vec<Vec<usize>> = text_queries
        .iter()
        .map(|q| top_ids(&store.search_flat_with(q, K, &cfg)))
        .collect();

    // Flat timing, measured again after the ANN arms: the two samples
    // bracket the ANN measurements in time, so background-load drift
    // shows up as a spread instead of silently skewing the speedup.
    let time_flat = |store: &VectorStore| {
        let t = Instant::now();
        for _ in 0..flat_reps {
            for q in &queries {
                std::hint::black_box(store.search_flat_with(q, K, &cfg));
            }
        }
        (flat_reps * queries.len()) as f64 / t.elapsed().as_secs_f64()
    };
    let flat_qps_before = time_flat(&store);
    println!(
        "\n  {:<12} | {:>10} | {:>10} | {:>9} | {:>9} | {:>12}",
        "arm", "qps", "µs/query", "recall@10", "speedup", "build (s)"
    );
    println!("  {}", "-".repeat(76));
    println!(
        "  {:<12} | {:>10.0} | {:>10.1} | {:>9} | {:>9} | {:>12}",
        "flat", flat_qps_before, 1e6 / flat_qps_before, "1.000", "1.0x", "-"
    );

    struct ArmResult {
        name: &'static str,
        qps: f64,
        recall: f64,
        text_recall: f64,
        build_s: f64,
        storage_bytes: usize,
        fingerprint: u64,
        deterministic: bool,
    }

    let mut arms = Vec::new();
    for (name, storage) in [("hnsw-f32", AnnStorage::F32), ("hnsw-sq8", AnnStorage::Quantized)] {
        let build_cfg = AnnBuildConfig {
            storage,
            ..AnnBuildConfig::default()
        };
        let mut indexed = store.clone();
        let t = Instant::now();
        indexed.build_hnsw(build_cfg);
        let build_s = t.elapsed().as_secs_f64();
        let fingerprint = indexed.hnsw_fingerprint().expect("index built");

        let hits: Vec<Vec<(usize, f32)>> = queries
            .iter()
            .map(|q| indexed.search_hnsw_with(q, K, &cfg))
            .collect();
        let ids: Vec<Vec<usize>> = hits.iter().map(|h| top_ids(h)).collect();
        let recall = recall_vs(&exact, &ids);
        let text_ids: Vec<Vec<usize>> = text_queries
            .iter()
            .map(|q| top_ids(&indexed.search_hnsw_with(q, K, &cfg)))
            .collect();
        let text_recall = recall_vs(&text_exact, &text_ids);

        let t = Instant::now();
        for _ in 0..ann_reps {
            for q in &queries {
                std::hint::black_box(indexed.search_hnsw_with(q, K, &cfg));
            }
        }
        let qps = (ann_reps * queries.len()) as f64 / t.elapsed().as_secs_f64();

        // Determinism: a full rebuild with the same seed must produce a
        // byte-identical index and identical hit lists.
        let mut rebuilt = store.clone();
        rebuilt.build_hnsw(build_cfg);
        let deterministic = rebuilt.hnsw_fingerprint() == Some(fingerprint)
            && queries
                .iter()
                .zip(&hits)
                .all(|(q, h)| &rebuilt.search_hnsw_with(q, K, &cfg) == h);
        assert!(deterministic, "{name}: rebuild with the same seed diverged");

        arms.push(ArmResult {
            name,
            qps,
            recall,
            text_recall,
            build_s,
            storage_bytes: indexed.ann_storage_bytes(),
            fingerprint,
            deterministic,
        });
    }

    let flat_qps_after = time_flat(&store);
    // The conservative speedup denominator: the faster flat sample.
    let flat_qps = flat_qps_before.max(flat_qps_after);

    let mut arm_json = Vec::new();
    let mut all_gates_ok = true;
    for arm in &arms {
        let speedup = arm.qps / flat_qps;
        println!(
            "  {:<12} | {:>10.0} | {:>10.1} | {:>9.3} | {:>8.1}x | {:>12.1}",
            arm.name,
            arm.qps,
            1e6 / arm.qps,
            arm.recall,
            speedup,
            arm.build_s
        );

        let recall_ok = arm.recall >= 0.95;
        let speedup_ok = smoke || speedup >= 20.0;
        let memory_ok = arm.name != "hnsw-sq8"
            || (arm.storage_bytes as f64) <= 0.30 * f32_bytes as f64;
        all_gates_ok &= recall_ok && speedup_ok && memory_ok;
        assert!(recall_ok, "{}: recall@10 {:.3} < 0.95", arm.name, arm.recall);
        assert!(
            speedup_ok,
            "{}: speedup {speedup:.1}x < 20x at {n_docs} chunks",
            arm.name
        );
        assert!(
            memory_ok,
            "{}: scoring storage {} B > 30% of f32 {f32_bytes} B",
            arm.name, arm.storage_bytes
        );

        arm_json.push(serde_json::json!({
            "arm": arm.name,
            "qps": arm.qps,
            "per_query_us": 1e6 / arm.qps,
            "recall_at_10_held_out": arm.recall,
            "recall_at_10_text_queries": arm.text_recall,
            "speedup_vs_flat": speedup,
            "build_seconds": arm.build_s,
            "storage_bytes": arm.storage_bytes,
            "storage_fraction_of_f32": arm.storage_bytes as f64 / f32_bytes as f64,
            "index_fingerprint": format!("{:016x}", arm.fingerprint),
            "deterministic_rebuild": arm.deterministic,
        }));
    }
    println!(
        "  flat re-timed after arms: {:.0} qps (before: {:.0})",
        flat_qps_after, flat_qps_before
    );

    // Incremental-ingest sanity on the quantized arm: vectors added after
    // the build must be findable through the live index.
    let mut live = store.clone();
    live.build_hnsw(AnnBuildConfig {
        storage: AnnStorage::Quantized,
        ..AnnBuildConfig::default()
    });
    let fresh = embedder.embed("a freshly ingested report about zebra migrations");
    let fresh_id = live.add(fresh.clone());
    assert!(live.has_hnsw(), "add must keep the index alive");
    assert_eq!(
        live.search_hnsw_with(&fresh, 1, &cfg)[0].0,
        fresh_id,
        "incremental insert must be retrievable"
    );

    let json = serde_json::json!({
        "bench": "ann",
        "mode": mode,
        "generated_by": "cargo run -p dbgpt-bench --release --bin bench_ann",
        "hardware_threads": std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        "chunks": store.len(),
        "dim": embedder.dim(),
        "k": K,
        "ef_search": EF_SEARCH,
        "queries_held_out": queries.len(),
        "queries_text": text_queries.len(),
        "flat": {
            "qps_before_arms": flat_qps_before,
            "qps_after_arms": flat_qps_after,
            "qps_used_for_speedup": flat_qps,
            "per_query_us": 1e6 / flat_qps,
            "f32_bytes": f32_bytes,
        },
        "arms": arm_json,
        "gates": {
            "recall_at_10_min": 0.95,
            "recall_query_set": "held_out_documents",
            "speedup_vs_flat_min": if smoke { serde_json::Value::from("informative (smoke)") } else { serde_json::Value::from(20.0) },
            "quantized_storage_max_fraction": 0.30,
            "deterministic_rebuild": true,
            "all_passed": all_gates_ok,
        },
    });
    fs::create_dir_all("results").ok();
    fs::write(
        &out_path,
        serde_json::to_string_pretty(&json).expect("serialize") + "\n",
    )
    .expect("write results file");
    println!("\n  all gates passed; wrote {out_path}");
}
