//! Regenerate **Figure 2**: the RAG architecture, stage by stage.
//!
//! Walks knowledge construction → retrieval → adaptive ICL on a synthetic
//! corpus, then sweeps every retrieval strategy reporting recall@k and
//! per-query latency — the quantitative behaviour behind the figure.
//!
//! ```text
//! cargo run -p dbgpt-bench --bin figure2 --release
//! ```

use std::time::Instant;

use dbgpt_bench::{corpus_kb, corpus_queries, recall_at_k, synthetic_corpus};
use dbgpt_llm::{builtin_model, GenerationParams};
use dbgpt_rag::{IclBuilder, RetrievalConfig, RetrievalStrategy};

const CORPUS_SIZE: usize = 500;
const K: usize = 5;

fn main() {
    println!("Figure 2: The RAG architecture in DB-GPT");
    println!("========================================\n");

    // Stage 1: knowledge construction.
    let docs = synthetic_corpus(CORPUS_SIZE, 42);
    let t = Instant::now();
    let kb = corpus_kb(&docs);
    println!("Stage 1 — knowledge construction");
    println!("  documents: {CORPUS_SIZE}, chunks: {}, build: {:.2?}", kb.chunk_count(), t.elapsed());
    println!("  indexes: vector (flat + IVF), inverted (BM25), entity graph\n");

    // Stage 2a: topic-level recall (the easy task — saturates quickly).
    println!("Stage 2a — topic recall@{K} over {} queries", corpus_queries().len());
    println!("  {:<12} | {:>9} | {:>12}", "strategy", "recall", "µs/query");
    println!("  {}", "-".repeat(40));
    for &strategy in RetrievalStrategy::ALL {
        let start = Instant::now();
        const REPS: usize = 20;
        let mut recall = 0.0;
        for _ in 0..REPS {
            recall = recall_at_k(&kb, &docs, strategy, K);
        }
        let per_query =
            start.elapsed().as_micros() as f64 / (REPS * corpus_queries().len()) as f64;
        println!("  {:<12} | {:>8.0}% | {:>12.1}", strategy.name(), recall * 100.0, per_query);
    }

    // Stage 2b: specific-document retrieval (the hard task).
    let queries = dbgpt_bench::doc_queries(&docs, 60, 9);
    println!("\nStage 2b — specific-document hit@k over {} queries", queries.len());
    println!("  {:<12} | {:>7} | {:>7} | {:>7}", "strategy", "hit@1", "hit@3", "hit@5");
    println!("  {}", "-".repeat(44));
    for &strategy in RetrievalStrategy::ALL {
        let h1 = dbgpt_bench::hit_at_k(&kb, &queries, strategy, 1);
        let h3 = dbgpt_bench::hit_at_k(&kb, &queries, strategy, 3);
        let h5 = dbgpt_bench::hit_at_k(&kb, &queries, strategy, 5);
        println!(
            "  {:<12} | {:>6.0}% | {:>6.0}% | {:>6.0}%",
            strategy.name(),
            h1 * 100.0,
            h3 * 100.0,
            h5 * 100.0
        );
    }

    // Stage 2c: the sharded parallel scan (results identical at every
    // thread count; only the wall-clock changes).
    let mut kb = kb;
    println!("\nStage 2c — sharded vector scan, thread sweep (k = {K})");
    println!("  {:<10} | {:>12}", "threads", "µs/query");
    println!("  {}", "-".repeat(26));
    let question = "how does the embedding index affect recall in retrieval?";
    for threads in [1usize, 2, 4, 8] {
        kb.set_retrieval_config(RetrievalConfig {
            threads,
            topk_crossover: 0,
            ..RetrievalConfig::default()
        });
        const REPS: usize = 50;
        let start = Instant::now();
        for _ in 0..REPS {
            kb.retrieve(question, K, RetrievalStrategy::Vector);
        }
        let per_query = start.elapsed().as_micros() as f64 / REPS as f64;
        println!("  {:<10} | {:>12.1}", threads, per_query);
    }
    kb.set_retrieval_config(RetrievalConfig::default());

    // Stage 3: adaptive ICL.
    println!("\nStage 3 — adaptive ICL");
    let question = "how does the embedding index affect recall in retrieval?";
    let hits = kb.retrieve(question, K, RetrievalStrategy::Hybrid);
    let (prompt, used) = IclBuilder::new(512).build(question, &hits).expect("budget fits");
    println!("  retrieved {} chunks, packed {used} into a 512-token prompt", hits.len());
    let model = builtin_model("sim-qwen").expect("builtin");
    let answer = model.generate(&prompt, &GenerationParams::default()).expect("generates");
    println!("  model answer: {}", answer.text.lines().next().unwrap_or(""));
    println!(
        "  usage: {} prompt + {} completion tokens",
        answer.usage.prompt_tokens, answer.usage.completion_tokens
    );
}
