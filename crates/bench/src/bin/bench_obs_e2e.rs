//! End-to-end observability benchmark + gates (E10).
//!
//! One [`dbgpt_obs::Obs`] handle is threaded through the whole stack —
//! the SMMF serving layer, the server router, the chat2data and KBQA
//! apps, and the five-stage AWEL chat2data pipeline — and the workload is
//! driven in rounds against two declared SLOs (a p90 latency objective on
//! `smmf.request_latency_us` and an error-budget objective on the server
//! status counters). Mid-run a latency spike is injected into every
//! model replica; the fast burn-rate rule must fire while the spike
//! lasts and resolve after it is lifted.
//!
//! Gates:
//!
//! 1. **Identity**: observability disabled vs enabled must produce
//!    byte-identical request semantics, and the disabled handle must
//!    record nothing (so no SLO ever evaluates).
//! 2. **Determinism**: two enabled runs dump byte-identical trace JSON,
//!    metric snapshots, folded flamegraphs, hotspot tables, critical
//!    paths, SLO reports and alert logs.
//! 3. **One request, one trace**: a single chat2data pipeline run yields
//!    one trace tree spanning the apps, AWEL, RAG, Text-to-SQL,
//!    SQL-engine, model-client and serving crates.
//! 4. **Alert lifecycle**: the latency SLO fires under the injected
//!    spike, resolves after recovery, and the error-budget SLO stays
//!    quiet throughout.
//!
//! It prints the rendered flamegraph (folded stacks), the hotspot table,
//! the critical path of the last pipeline request, the SLO report and
//! the alert log, then emits `results/BENCH_obs_e2e.json` with the
//! per-stage self-µs breakdown and the alert-log digest.
//!
//! ```text
//! cargo run -p dbgpt-bench --release --bin bench_obs_e2e            # full
//! cargo run -p dbgpt-bench --release --bin bench_obs_e2e -- --smoke # CI gate
//! ```

use std::fmt::Write as _;
use std::fs;
use std::sync::Arc;

use dbgpt_agents::LlmClient;
use dbgpt_apps::handlers::build_server;
use dbgpt_apps::{AppContext, Chat2DataPipeline};
use dbgpt_obs::{Obs, ObsConfig, Profile, SloDef, SloEngine};
use dbgpt_server::Request;
use dbgpt_smmf::{ApiServer, DeploymentMode, EngineConfig, ResilienceConfig, RoutingPolicy};

/// Seed for every run.
const SEED: u64 = 42;
/// The served model behind every app.
const MODEL: &str = "sim-qwen";
/// Workload rounds; one SLO snapshot per round.
const ROUNDS: usize = 20;
/// Rounds [SPIKE_START, SPIKE_END) run with every replica slowed 50×.
const SPIKE_START: usize = 6;
const SPIKE_END: usize = 12;
/// p90 latency target for `smmf.request_latency_us` (a default bucket
/// bound, so the SLO engine counts bad events exactly).
const LATENCY_TARGET_US: u64 = 2_500_000;

/// Everything a run produces: the byte-comparable request semantics plus
/// the observability artifacts derived from the shared handle.
struct RunOutput {
    /// Debug-formatted responses and replies — what obs must not change.
    semantics: String,
    obs: Obs,
    slo: SloEngine,
    /// Trace id of the last pipeline request (zeroed when obs disabled).
    last_pipeline_trace: Option<dbgpt_obs::SpanId>,
}

/// Build the full stack on one obs handle and drive the round workload.
fn run_stack(obs_cfg: ObsConfig) -> RunOutput {
    // Serving fleet. Hedging and deadlines are resilience-bench material;
    // here they would only re-route around the very spike the SLO exists
    // to observe, so the fleet keeps retries/breakers but races nothing.
    let cfg = ResilienceConfig {
        deadline_budget_us: None,
        hedge: None,
        ..ResilienceConfig::full()
    };
    let mut api = ApiServer::with_observability(
        DeploymentMode::Local,
        RoutingPolicy::RoundRobin,
        SEED,
        cfg,
        EngineConfig::full(),
        obs_cfg,
    );
    api.deploy_builtin(MODEL, 2).unwrap();
    let api = Arc::new(api);
    let obs = api.obs().clone();

    // Application layer: same handle, model calls routed through SMMF.
    let ctx = AppContext::local_default()
        .with_sales_demo_data()
        .with_llm(LlmClient::smmf(api.clone(), MODEL))
        .with_obs(obs.clone());
    ctx.kb.write().add_text(
        "orders-doc",
        "Orders record purchases. Each order has an amount and a category.",
    );
    let server = build_server(&ctx);
    let pipeline = Chat2DataPipeline::new(ctx);

    // Two SLOs: p90 request latency on the serving histogram, and the
    // server-layer error budget. Classic fast (1/6 @ 8×) + slow (6/24 @
    // 2×) burn rules, windows measured in round snapshots.
    let mut slo = SloEngine::new(vec![
        SloDef::latency("chat_latency_p90", "smmf.request_latency_us", 0.90, LATENCY_TARGET_US),
        SloDef::error_rate("server_errors", "server.status.error", "server.requests", 0.05),
    ]);

    let questions = [
        "how many orders are there?",
        "what is the total amount per category of orders?",
        "list all orders",
    ];
    let pipeline_questions = ["how many users are there?", "how many orders are there?"];

    let mut semantics = String::new();
    let mut last_pipeline_trace = None;
    for round in 0..ROUNDS {
        if round == SPIKE_START || round == SPIKE_END {
            let factor = if round == SPIKE_START { 50.0 } else { 1.0 };
            for w in api.controller().workers(MODEL).unwrap() {
                w.set_latency_factor(factor);
            }
        }
        api.advance_clock(250_000);
        let r1 = server.handle(&Request::new(
            (round * 2) as u64,
            "chat2data",
            questions[round % questions.len()],
        ));
        let r2 = server.handle(&Request::new(
            (round * 2 + 1) as u64,
            "kbqa",
            "what do orders record?",
        ));
        let reply = pipeline.run(pipeline_questions[round % pipeline_questions.len()]);
        let _ = writeln!(semantics, "round {round}: {r1:?} | {r2:?} | {reply:?}");
        last_pipeline_trace = obs
            .finished_spans()
            .iter()
            .rev()
            .find(|s| s.name == "app.chat2data.pipeline")
            .map(|s| s.trace);
        slo.push_snapshot(api.now_us(), &obs.metrics_snapshot());
    }
    let _ = writeln!(semantics, "clock {}us | {:?}", api.now_us(), api.metrics());

    RunOutput {
        semantics,
        obs,
        slo,
        last_pipeline_trace,
    }
}

/// The byte artifacts the determinism gate compares.
fn artifacts(run: &RunOutput) -> (String, String, String, String, String, String, String) {
    let spans = run.obs.finished_spans();
    let profile = Profile::from_spans(&spans);
    let cp = run
        .last_pipeline_trace
        .and_then(|t| profile.critical_path(t))
        .map(|c| c.render())
        .unwrap_or_default();
    (
        run.obs.trace_json(),
        run.obs.metrics_json(),
        profile.folded(),
        profile.hotspot_table(),
        cp,
        run.slo.report(),
        run.slo.alert_log(),
    )
}

/// The sweep, callable from `main` (and reusable from harnesses).
pub fn run(smoke: bool, out_path: &str) {
    let mode = if smoke { "smoke" } else { "full" };
    println!("BENCH obs_e2e ({mode})");
    println!(
        "  {ROUNDS} rounds (spike on [{SPIKE_START}, {SPIKE_END})), seed = {SEED}, \
         simulated clock (deterministic)"
    );

    // Gate 1: observability must be invisible to request semantics.
    let off = run_stack(ObsConfig::disabled());
    let on = run_stack(ObsConfig::enabled(SEED));
    assert_eq!(off.semantics, on.semantics, "enabled observability changed the workload");
    assert_eq!(off.obs.span_count(), 0, "disabled obs must record nothing");
    assert_eq!(off.slo.alert_log(), "", "no metrics, no alerts");

    // Gate 2: enabled runs are deterministic, byte for byte.
    let on2 = run_stack(ObsConfig::enabled(SEED));
    assert_eq!(
        artifacts(&on),
        artifacts(&on2),
        "trace/metrics/flamegraph/critical-path/SLO bytes must be reproducible"
    );

    // Gate 3: one pipeline request is one trace tree spanning the stack.
    let spans = on.obs.finished_spans();
    let trace = on.last_pipeline_trace.expect("pipeline ran");
    let in_trace: Vec<_> = spans.iter().filter(|s| s.trace == trace).collect();
    assert_eq!(
        in_trace.iter().filter(|s| s.parent.is_none()).count(),
        1,
        "one request, one root"
    );
    for prefix in [
        "app.chat2data.pipeline",
        "awel.dag",
        "awel.op",
        "rag.retrieve",
        "t2s.generate",
        "sql.execute",
        "smmf.chat",
    ] {
        assert!(
            in_trace.iter().any(|s| s.name.starts_with(prefix)),
            "pipeline trace is missing a {prefix} span"
        );
    }

    // Gate 4: the latency SLO fires under the spike and resolves after;
    // the error budget stays quiet.
    let log = on.slo.alert_log();
    assert!(
        log.contains("slo=chat_latency_p90") && log.contains("FIRING"),
        "latency SLO must fire under the injected spike:\n{log}"
    );
    assert!(log.contains("resolved"), "alert must resolve after recovery:\n{log}");
    assert!(!log.contains("slo=server_errors"), "error budget must stay quiet:\n{log}");
    assert_eq!(on.slo.firing_count(), 0, "nothing still firing at the end");

    let profile = Profile::from_spans(&spans);
    println!("\n  flamegraph (folded stacks, count it with any flamegraph tool):");
    for line in profile.folded().lines() {
        println!("    {line}");
    }
    println!("\n  hotspots (self-µs):");
    for line in profile.hotspot_table().lines() {
        println!("    {line}");
    }
    println!("\n  critical path of the last chat2data pipeline request:");
    let cp = profile.critical_path(trace).expect("pipeline trace has a path");
    for line in cp.render().lines() {
        println!("    {line}");
    }
    println!("\n  SLO report (end of run):");
    for line in on.slo.report().lines() {
        println!("    {line}");
    }
    println!("\n  alert log:");
    for line in log.lines() {
        println!("    {line}");
    }

    let counters = [
        "server.requests",
        "server.status.ok",
        "app.chat2data.requests",
        "app.kbqa.requests",
        "app.pipeline.requests",
        "awel.runs",
        "awel.ops_run",
        "rag.queries",
        "t2s.requests",
        "sql.statements",
        "smmf.requests",
    ];
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"obs_e2e\",\n  \"mode\": \"{mode}\",\n  \
         \"generated_by\": \"cargo run -p dbgpt-bench --release --bin bench_obs_e2e\",\n  \
         \"seed\": {SEED},\n  \"rounds\": {ROUNDS},\n  \
         \"spike_rounds\": [{SPIKE_START}, {SPIKE_END}],\n  \
         \"latency_target_us\": {LATENCY_TARGET_US},\n  \
         \"gates\": [\"disabled == enabled semantics\", \
         \"enabled runs dump identical bytes\", \
         \"one pipeline request spans >= 4 crates in one trace\", \
         \"latency SLO fires under spike and resolves\"],\n  \
         \"spans\": {},\n  \"traces\": {},\n  \"counters\": {{\n",
        on.obs.span_count(),
        on.obs.trace_ids().len(),
    );
    for (i, name) in counters.iter().enumerate() {
        let _ = write!(json, "    \"{name}\": {}", on.obs.counter_value(name));
        json.push_str(if i + 1 < counters.len() { ",\n" } else { "\n" });
    }
    json.push_str("  },\n  \"stage_self_us\": [\n");
    let hot = profile.hotspots();
    for (i, h) in hot.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"stage\": \"{}\", \"count\": {}, \"total_us\": {}, \"self_us\": {}}}",
            h.name, h.count, h.total_us, h.self_us
        );
        json.push_str(if i + 1 < hot.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"alerts\": [\n");
    let alerts: Vec<_> = log.lines().collect();
    for (i, line) in alerts.iter().enumerate() {
        let _ = write!(json, "    \"{line}\"");
        json.push_str(if i + 1 < alerts.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    fs::create_dir_all("results").ok();
    fs::write(out_path, json).expect("write results file");
    println!("\n  identity + determinism + trace + SLO gates passed");
    println!("  wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_override = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone());
    let out_path = out_override.unwrap_or_else(|| {
        if smoke {
            "results/BENCH_obs_e2e_smoke.json".to_string()
        } else {
            "results/BENCH_obs_e2e.json".to_string()
        }
    });
    run(smoke, &out_path);
}
