//! Chaos-scenario sweep for the SMMF resilience layer (E2).
//!
//! Replays the chaos scenario suite (steady / flaky / crash /
//! latency-spike / mass-outage) against every routing policy, once with
//! the resilience layer disabled and once with circuit breakers, backoff
//! plus deadline budgets, hedging, shedding, and the fallback tier all on —
//! then emits `results/BENCH_resilience.json`. Everything runs on the
//! simulated clock, so the numbers are exactly reproducible: the run
//! asserts byte-identical reports for a repeated tuple, and asserts the
//! headline acceptance bar (flaky fleet at p=0.3, ≥99% availability with
//! full resilience, strictly above the disabled baseline).
//!
//! ```text
//! cargo run -p dbgpt-bench --release --bin bench_resilience            # 500 requests/scenario
//! cargo run -p dbgpt-bench --release --bin bench_resilience -- --smoke # 60 requests, CI gate
//! ```

use std::fmt::Write as _;
use std::fs;

use dbgpt_smmf::chaos::{full_with_fallback, run_scenario, Scenario, ScenarioReport};
use dbgpt_smmf::{ResilienceConfig, RoutingPolicy};

/// Seed for every run in the sweep.
const SEED: u64 = 42;

/// The sweep, callable from `main` (and reusable from harnesses).
pub fn run(smoke: bool, out_path: &str) {
    let (requests, mode) = if smoke { (60usize, "smoke") } else { (500usize, "full") };
    println!("BENCH resilience ({mode})");
    println!("  {requests} requests/scenario, seed = {SEED}, simulated clock (deterministic)");

    let configs: [(ResilienceConfig, &str); 2] = [
        (ResilienceConfig::disabled(), "disabled"),
        (full_with_fallback(), "full"),
    ];

    // Determinism gate before the sweep: the same tuple twice must yield
    // byte-identical JSON.
    {
        let sc = Scenario::flaky(requests, 0.3);
        let a = run_scenario(&sc, RoutingPolicy::RoundRobin, &configs[1].0, "full", SEED);
        let b = run_scenario(&sc, RoutingPolicy::RoundRobin, &configs[1].0, "full", SEED);
        assert_eq!(a.to_json(), b.to_json(), "chaos runs must be reproducible");
    }

    println!(
        "\n  {:<16} {:<14} {:<9} | {:>7} {:>7} {:>9} {:>9}",
        "scenario", "policy", "config", "avail", "goodput", "p99 ms", "max ms"
    );
    println!("  {}", "-".repeat(78));

    let mut runs: Vec<ScenarioReport> = Vec::new();
    let mut flaky_full_vs_disabled: Vec<(f64, f64)> = Vec::new();
    for sc in Scenario::suite(requests) {
        for &policy in RoutingPolicy::ALL {
            let mut pair = (0.0f64, 0.0f64);
            for (cfg, label) in &configs {
                let rep = run_scenario(&sc, policy, cfg, label, SEED);
                println!(
                    "  {:<16} {:<14} {:<9} | {:>6.2}% {:>6.2}% {:>9.1} {:>9.1}",
                    rep.scenario,
                    rep.policy,
                    rep.config,
                    100.0 * rep.availability(),
                    100.0 * rep.goodput(),
                    rep.latency_p99_us as f64 / 1000.0,
                    rep.latency_max_us as f64 / 1000.0,
                );
                if *label == "disabled" {
                    pair.0 = rep.availability();
                } else {
                    pair.1 = rep.availability();
                }
                runs.push(rep);
            }
            if sc.name == "flaky" {
                flaky_full_vs_disabled.push(pair);
            }
        }
    }

    // Headline acceptance bar, on the flaky fleet: full resilience is at
    // least 99% available and strictly above the disabled baseline for
    // every routing policy. A 60-request smoke run is too short for the
    // disabled arm to reliably drop below 100%, so the strict inequality
    // is only enforced on the full 500-request sweep.
    for (i, (disabled, full)) in flaky_full_vs_disabled.iter().enumerate() {
        let policy = RoutingPolicy::ALL[i].name();
        assert!(
            *full >= 0.99,
            "flaky/{policy}: full resilience availability {full:.4} < 0.99"
        );
        assert!(
            full >= disabled,
            "flaky/{policy}: full {full:.4} below disabled {disabled:.4}"
        );
        if !smoke {
            assert!(
                full > disabled,
                "flaky/{policy}: full {full:.4} does not strictly exceed disabled {disabled:.4}"
            );
        }
    }

    let mut json = String::with_capacity(runs.len() * 512);
    let _ = write!(
        json,
        "{{\n  \"bench\": \"resilience\",\n  \"mode\": \"{mode}\",\n  \
         \"generated_by\": \"cargo run -p dbgpt-bench --release --bin bench_resilience\",\n  \
         \"seed\": {SEED},\n  \"requests_per_scenario\": {requests},\n  \
         \"scenarios\": [\"steady\", \"flaky\", \"crash\", \"latency-spike\", \"outage-recovery\"],\n  \
         \"runs\": [\n"
    );
    for (i, rep) in runs.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&rep.to_json());
        json.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    fs::create_dir_all("results").ok();
    fs::write(out_path, json).expect("write results file");
    println!("\n  determinism + availability gates passed");
    println!("  wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_override = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone());
    let out_path = out_override.unwrap_or_else(|| {
        if smoke {
            "results/BENCH_resilience_smoke.json".to_string()
        } else {
            "results/BENCH_resilience.json".to_string()
        }
    });
    run(smoke, &out_path);
}
