//! Paged-storage benchmark + gates (E14).
//!
//! Loads a `big` fact table (monotonic `ts` column, so the B+-tree is
//! clustered with insertion order) into three engines — in-memory row
//! storage (the reference), `StorageConfig::Paged` without a secondary
//! index, and paged with a B+-tree on `ts` — and drives identical
//! workloads through all of them:
//!
//! 1. **Residency gate**: the heap spans ≥ 4× the buffer pool, yet every
//!    workload completes with `max_resident <= pool_pages` — scans
//!    stream through the pool instead of faulting the table in.
//! 2. **Equivalence gate**: every workload's result matches the in-memory
//!    engine per cell on both paged engines.
//! 3. **Speedup gate** (full mode): the B+-tree range scan on a selective
//!    predicate is ≥ 5× faster than the paged full scan.
//! 4. **Determinism gate**: the emitted JSON carries no timings — page
//!    counts, pool counters and result fingerprints only — and the whole
//!    deterministic pass runs twice; both passes must produce identical
//!    JSON before it is written.
//!
//! Emits `results/BENCH_storage.json`.
//!
//! ```text
//! cargo run -p dbgpt-bench --release --bin bench_storage            # full
//! cargo run -p dbgpt-bench --release --bin bench_storage -- --smoke # CI gate
//! ```

use std::fmt::Write as _;
use std::fs;
use std::time::Instant;

use dbgpt_sqlengine::{Engine, StorageConfig, Value};

const SEED: u64 = 42;
const GROUPS: &[&str] = &["g0", "g1", "g2", "g3", "g4", "g5", "g6", "g7"];

/// xorshift64* — deterministic fixture data without a rand dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Deterministic fixture rows: `ts` is monotonic (clustered), the rest
/// random.
fn fixture(rows: usize) -> Vec<Vec<Value>> {
    let mut rng = Rng(SEED | 1);
    (0..rows)
        .map(|ts| {
            vec![
                Value::Int(ts as i64),
                Value::Text(GROUPS[rng.below(GROUPS.len() as u64) as usize].into()),
                Value::Float(rng.below(100_000) as f64 / 200.0),
                Value::Bool(rng.below(2) == 0),
            ]
        })
        .collect()
}

fn build_engine(storage: StorageConfig, rows: &[Vec<Value>], index_ts: bool) -> Engine {
    let mut e = Engine::with_storage(storage);
    e.execute("CREATE TABLE big (ts INT, grp TEXT, v FLOAT, flag BOOL)")
        .unwrap();
    e.database_mut()
        .table_mut("big")
        .unwrap()
        .insert_rows(rows.to_vec())
        .unwrap();
    if index_ts {
        e.execute("CREATE INDEX idx_ts ON big (ts)").unwrap();
    }
    e
}

/// FNV-1a over a query result: schema, row order and every cell.
fn fingerprint(e: &mut Engine, sql: &str) -> (u64, usize) {
    let r = e.execute(sql).expect("workload query failed");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for name in r.column_names() {
        eat(name.as_bytes());
        eat(b",");
    }
    for row in &r.rows {
        for v in row.values() {
            eat(format!("{v:?}").as_bytes());
            eat(b";");
        }
        eat(b"|");
    }
    (h, r.rows.len())
}

/// Best-of-`reps` wall-clock milliseconds for one query on one engine.
fn time_ms(e: &mut Engine, sql: &str, reps: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let r = e.execute(sql).expect("workload query failed");
        let ms = t.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(r.rows.len());
        best = best.min(ms);
    }
    best
}

struct Params {
    rows: usize,
    pool_pages: usize,
    page_size: usize,
    range_lo: i64,
    range_hi: i64,
}

/// One deterministic pass: build all three engines, run the residency and
/// equivalence gates, and return the JSON body plus the two paged engines
/// (for the timing phase). Called twice; both JSON strings must agree.
fn deterministic_pass(s: &Params, mode: &str) -> (String, Engine, Engine) {
    let rows = fixture(s.rows);
    let mut mem = build_engine(StorageConfig::InMemory, &rows, false);
    let paged_cfg = StorageConfig::paged(s.pool_pages, s.page_size);
    let mut paged = build_engine(paged_cfg, &rows, false);
    let mut indexed = build_engine(paged_cfg, &rows, true);
    drop(rows);

    let heap_pages = indexed
        .database()
        .table("big")
        .unwrap()
        .heap()
        .expect("paged table has a heap")
        .page_count();
    assert!(
        heap_pages >= 4 * s.pool_pages,
        "fixture too small: {heap_pages} heap pages < 4x pool ({})",
        s.pool_pages
    );

    let range = format!("ts BETWEEN {} AND {}", s.range_lo, s.range_hi);
    let workloads: Vec<(&str, String)> = vec![
        (
            "full_scan_agg",
            "SELECT COUNT(*), SUM(v), MIN(ts), MAX(ts) FROM big".into(),
        ),
        (
            "range_rows",
            format!("SELECT ts, grp, v FROM big WHERE {range} ORDER BY ts"),
        ),
        ("range_agg", format!("SELECT COUNT(*), SUM(v) FROM big WHERE {range}")),
        (
            "eq_grp_agg",
            "SELECT COUNT(*), SUM(v) FROM big WHERE grp = 'g3'".into(),
        ),
        (
            "group_agg",
            "SELECT grp, COUNT(*), AVG(v) FROM big GROUP BY grp ORDER BY grp".into(),
        ),
    ];

    let mut wl_json = String::new();
    for (i, (name, sql)) in workloads.iter().enumerate() {
        let (fp_mem, n_mem) = fingerprint(&mut mem, sql);
        let (fp_paged, n_paged) = fingerprint(&mut paged, sql);
        let (fp_idx, n_idx) = fingerprint(&mut indexed, sql);
        assert_eq!(
            (fp_mem, n_mem),
            (fp_paged, n_paged),
            "paged result diverged from in-memory on {name}"
        );
        assert_eq!(
            (fp_mem, n_mem),
            (fp_idx, n_idx),
            "indexed paged result diverged from in-memory on {name}"
        );
        let _ = write!(
            wl_json,
            "    \"{name}\": {{\"rows_out\": {n_mem}, \"fingerprint\": \"{fp_mem:016x}\"}}"
        );
        wl_json.push_str(if i + 1 < workloads.len() { ",\n" } else { "\n" });
    }

    // Residency gate: the whole workload streamed through the pool.
    for (label, e) in [("paged", &indexed), ("paged_noindex", &paged)] {
        let pager = e.database().pager().expect("paged engine has a pager");
        let pool = pager.pool();
        assert!(
            pool.max_resident() <= pool.capacity(),
            "{label}: residency {} exceeded pool capacity {}",
            pool.max_resident(),
            pool.capacity()
        );
    }

    let (max_resident, counters) = {
        let pager = indexed.database().pager().unwrap();
        let pool = pager.pool();
        (pool.max_resident(), pool.counters())
    };
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"storage\",\n  \"mode\": \"{mode}\",\n  \
         \"generated_by\": \"cargo run -p dbgpt-bench --release --bin bench_storage\",\n  \
         \"seed\": {SEED},\n  \"rows\": {},\n  \"page_size\": {},\n  \
         \"pool_pages\": {},\n  \"heap_pages\": {heap_pages},\n  \
         \"max_resident\": {max_resident},\n  \
         \"pool_counters\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"writebacks\": {}}},\n  \
         \"gates\": [\"heap >= 4x pool with max_resident <= pool_pages\", \
         \"paged results identical to in-memory per cell\"{}],\n  \
         \"workloads\": {{\n{wl_json}  }}\n}}\n",
        s.rows,
        s.page_size,
        s.pool_pages,
        counters.hits,
        counters.misses,
        counters.evictions,
        counters.writebacks,
        if mode == "smoke" {
            ""
        } else {
            ", \"btree range scan >= 5x paged full scan\""
        }
    );
    (json, paged, indexed)
}

pub fn run(smoke: bool, out_path: &str) {
    let (s, reps, mode) = if smoke {
        (
            Params {
                rows: 20_000,
                pool_pages: 32,
                page_size: 4096,
                range_lo: 10_000,
                range_hi: 10_299,
            },
            2u32,
            "smoke",
        )
    } else {
        (
            Params {
                rows: 300_000,
                pool_pages: 64,
                page_size: 4096,
                range_lo: 150_000,
                range_hi: 150_299,
            },
            3u32,
            "full",
        )
    };
    println!("BENCH storage ({mode})");
    println!(
        "  rows = {}, page_size = {}, pool_pages = {}, seed = {SEED}, best of {reps}",
        s.rows, s.page_size, s.pool_pages
    );

    // Determinism gate: two full deterministic passes must agree byte for
    // byte before anything is written.
    let t = Instant::now();
    let (json_a, _, _) = deterministic_pass(&s, mode);
    let (json_b, mut paged, mut indexed) = deterministic_pass(&s, mode);
    assert_eq!(json_a, json_b, "deterministic pass diverged between runs");
    println!(
        "  residency + equivalence + determinism gates passed in {:.1}s",
        t.elapsed().as_secs_f64()
    );

    // Timing phase (stdout only — never in the JSON).
    let range_sql = format!(
        "SELECT COUNT(*), SUM(v) FROM big WHERE ts BETWEEN {} AND {}",
        s.range_lo, s.range_hi
    );
    let full_ms = time_ms(&mut paged, &range_sql, reps);
    let idx_ms = time_ms(&mut indexed, &range_sql, reps);
    let speedup = full_ms / idx_ms;
    println!("\n  {:<22} {:>10} ", "range predicate on", "ms");
    println!("  {}", "-".repeat(34));
    println!("  {:<22} {:>10.3}", "paged full scan", full_ms);
    println!("  {:<22} {:>10.3}", "B+-tree index scan", idx_ms);
    println!("  speedup: {speedup:.1}x");
    if !smoke {
        assert!(
            speedup >= 5.0,
            "btree range speedup {speedup:.1}x below the 5x gate"
        );
        println!("  speedup gate passed: >= 5x");
    }

    fs::create_dir_all("results").ok();
    fs::write(out_path, json_a).expect("write results file");
    println!("  wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_override = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone());
    let out_path = out_override.unwrap_or_else(|| {
        if smoke {
            "results/BENCH_storage_smoke.json".to_string()
        } else {
            "results/BENCH_storage.json".to_string()
        }
    });
    run(smoke, &out_path);
}
