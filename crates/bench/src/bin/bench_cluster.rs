//! Sharded multi-tenant cluster sweep (E12): replication + failover +
//! admission control under chaos, gated on SLOs.
//!
//! Five scenarios against `dbgpt-cluster`, all on the simulated clock:
//!
//! 1. `single_node_identity` — 1 node, no replication, no metering: must
//!    match the single-server path outcome-for-outcome.
//! 2. `replicated_failover` — 5 nodes × R=3, failover on, a
//!    non-overlapping crash → partition → slow-node schedule. Gate:
//!    ≥99.9% availability, zero acked loss, no replica divergence.
//! 3. `no_failover` — the same chaos with failover off. Gate: availability
//!    measurably below scenario 2 (the failover payoff).
//! 4. `hot_tenant_admission` — Zipf-skewed overload with per-tenant
//!    buckets + bounded fair queue. Gate: well-behaved tenants' p99
//!    within SLO while the hot tenant is throttled.
//! 5. `hot_tenant_no_admission` — the control arm: same overload,
//!    metering off. Gate: well-behaved p99 blows the SLO (the damage
//!    admission prevents is real).
//!
//! The run asserts byte-identical reports for a repeated scenario, then
//! writes `results/BENCH_cluster.json`.
//!
//! ```text
//! cargo run -p dbgpt-bench --release --bin bench_cluster            # 2000 requests/scenario
//! cargo run -p dbgpt-bench --release --bin bench_cluster -- --smoke # 300 requests, CI gate
//! ```

use std::fmt::Write as _;
use std::fs;

use dbgpt_cluster::scenario::{
    run_cluster_scenario, run_single_server_baseline, ClusterReport, ClusterScenario,
};
use dbgpt_cluster::{AdmissionConfig, ClusterConfig, TrafficConfig};
use dbgpt_smmf::{NodeFault, NodeFaultEvent, NodeSchedule};

/// Seed for every run in the sweep.
const SEED: u64 = 42;
/// Latency SLO for every scenario (µs).
const SLO_US: u64 = 200_000;

/// Non-overlapping chaos: crash node 1, heal, partition node 2 away,
/// heal, slow node 3 by 4×, restore — windows sized as fractions of the
/// run's expected span so smoke and full runs see the same shape. No
/// two faults overlap, so R=3 always keeps a majority serving.
fn chaos_schedule(span_us: u64) -> NodeSchedule {
    let f = |x: f64| (span_us as f64 * x) as u64;
    NodeSchedule {
        name: "crash-partition-slow",
        events: vec![
            NodeFaultEvent {
                at_us: f(0.15),
                fault: NodeFault::CrashNode { node: 1 },
            },
            NodeFaultEvent {
                at_us: f(0.35),
                fault: NodeFault::RestartNode { node: 1 },
            },
            NodeFaultEvent {
                at_us: f(0.45),
                fault: NodeFault::Partition { minority: vec![2] },
            },
            NodeFaultEvent {
                at_us: f(0.60),
                fault: NodeFault::HealPartition,
            },
            NodeFaultEvent {
                at_us: f(0.70),
                fault: NodeFault::SlowNode {
                    node: 3,
                    factor: 4.0,
                },
            },
            NodeFaultEvent {
                at_us: f(0.85),
                fault: NodeFault::SlowNode {
                    node: 3,
                    factor: 1.0,
                },
            },
        ],
    }
}

fn print_report(r: &ClusterReport) {
    println!(
        "  {:<22} {:>2}x{} {:<9} | {:>7.3}% {:>6} {:>6} {:>9.1} {:>9.1} | fo {:>2} loss {}",
        r.name,
        r.nodes,
        r.replication,
        r.admission,
        100.0 * r.availability,
        r.throttled,
        r.failed,
        r.well_p99_us as f64 / 1000.0,
        r.latency_max_us as f64 / 1000.0,
        r.failovers,
        r.tenants - r.durable_tenants,
    );
}

/// The sweep, callable from `main` (and reusable from harnesses).
pub fn run(smoke: bool, out_path: &str) {
    let (requests, mode) = if smoke { (300usize, "smoke") } else { (2000usize, "full") };
    let tenants = 8usize;
    println!("BENCH cluster ({mode})");
    println!("  {requests} requests/scenario, {tenants} tenants, seed = {SEED}, simulated clock");

    let standard = TrafficConfig::standard(requests, tenants, SEED);
    let hot = TrafficConfig::hot_tenant(requests, tenants, SEED);
    let span_us = requests as u64 * standard.mean_gap_us;

    let identity_scn = ClusterScenario {
        name: "single_node_identity".into(),
        traffic: standard.clone(),
        cluster: ClusterConfig::single_node(SEED),
        schedule: NodeSchedule::healthy(),
        snapshot_every_us: 1_000_000,
        slo_us: SLO_US,
        profile_requests: 0,
    };
    let replicated_scn = ClusterScenario {
        name: "replicated_failover".into(),
        traffic: standard.clone(),
        cluster: ClusterConfig::replicated(5, 3, SEED),
        schedule: chaos_schedule(span_us),
        snapshot_every_us: 1_000_000,
        slo_us: SLO_US,
        profile_requests: 64,
    };
    let no_failover_scn = ClusterScenario {
        name: "no_failover".into(),
        cluster: ClusterConfig {
            failover: false,
            ..ClusterConfig::replicated(5, 3, SEED)
        },
        profile_requests: 0,
        ..replicated_scn.clone()
    };
    let admission_scn = ClusterScenario {
        name: "hot_tenant_admission".into(),
        traffic: hot.clone(),
        cluster: ClusterConfig {
            admission: AdmissionConfig::metered(10.0, 3.0, 150_000),
            ..ClusterConfig::replicated(4, 2, SEED)
        },
        schedule: NodeSchedule::healthy(),
        snapshot_every_us: 1_000_000,
        slo_us: SLO_US,
        profile_requests: 0,
    };
    let unmetered_scn = ClusterScenario {
        name: "hot_tenant_no_admission".into(),
        cluster: ClusterConfig {
            admission: AdmissionConfig::unmetered_queueing(),
            ..ClusterConfig::replicated(4, 2, SEED)
        },
        ..admission_scn.clone()
    };

    // Determinism gate: the same scenario twice must be byte-identical.
    {
        let a = run_cluster_scenario(&replicated_scn);
        let b = run_cluster_scenario(&replicated_scn);
        assert_eq!(
            a.report.to_json(),
            b.report.to_json(),
            "cluster runs must be reproducible"
        );
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.folded, b.folded);
    }

    println!(
        "\n  {:<22} {:>6} {:<9} | {:>8} {:>6} {:>6} {:>9} {:>9} | failover/loss",
        "scenario", "topo", "admission", "avail", "shed", "fail", "wellp99ms", "max ms"
    );
    println!("  {}", "-".repeat(100));

    // 1. Identity: the 1-node cluster must equal the single-server path.
    let identity = run_cluster_scenario(&identity_scn);
    let baseline = run_single_server_baseline(&identity_scn.traffic, SEED);
    assert_eq!(
        identity.outcomes, baseline,
        "single-node cluster diverged from the single-server path"
    );
    print_report(&identity.report);

    // 2. Replication + failover under chaos.
    let replicated = run_cluster_scenario(&replicated_scn);
    print_report(&replicated.report);
    let rep = &replicated.report;
    assert!(
        rep.availability >= 0.999,
        "replicated+failover availability {:.4} < 0.999",
        rep.availability
    );
    assert_eq!(rep.durable_tenants, rep.tenants, "acked ops were lost");
    assert_eq!(rep.divergent_replicas, 0, "replicas diverged");
    assert!(rep.failovers > 0, "chaos must exercise failover");
    assert!(rep.catchup_ops > 0, "recovery must exercise catch-up");
    assert!(rep.folded_stacks > 0, "profiling must capture stacks");

    // 3. Same chaos, failover off: measurably degraded.
    let no_failover = run_cluster_scenario(&no_failover_scn);
    print_report(&no_failover.report);
    assert!(
        no_failover.report.availability < rep.availability - 0.005,
        "no-failover availability {:.4} not measurably below {:.4}",
        no_failover.report.availability,
        rep.availability
    );
    assert!(
        no_failover.report.alerts_fired > 0,
        "SLO burn-rate alerts must fire when the cluster degrades"
    );
    assert_eq!(
        no_failover.report.divergent_replicas, 0,
        "even a degraded cluster must not diverge"
    );

    // 4. Admission keeps well-behaved tenants inside the SLO while the
    //    hot tenant is throttled.
    let admitted = run_cluster_scenario(&admission_scn);
    print_report(&admitted.report);
    assert!(
        admitted.report.well_p99_us <= SLO_US,
        "well-behaved p99 {}us blew the {}us SLO despite admission",
        admitted.report.well_p99_us,
        SLO_US
    );
    assert!(
        admitted.report.throttled > 0,
        "the hot tenant must actually be throttled"
    );
    assert_eq!(admitted.report.failed, 0, "healthy cluster must not fail");

    // 5. Control arm: without metering the same overload starves others.
    let unmetered = run_cluster_scenario(&unmetered_scn);
    print_report(&unmetered.report);
    assert!(
        unmetered.report.well_p99_us > SLO_US,
        "without admission well-behaved p99 {}us should blow the SLO",
        unmetered.report.well_p99_us
    );
    assert_eq!(unmetered.report.throttled, 0, "control arm sheds nothing");

    let runs = [
        &identity.report,
        &replicated.report,
        &no_failover.report,
        &admitted.report,
        &unmetered.report,
    ];
    let mut json = String::with_capacity(4096);
    let _ = write!(
        json,
        "{{\n  \"bench\": \"cluster\",\n  \"mode\": \"{mode}\",\n  \
         \"generated_by\": \"cargo run -p dbgpt-bench --release --bin bench_cluster\",\n  \
         \"seed\": {SEED},\n  \"requests_per_scenario\": {requests},\n  \
         \"tenants\": {tenants},\n  \"slo_us\": {SLO_US},\n  \
         \"gates\": {{\n    \"identity_vs_single_server\": \"byte-identical\",\n    \
         \"replicated_availability_min\": 0.999,\n    \
         \"acked_loss\": 0,\n    \
         \"well_behaved_p99_within_slo_under_admission\": true\n  }},\n  \
         \"runs\": [\n"
    );
    for (i, rep) in runs.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&rep.to_json());
        json.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    fs::create_dir_all("results").ok();
    fs::write(out_path, json).expect("write results file");
    println!("\n  determinism + availability + admission gates passed");
    println!("  wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_override = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone());
    let out_path = out_override.unwrap_or_else(|| {
        if smoke {
            "results/BENCH_cluster_smoke.json".to_string()
        } else {
            "results/BENCH_cluster.json".to_string()
        }
    });
    run(smoke, &out_path);
}
