//! Experiment: the model zoo's trade-offs — the demo's "visitors can also
//! choose local models such as Qwen and GLM" (§3) made quantitative.
//!
//! For every built-in model: context window, chat template, simulated
//! serving profile (TTFT / decode rate), multilinguality, whether the
//! Local privacy mode admits it, and an end-to-end KBQA sanity answer.
//!
//! ```text
//! cargo run -p dbgpt-bench --bin exp_models --release
//! ```

use dbgpt_llm::catalog::{builtin_spec, BUILTIN_MODELS};
use dbgpt_smmf::{ApiServer, DeploymentMode};
use dbgpt_apps::{AppContext, KnowledgeQa};
use dbgpt_agents::LlmClient;
use std::sync::Arc;

fn main() {
    println!("Experiment: the simulated model zoo");
    println!("===================================\n");
    println!(
        "{:<12} | {:>7} | {:<7} | {:>9} | {:>8} | {:>5} | {:>13}",
        "model", "window", "format", "ttft(ms)", "tok/s", "zh", "local-private"
    );
    println!("{}", "-".repeat(78));
    for name in BUILTIN_MODELS {
        let spec = builtin_spec(name).expect("builtin");
        let format = format!("{:?}", spec.prompt_format);
        // Does the Local deployment admit this model?
        let mut local = ApiServer::new(DeploymentMode::Local);
        let private_ok = local.deploy_builtin(name, 1).is_ok();
        println!(
            "{:<12} | {:>7} | {:<7} | {:>9.0} | {:>8.1} | {:>5} | {:>13}",
            name,
            spec.context_window,
            format,
            spec.latency.ttft_us(256) as f64 / 1000.0,
            spec.latency.decode_tokens_per_sec(),
            if spec.multilingual { "✓" } else { "✗" },
            if private_ok { "✓" } else { "✗ (remote)" },
        );
    }

    println!("\nEnd-to-end KBQA per deployable model (same question, same corpus):");
    for name in BUILTIN_MODELS {
        // Deploy under the least restrictive mode the model accepts.
        let mut server = ApiServer::new(DeploymentMode::Cloud);
        server.deploy_builtin(name, 1).expect("cloud admits all");
        let ctx = AppContext::local_default()
            .with_llm(LlmClient::smmf(Arc::new(server), name.to_string()));
        let qa = KnowledgeQa::new(ctx);
        qa.ingest(
            "doc",
            "The AWEL protocol layer schedules agent workflows as DAGs.",
        );
        match qa.ask("what schedules agent workflows?") {
            Ok(r) => println!("  {name:<12} → {}", r.answer.lines().next().unwrap_or("")),
            Err(e) => println!("  {name:<12} → ERROR: {e}"),
        }
    }
}
