//! Thread-sweep benchmark for the parallel sharded retrieval path (E5).
//!
//! Measures flat-scan retrieval throughput on the E5 synthetic corpus
//! three ways — the seed implementation (cosine with per-candidate norm
//! recomputation + full sort), the rebuilt single-thread hot path
//! (normalized kernel + heap top-k), and the sharded parallel scan at
//! 1/2/4/8 threads — then emits `results/BENCH_rag_parallel.json` so the
//! perf trajectory is tracked from PR to PR.
//!
//! ```text
//! cargo run -p dbgpt-bench --release --bin bench_rag_parallel            # full sweep, ≥5k chunks
//! cargo run -p dbgpt-bench --release --bin bench_rag_parallel -- --smoke # tiny corpus, CI gate
//! ```
//!
//! Before timing anything, the run asserts that every parallel
//! configuration returns a hit list identical to the sequential scan.

use std::fs;
use std::time::Instant;

use dbgpt_bench::{doc_queries, synthetic_corpus};
use dbgpt_rag::{
    cosine_similarity, Embedder, Embedding, HashEmbedder, RetrievalConfig, VectorStore,
};

/// Hits requested per query.
const K: usize = 10;

/// Thread counts swept.
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// The seed retrieval path, reproduced verbatim for the before/after
/// comparison: recompute both operand norms per candidate, collect every
/// score, sort everything, truncate.
fn seed_search_flat(vectors: &[Embedding], query: &Embedding, k: usize) -> Vec<(usize, f32)> {
    let mut hits: Vec<(usize, f32)> = vectors
        .iter()
        .enumerate()
        .map(|(i, v)| (i, cosine_similarity(query, v)))
        .collect();
    hits.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    hits.truncate(k);
    hits
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_override = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone());
    let (n_docs, reps, mode) = if smoke {
        (300usize, 2usize, "smoke")
    } else {
        (5000usize, 20usize, "full")
    };
    let out_path = out_override.unwrap_or_else(|| {
        if smoke {
            "results/BENCH_rag_parallel_smoke.json".to_string()
        } else {
            "results/BENCH_rag_parallel.json".to_string()
        }
    });

    let hardware = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!("BENCH rag_parallel ({mode})");
    println!("  corpus: {n_docs} docs, k = {K}, reps = {reps}, hardware threads = {hardware}");

    // One chunk per synthetic doc: the corpus size is the chunk count.
    let docs = synthetic_corpus(n_docs, 5);
    let embedder = HashEmbedder::new();
    let raw: Vec<Embedding> = docs.iter().map(|d| embedder.embed(&d.text)).collect();
    let mut store = VectorStore::new();
    for v in &raw {
        store.add(v.clone());
    }

    // Query mix: specific-document queries plus one topical query,
    // embedded once up front so the sweep times the scan, not the encoder.
    let mut queries: Vec<Embedding> = doc_queries(&docs, 40, 9)
        .into_iter()
        .map(|(_, q)| embedder.embed(&q))
        .collect();
    queries.push(embedder.embed("how does the embedding index affect recall and ranking?"));

    // Correctness gate before any timing: every parallel configuration
    // must return the sequential hit list, bit for bit.
    let mut parallel_matches_sequential = true;
    for q in &queries {
        let sequential = store.search_flat_with(q, K, &RetrievalConfig::SEQUENTIAL);
        for &threads in &THREAD_SWEEP {
            let cfg = RetrievalConfig {
                threads,
                topk_crossover: 0,
                ..RetrievalConfig::default()
            };
            if store.search_flat_with(q, K, &cfg) != sequential {
                parallel_matches_sequential = false;
            }
        }
    }
    assert!(
        parallel_matches_sequential,
        "parallel hit lists diverged from sequential"
    );

    let total_queries = (reps * queries.len()) as f64;

    // Seed baseline.
    for q in &queries {
        std::hint::black_box(seed_search_flat(&raw, q, K));
    }
    let t = Instant::now();
    for _ in 0..reps {
        for q in &queries {
            std::hint::black_box(seed_search_flat(&raw, q, K));
        }
    }
    let seed_qps = total_queries / t.elapsed().as_secs_f64();

    let measure = |cfg: &RetrievalConfig| -> f64 {
        for q in &queries {
            std::hint::black_box(store.search_flat_with(q, K, cfg));
        }
        let t = Instant::now();
        for _ in 0..reps {
            for q in &queries {
                std::hint::black_box(store.search_flat_with(q, K, cfg));
            }
        }
        total_queries / t.elapsed().as_secs_f64()
    };

    let single_qps = measure(&RetrievalConfig::SEQUENTIAL);

    println!("\n  {:<26} | {:>10} | {:>10}", "configuration", "qps", "µs/query");
    println!("  {}", "-".repeat(52));
    println!("  {:<26} | {:>10.0} | {:>10.1}", "seed (cosine + sort)", seed_qps, 1e6 / seed_qps);
    println!(
        "  {:<26} | {:>10.0} | {:>10.1}",
        "kernel + heap, 1 thread", single_qps, 1e6 / single_qps
    );

    let mut one_thread_qps = single_qps;
    let mut sweep = Vec::new();
    for &threads in &THREAD_SWEEP {
        let cfg = RetrievalConfig {
            threads,
            topk_crossover: 0,
            ..RetrievalConfig::default()
        };
        let qps = measure(&cfg);
        if threads == 1 {
            one_thread_qps = qps;
        }
        let speedup = qps / one_thread_qps;
        println!(
            "  {:<26} | {:>10.0} | {:>10.1}",
            format!("sharded scan, {threads} thread(s)"),
            qps,
            1e6 / qps
        );
        sweep.push(serde_json::json!({
            "threads": threads,
            "qps": qps,
            "per_query_us": 1e6 / qps,
            "speedup_vs_1t": speedup,
        }));
    }

    // Multi-thread speedup gate. On a 1-hardware-thread host the sharded
    // scan cannot beat sequential no matter what the code does (PR 1's
    // sweep was flat for exactly this reason), so the gate downgrades to
    // informative there — and in smoke mode, where the corpus sits below
    // any realistic crossover. It is enforced only on a full run with
    // real parallel hardware.
    let best_multi = sweep
        .iter()
        .filter(|s| s["threads"].as_u64().unwrap_or(1) > 1)
        .map(|s| s["speedup_vs_1t"].as_f64().unwrap_or(0.0))
        .fold(0.0f64, f64::max);
    let gate_enforced = hardware > 1 && !smoke;
    if gate_enforced {
        assert!(
            best_multi >= 1.15,
            "multi-thread sharded scan should beat 1 thread on {hardware}-thread \
             hardware (best speedup {best_multi:.2}x)"
        );
    } else if hardware == 1 {
        println!(
            "\n  note: 1 hardware thread — multi-thread speedup gate is informative \
             (best {best_multi:.2}x)"
        );
    }

    let json = serde_json::json!({
        "bench": "rag_parallel",
        "mode": mode,
        "speedup_gate": {
            "enforced": gate_enforced,
            "best_multithread_speedup_vs_1t": best_multi,
            "reason": if hardware == 1 {
                "informative: only 1 hardware thread available"
            } else if smoke {
                "informative: smoke-size corpus"
            } else {
                "enforced: >= 1.15x required from some multi-thread config"
            },
        },
        "generated_by": "cargo run -p dbgpt-bench --release --bin bench_rag_parallel",
        "hardware_threads": hardware,
        "corpus_docs": n_docs,
        "chunks": store.len(),
        "dim": embedder.dim(),
        "k": K,
        "queries": queries.len(),
        "reps": reps,
        "parallel_matches_sequential": parallel_matches_sequential,
        "seed_baseline": {
            "qps": seed_qps,
            "per_query_us": 1e6 / seed_qps,
        },
        "single_thread": {
            "qps": single_qps,
            "per_query_us": 1e6 / single_qps,
            "speedup_vs_seed": single_qps / seed_qps,
        },
        "threads": sweep,
    });
    fs::create_dir_all("results").ok();
    fs::write(
        &out_path,
        serde_json::to_string_pretty(&json).expect("serialize") + "\n",
    )
    .expect("write results file");
    println!("\n  single-thread speedup vs seed: {:.2}x", single_qps / seed_qps);
    println!("  wrote {out_path}");
}
