//! Continuous-batching serving sweep for the SMMF path (E8).
//!
//! Drives `ApiServer::chat_many` over a workload of chat requests that
//! share a system/ICL-style prompt prefix — the dominant prompt shape in
//! production serving — across batch size × prefix-share × prefix-cache
//! on/off, with the sequential path (`EngineConfig::disabled()`) as the
//! baseline, then emits `results/BENCH_llm_serving.json`. Everything runs
//! on the simulated µs clock, so the numbers are exactly reproducible.
//! The run asserts:
//!
//! - per-request completions byte-identical to the sequential path for
//!   every configuration;
//! - batched simulated throughput ≥ sequential for every enabled config,
//!   and ≥ 3× for the batched+cached high-prefix-share configs;
//! - a nonzero prefix-cache hit rate whenever the cache is on;
//! - byte-identical JSON rows for a repeated tuple (determinism gate).
//!
//! ```text
//! cargo run -p dbgpt-bench --release --bin bench_llm_serving            # 120 requests/config
//! cargo run -p dbgpt-bench --release --bin bench_llm_serving -- --smoke # 24 requests, CI gate
//! ```

use std::fmt::Write as _;
use std::fs;

use dbgpt_llm::{Completion, GenerationParams};
use dbgpt_smmf::{ApiServer, DeploymentMode, EngineConfig, ResilienceConfig, RoutingPolicy};

/// Seed for every run in the sweep.
const SEED: u64 = 42;

/// Batch sizes swept (1 = continuous batching with a single slot).
const BATCHES: [usize; 4] = [1, 4, 8, 16];

/// Token budget generous enough that the request cap, not the budget, is
/// the binding constraint at every swept batch size.
const BATCH_TOKENS: usize = 1 << 15;

/// Prefix-cache capacity when the cache is on.
const CACHE_TOKENS: usize = 1 << 16;

/// A prefix-share level: how much of each prompt is the shared prefix.
struct Share {
    name: &'static str,
    shared_words: usize,
    unique_words: usize,
}

const SHARES: [Share; 2] = [
    Share { name: "low", shared_words: 12, unique_words: 48 },
    Share { name: "high", shared_words: 80, unique_words: 8 },
];

/// Deterministic filler vocabulary for synthetic prompts.
const WORDS: [&str; 12] = [
    "schema", "index", "join", "query", "rows", "plan", "scan", "cost", "merge", "sort",
    "filter", "group",
];

/// `requests` chat prompts: one shared system prefix per share level, a
/// unique per-request suffix — the chat-template/ICL prefix shape the
/// radix cache exists for.
fn workload(requests: usize, share: &Share) -> Vec<(String, GenerationParams)> {
    let shared: Vec<&str> = (0..share.shared_words).map(|i| WORDS[i % WORDS.len()]).collect();
    let system = format!("### Task: chat\nYou are DB-GPT. {}", shared.join(" "));
    (0..requests)
        .map(|r| {
            let unique: Vec<&str> = (0..share.unique_words)
                .map(|i| WORDS[(i * 7 + r) % WORDS.len()])
                .collect();
            (
                format!("{system}\nUser question {r}: {}", unique.join(" ")),
                GenerationParams::default(),
            )
        })
        .collect()
}

/// One sim-qwen replica behind the given engine configuration. A single
/// worker keeps the swept batch size the only concurrency knob.
fn server(engine: EngineConfig) -> ApiServer {
    let mut s = ApiServer::with_engine(
        DeploymentMode::Local,
        RoutingPolicy::RoundRobin,
        SEED,
        ResilienceConfig::disabled(),
        engine,
    );
    s.deploy_builtin("sim-qwen", 1).expect("deploy sim-qwen");
    s
}

/// Measured outcome of one (share, batch, cache) cell.
struct Cell {
    completions: Vec<Completion>,
    makespan_us: u64,
    prompt_tokens: u64,
    completion_tokens: u64,
    hit_tokens: u64,
    lookup_tokens: u64,
}

fn run_cell(jobs: &[(String, GenerationParams)], engine: EngineConfig) -> Cell {
    let s = server(engine);
    let completions: Vec<Completion> = s
        .chat_many("sim-qwen", jobs)
        .into_iter()
        .map(|r| r.expect("fault-free deployment"))
        .collect();
    let (mut prompt_tokens, mut completion_tokens) = (0u64, 0u64);
    for c in &completions {
        prompt_tokens += c.usage.prompt_tokens as u64;
        completion_tokens += c.usage.completion_tokens as u64;
    }
    let (hit_tokens, lookup_tokens) = s
        .prefix_cache_stats()
        .iter()
        .fold((0, 0), |(h, l), (_, st)| (h + st.hit_tokens, l + st.lookup_tokens));
    Cell {
        completions,
        makespan_us: s.now_us(),
        prompt_tokens,
        completion_tokens,
        hit_tokens,
        lookup_tokens,
    }
}

/// One result row, serialized as a stable JSON object.
fn row_json(share: &str, batch: usize, cache: bool, requests: usize, cell: &Cell, baseline_us: u64) -> String {
    let tokens = cell.prompt_tokens + cell.completion_tokens;
    let throughput = tokens as f64 * 1e6 / cell.makespan_us as f64;
    let speedup = baseline_us as f64 / cell.makespan_us as f64;
    let hit_rate = if cell.lookup_tokens == 0 {
        0.0
    } else {
        cell.hit_tokens as f64 / cell.lookup_tokens as f64
    };
    format!(
        "{{\"share\": \"{share}\", \"batch\": {batch}, \"cache\": {cache}, \
         \"requests\": {requests}, \"prompt_tokens\": {}, \"completion_tokens\": {}, \
         \"cached_hit_tokens\": {}, \"hit_rate\": {hit_rate:.4}, \
         \"makespan_us\": {}, \"throughput_tok_per_s\": {throughput:.1}, \
         \"speedup_vs_sequential\": {speedup:.3}}}",
        cell.prompt_tokens, cell.completion_tokens, cell.hit_tokens, cell.makespan_us,
    )
}

/// The sweep, callable from `main` (and reusable from harnesses).
pub fn run(smoke: bool, out_path: &str) {
    let (requests, mode) = if smoke { (24usize, "smoke") } else { (120usize, "full") };
    println!("BENCH llm serving ({mode})");
    println!("  {requests} requests/config, seed = {SEED}, simulated clock (deterministic)");

    // Determinism gate: the same tuple twice must yield byte-identical rows.
    {
        let jobs = workload(requests, &SHARES[1]);
        let cfg = EngineConfig::full()
            .with_batch_requests(4)
            .with_batch_tokens(BATCH_TOKENS)
            .with_prefix_cache(CACHE_TOKENS);
        let a = row_json("high", 4, true, requests, &run_cell(&jobs, cfg), 1);
        let b = row_json("high", 4, true, requests, &run_cell(&jobs, cfg), 1);
        assert_eq!(a, b, "serving runs must be reproducible");
    }

    println!(
        "\n  {:<6} {:>5} {:>6} | {:>12} {:>9} {:>12} {:>8}",
        "share", "batch", "cache", "makespan ms", "hit rate", "tok/s", "speedup"
    );
    println!("  {}", "-".repeat(70));

    let mut rows: Vec<String> = Vec::new();
    for share in &SHARES {
        let jobs = workload(requests, share);
        // Sequential/uncached baseline: the engine-disabled path, i.e.
        // exactly today's ApiServer::chat loop.
        let baseline = run_cell(&jobs, EngineConfig::disabled());
        println!(
            "  {:<6} {:>5} {:>6} | {:>12.1} {:>9.4} {:>12.1} {:>8.3}",
            share.name,
            "seq",
            "-",
            baseline.makespan_us as f64 / 1000.0,
            0.0,
            (baseline.prompt_tokens + baseline.completion_tokens) as f64 * 1e6
                / baseline.makespan_us as f64,
            1.0,
        );
        rows.push(row_json(share.name, 0, false, requests, &baseline, baseline.makespan_us));
        for &batch in &BATCHES {
            for cache in [false, true] {
                let cfg = EngineConfig::full()
                    .with_batch_requests(batch)
                    .with_batch_tokens(BATCH_TOKENS)
                    .with_prefix_cache(if cache { CACHE_TOKENS } else { 0 });
                let cell = run_cell(&jobs, cfg);
                assert_eq!(
                    cell.completions, baseline.completions,
                    "{}/b{batch}/cache={cache}: batched completions must be \
                     byte-identical to the sequential path",
                    share.name
                );
                assert!(
                    cell.makespan_us <= baseline.makespan_us,
                    "{}/b{batch}/cache={cache}: batched makespan {}µs exceeds \
                     sequential {}µs",
                    share.name, cell.makespan_us, baseline.makespan_us
                );
                if cache {
                    assert!(
                        cell.hit_tokens > 0,
                        "{}/b{batch}: prefix cache saw no hits",
                        share.name
                    );
                }
                let speedup = baseline.makespan_us as f64 / cell.makespan_us as f64;
                if cache && batch >= 8 && share.name == "high" {
                    assert!(
                        speedup >= 3.0,
                        "{}/b{batch}/cached: speedup {speedup:.2} below the 3x bar",
                        share.name
                    );
                }
                println!(
                    "  {:<6} {:>5} {:>6} | {:>12.1} {:>9.4} {:>12.1} {:>8.3}",
                    share.name,
                    batch,
                    if cache { "on" } else { "off" },
                    cell.makespan_us as f64 / 1000.0,
                    if cell.lookup_tokens == 0 {
                        0.0
                    } else {
                        cell.hit_tokens as f64 / cell.lookup_tokens as f64
                    },
                    (cell.prompt_tokens + cell.completion_tokens) as f64 * 1e6
                        / cell.makespan_us as f64,
                    speedup,
                );
                rows.push(row_json(share.name, batch, cache, requests, &cell, baseline.makespan_us));
            }
        }
    }

    let mut json = String::with_capacity(rows.len() * 256);
    let _ = write!(
        json,
        "{{\n  \"bench\": \"llm_serving\",\n  \"mode\": \"{mode}\",\n  \
         \"generated_by\": \"cargo run -p dbgpt-bench --release --bin bench_llm_serving\",\n  \
         \"seed\": {SEED},\n  \"requests_per_config\": {requests},\n  \
         \"model\": \"sim-qwen\",\n  \
         \"note\": \"batch=0 rows are the sequential (engine-disabled) baseline; \
all completions byte-identical across rows\",\n  \
         \"runs\": [\n"
    );
    for (i, row) in rows.iter().enumerate() {
        json.push_str("    ");
        json.push_str(row);
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    fs::create_dir_all("results").ok();
    fs::write(out_path, json).expect("write results file");
    println!("\n  byte-identity + throughput + cache-hit gates passed");
    println!("  wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_override = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone());
    let out_path = out_override.unwrap_or_else(|| {
        if smoke {
            "results/BENCH_llm_serving_smoke.json".to_string()
        } else {
            "results/BENCH_llm_serving.json".to_string()
        }
    });
    run(smoke, &out_path);
}
