//! Columnar-vs-row SQL executor benchmark + gates (E11).
//!
//! Loads a million-row `events` table (plus a 10k-row `users` dimension)
//! through the bulk-ingest path into two engines — one on the default row
//! executor, one on `ExecConfig::columnar()` — and drives identical
//! scan/filter/aggregate/join workloads through both:
//!
//! 1. **Equivalence gate**: every workload's result must match per cell
//!    (same schema, same rows, same order) across the two executors.
//! 2. **Speedup gate** (full mode): the columnar executor must be ≥ 3×
//!    faster than the row executor on the scan, filter and group-by
//!    aggregate workloads. The join workload is reported but ungated
//!    (its output re-materialises rows either way).
//!
//! Emits `results/BENCH_sql_columnar.json`.
//!
//! ```text
//! cargo run -p dbgpt-bench --release --bin bench_sql_columnar            # full
//! cargo run -p dbgpt-bench --release --bin bench_sql_columnar -- --smoke # CI gate
//! ```

use std::fmt::Write as _;
use std::fs;
use std::time::Instant;

use dbgpt_sqlengine::{Engine, ExecConfig, Value};

/// Seed for the fixture generator.
const SEED: u64 = 42;

const CATEGORIES: &[&str] = &["c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"];
const SEGMENTS: &[&str] = &["free", "pro", "team", "enterprise"];

/// xorshift64* — deterministic fixture data without a rand dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Deterministic fixture rows for `events` and `users`.
fn fixture(events: usize, users: usize) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let mut rng = Rng(SEED | 1);
    let event_rows = (0..events)
        .map(|id| {
            vec![
                Value::Int(id as i64),
                Value::Int(rng.below(users as u64) as i64),
                Value::Float(rng.below(100_000) as f64 / 200.0),
                Value::Bool(rng.below(2) == 0),
                Value::Text(CATEGORIES[rng.below(CATEGORIES.len() as u64) as usize].into()),
            ]
        })
        .collect();
    let user_rows = (0..users)
        .map(|id| {
            vec![
                Value::Int(id as i64),
                Value::Text(SEGMENTS[rng.below(SEGMENTS.len() as u64) as usize].into()),
            ]
        })
        .collect();
    (event_rows, user_rows)
}

/// Build one engine and bulk-load the fixture into it.
fn build_engine(
    exec: ExecConfig,
    event_rows: &[Vec<Value>],
    user_rows: &[Vec<Value>],
) -> Engine {
    let mut e = Engine::with_exec(exec);
    e.execute("CREATE TABLE events (id INT, user_id INT, amount FLOAT, flag BOOL, category TEXT)")
        .unwrap();
    e.execute("CREATE TABLE users (id INT, segment TEXT)").unwrap();
    let db = e.database_mut();
    db.table_mut("events")
        .unwrap()
        .insert_rows(event_rows.to_vec())
        .unwrap();
    db.table_mut("users")
        .unwrap()
        .insert_rows(user_rows.to_vec())
        .unwrap();
    e
}

struct Workload {
    name: &'static str,
    sql: &'static str,
    /// Part of the ≥ 3× speedup gate in full mode.
    gated: bool,
}

const WORKLOADS: &[Workload] = &[
    Workload {
        name: "scan_agg",
        sql: "SELECT COUNT(*), SUM(amount), MIN(amount), MAX(amount) FROM events",
        gated: true,
    },
    Workload {
        name: "filter_agg",
        sql: "SELECT COUNT(*), SUM(amount) FROM events \
              WHERE amount > 250.0 AND category = 'c3'",
        gated: true,
    },
    Workload {
        name: "filter_rows",
        sql: "SELECT id, amount FROM events WHERE amount > 495.0 AND flag = TRUE",
        gated: false,
    },
    Workload {
        name: "group_agg",
        sql: "SELECT category, COUNT(*), SUM(amount), AVG(amount) FROM events \
              GROUP BY category ORDER BY category",
        gated: true,
    },
    Workload {
        name: "join_agg",
        sql: "SELECT u.segment, COUNT(*), SUM(e.amount) FROM events e \
              JOIN users u ON e.user_id = u.id GROUP BY u.segment ORDER BY u.segment",
        gated: false,
    },
];

/// Best-of-`reps` wall-clock milliseconds for one query on one engine.
fn time_ms(e: &mut Engine, sql: &str, reps: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let r = e.execute(sql).expect("workload query failed");
        let ms = t.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(r.rows.len());
        best = best.min(ms);
    }
    best
}

/// The sweep, callable from `main`.
pub fn run(smoke: bool, out_path: &str) {
    let (events, users, reps, mode) = if smoke {
        (20_000usize, 500usize, 2u32, "smoke")
    } else {
        (1_000_000usize, 10_000usize, 3u32, "full")
    };
    println!("BENCH sql_columnar ({mode})");
    println!("  events = {events}, users = {users}, seed = {SEED}, best of {reps}");

    let t = Instant::now();
    let (event_rows, user_rows) = fixture(events, users);
    let mut row_engine = build_engine(ExecConfig::row(), &event_rows, &user_rows);
    let mut col_engine = build_engine(ExecConfig::columnar(), &event_rows, &user_rows);
    drop((event_rows, user_rows));
    println!("  bulk-ingested both engines in {:.1}s", t.elapsed().as_secs_f64());

    // Warmup: also builds the columnar mirror once; with no interleaved
    // DML every timed run reuses it (that is the serving-path shape:
    // Text-to-SQL candidate loops run k queries per mutation).
    for w in WORKLOADS {
        let a = row_engine.execute(w.sql).unwrap();
        let b = col_engine.execute(w.sql).unwrap();
        // Equivalence gate: per-cell identity, both orders.
        assert_eq!(
            a.column_names(),
            b.column_names(),
            "schema diverged on {}",
            w.name
        );
        assert_eq!(a.rows.len(), b.rows.len(), "row count diverged on {}", w.name);
        for (i, (ra, rb)) in a.rows.iter().zip(&b.rows).enumerate() {
            for (j, (va, vb)) in ra.values().iter().zip(rb.values()).enumerate() {
                assert_eq!(va, vb, "cell ({i},{j}) diverged on {}", w.name);
            }
        }
    }
    println!("  equivalence gate passed: all workloads identical per cell\n");

    println!(
        "  {:<12} {:>10} {:>10} {:>9} {:>10}",
        "workload", "row ms", "col ms", "speedup", "rows out"
    );
    println!("  {}", "-".repeat(55));
    let mut results = Vec::new();
    for w in WORKLOADS {
        let row_ms = time_ms(&mut row_engine, w.sql, reps);
        let col_ms = time_ms(&mut col_engine, w.sql, reps);
        let speedup = row_ms / col_ms;
        let rows_out = col_engine.execute(w.sql).unwrap().rows.len();
        println!(
            "  {:<12} {:>10.2} {:>10.2} {:>8.2}x {:>10}{}",
            w.name,
            row_ms,
            col_ms,
            speedup,
            rows_out,
            if w.gated { "  [gated]" } else { "" }
        );
        results.push((w, row_ms, col_ms, speedup, rows_out));
    }

    // Speedup gate: only meaningful at the million-row scale.
    if !smoke {
        for (w, _, _, speedup, _) in &results {
            if w.gated {
                assert!(
                    *speedup >= 3.0,
                    "{} speedup {speedup:.2}x below the 3x gate",
                    w.name
                );
            }
        }
        println!("\n  speedup gate passed: >= 3x on scan/filter/aggregate");
    }

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"sql_columnar\",\n  \"mode\": \"{mode}\",\n  \
         \"generated_by\": \"cargo run -p dbgpt-bench --release --bin bench_sql_columnar\",\n  \
         \"seed\": {SEED},\n  \"events\": {events},\n  \"users\": {users},\n  \
         \"reps\": {reps},\n  \
         \"gates\": [\"row and columnar results identical per cell\"{}],\n  \
         \"workloads\": {{\n",
        if smoke {
            ""
        } else {
            ", \"columnar >= 3x on scan_agg/filter_agg/group_agg\""
        }
    );
    for (i, (w, row_ms, col_ms, speedup, rows_out)) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    \"{}\": {{\"row_ms\": {row_ms:.3}, \"columnar_ms\": {col_ms:.3}, \
             \"speedup\": {speedup:.2}, \"rows_out\": {rows_out}, \"gated\": {}}}",
            w.name, w.gated
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }\n}\n");
    fs::create_dir_all("results").ok();
    fs::write(out_path, json).expect("write results file");
    println!("  wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_override = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone());
    let out_path = out_override.unwrap_or_else(|| {
        if smoke {
            "results/BENCH_sql_columnar_smoke.json".to_string()
        } else {
            "results/BENCH_sql_columnar.json".to_string()
        }
    });
    run(smoke, &out_path);
}
