//! Regenerate **Figure 1**: the four-layer system design.
//!
//! Prints the machine-readable architecture map, then traces one request
//! of each kind through the full stack (application → server → module →
//! protocol) and reports per-app end-to-end latency — evidence that every
//! layer in the figure is live code.
//!
//! ```text
//! cargo run -p dbgpt-bench --bin figure1 --release
//! ```

use std::time::Instant;

use dbgpt::{architecture, DbGpt};

fn main() {
    println!("Figure 1: System design of DB-GPT");
    println!("=================================\n");
    for layer in architecture() {
        println!("┌─ {} ({})", layer.name, layer.section);
        for c in &layer.components {
            println!("│    • {c}");
        }
        println!("│    crates: {}", layer.crates.join(", "));
        println!("└──────────────────────────────────────────────");
    }

    println!("\nLive trace: one request per application through all layers\n");
    let mut db = DbGpt::builder().with_sales_demo().build().expect("system builds");
    db.ingest_document(
        "arch-doc",
        "DB-GPT has four layers: application, server, module and protocol.",
    );
    let turns = [
        ("chat2db   ", "SELECT COUNT(*) FROM orders"),
        ("chat2data ", "how many users are there?"),
        ("chat2viz  ", "pie chart of the total amount per category of orders"),
        ("kbqa      ", "how many layers does DB-GPT have?"),
        (
            "analysis  ",
            "Build sales reports and analyze user orders from at least three distinct dimensions",
        ),
    ];
    println!("{:<11} | {:>12} | outcome", "app", "latency");
    println!("{}", "-".repeat(70));
    for (app, input) in turns {
        let start = Instant::now();
        match db.chat(input) {
            Ok(out) => {
                let first_line = out.text.lines().find(|l| !l.trim().is_empty()).unwrap_or("");
                let preview: String = first_line.chars().take(60).collect();
                println!("{app} | {:>10.2?} | {preview}", start.elapsed());
            }
            Err(e) => println!("{app} | {:>10.2?} | ERROR: {e}", start.elapsed()),
        }
    }
}
