//! Cluster-wide telemetry pipeline bench (E15): cross-node trace
//! propagation, tail-based sampling, and the SQL-queryable store.
//!
//! Three scenarios against `dbgpt-cluster` with tracing enabled, all on
//! the simulated clock:
//!
//! 1. `keep_all_faulted` — 3 nodes × R=2, one crash/restart fault, no
//!    sampling. Gates: every acked request is one cross-node trace tree
//!    spanning ≥3 tracers (gateway + primary + replica); the fault
//!    produces real error traces; the SQL store's top-k-slowest-per-
//!    tenant answer matches the in-memory aggregator exactly.
//! 2. `budgeted_sampling` — the same run under a hard span budget with a
//!    slow-tail quota and a sparse baseline. Gates: the store stays at
//!    or under budget (error overflow excepted), 100% of error traces
//!    are retained, and every dropped trace is accounted to a reason.
//! 3. `disabled_overhead` — telemetry off. Gate: outcome-for-outcome
//!    identical to a plain `Cluster::new` run, zero spans recorded.
//!
//! The run asserts byte-identical reports for a repeated scenario, then
//! writes `results/BENCH_telemetry.json`.
//!
//! ```text
//! cargo run -p dbgpt-bench --release --bin bench_telemetry            # full
//! cargo run -p dbgpt-bench --release --bin bench_telemetry -- --smoke # CI gate
//! ```

use std::fmt::Write as _;
use std::fs;

use dbgpt_cluster::telemetry::{run_telemetry_scenario, TelemetryReport, TelemetryScenario};
use dbgpt_cluster::{generate, Cluster, ClusterConfig, Outcome, TelemetryConfig, TrafficConfig};
use dbgpt_obs::SamplePolicy;

/// Seed for every run in the sweep.
const SEED: u64 = 42;

fn print_report(r: &TelemetryReport) {
    println!(
        "  {:<18} {:>2}x{} | req {:>5} ok {:>5} fail {:>4} | spans {:>6}/{:>6} traces {:>5}/{:>5} | err {}/{} x-node {:>5} sql {}",
        r.name,
        r.nodes,
        r.replication,
        r.requests,
        r.ok,
        r.failed,
        r.spans_kept,
        r.spans_total,
        r.traces_kept,
        r.traces_total,
        r.error_traces_kept,
        r.error_traces,
        r.cross_node_traces,
        if r.sql_matches_oracle { "ok" } else { "MISMATCH" },
    );
}

/// The sweep, callable from `main` (and reusable from harnesses).
pub fn run(smoke: bool, out_path: &str) {
    let (requests, mode) = if smoke { (150usize, "smoke") } else { (800usize, "full") };
    let tenants = 4usize;
    println!("BENCH telemetry ({mode})");
    println!("  {requests} requests/scenario, {tenants} tenants, seed = {SEED}, simulated clock");

    let keep_all_scn = TelemetryScenario {
        name: "keep_all_faulted".into(),
        policy: SamplePolicy::keep_all(),
        ..TelemetryScenario::faulted(requests, tenants, SEED)
    };
    let budget = if smoke { 1200usize } else { 7000usize };
    let budgeted_scn = TelemetryScenario {
        name: "budgeted_sampling".into(),
        policy: SamplePolicy::budgeted(budget, 12, 150, SEED),
        ..TelemetryScenario::faulted(requests, tenants, SEED)
    };

    // Determinism gate: the same scenario twice must be byte-identical.
    {
        let a = run_telemetry_scenario(&budgeted_scn);
        let b = run_telemetry_scenario(&budgeted_scn);
        assert_eq!(
            a.report.to_json(),
            b.report.to_json(),
            "telemetry runs must be reproducible"
        );
        assert_eq!(a.tenant_view, b.tenant_view);
    }

    println!();

    // 1. Keep-all under a fault: trace shape + store fidelity.
    let keep_all = run_telemetry_scenario(&keep_all_scn);
    print_report(&keep_all.report);
    let ka = &keep_all.report;
    assert_eq!(ka.traces_total, ka.traces_kept, "keep-all drops nothing");
    assert!(ka.failed > 0, "the fault must produce failures");
    assert!(ka.error_traces > 0, "failures must become error traces");
    assert_eq!(ka.error_traces, ka.error_traces_kept);
    assert!(
        ka.max_trace_nodes >= 3,
        "traces must span gateway + primary + replica, got {}",
        ka.max_trace_nodes
    );
    assert!(
        ka.cross_node_traces >= ka.ok,
        "every acked request must be a cross-node trace"
    );
    assert!(ka.sql_matches_oracle, "SQL store diverged from aggregator");
    assert!(ka.store_span_rows == ka.spans_kept, "store row count");
    assert!(ka.store_exemplar_rows > 0, "exemplars must link latencies");
    assert!(ka.usage_tenants as usize == tenants && ka.usage_tokens > 0 && ka.usage_rows > 0);

    // 2. Budgeted tail sampling: bounded store, total error retention.
    let budgeted = run_telemetry_scenario(&budgeted_scn);
    print_report(&budgeted.report);
    let b = &budgeted.report;
    assert_eq!(b.error_traces, b.error_traces_kept, "errors never dropped");
    assert!(
        b.spans_kept <= budget as u64 || b.kept_alert + b.kept_slow + b.kept_sampled == 0,
        "budget exceeded by non-error traffic: {} > {budget}",
        b.spans_kept
    );
    assert!(b.traces_kept < b.traces_total, "sampling must drop traces");
    assert!(
        b.dropped_by_budget + b.dropped_by_sampling == b.traces_total - b.traces_kept,
        "every dropped trace needs a reason"
    );
    assert!(b.kept_slow > 0, "the slow tail must be retained");
    assert!(b.sql_matches_oracle, "sampled store diverged from aggregator");

    // 3. Telemetry disabled: identical outcomes, zero recording.
    let cfg = ClusterConfig::replicated(3, 2, SEED);
    let arrivals = generate(&TrafficConfig::standard(requests, tenants, SEED));
    let mut plain = Cluster::new(cfg.clone());
    let mut gated = Cluster::with_telemetry(cfg, TelemetryConfig::disabled());
    let mut identical = 0u64;
    for a in &arrivals {
        let (x, y) = (plain.handle(a, None), gated.handle(a, None));
        assert_eq!(x, y, "disabled telemetry changed an outcome at seq {}", a.seq);
        if matches!(x.outcome, Outcome::Ok { .. }) {
            identical += 1;
        }
    }
    let silent = gated.collect(&SamplePolicy::keep_all(), &[]);
    assert_eq!(silent.spans_total, 0, "disabled tracers must record nothing");
    assert_eq!(gated.usage().tenant_count(), 0, "disabled metering is empty");
    println!("  disabled_overhead   3x2 | req {:>5} ok {identical:>5} | outcome-identical, 0 spans", arrivals.len());

    let runs = [&keep_all.report, &budgeted.report];
    let mut json = String::with_capacity(2048);
    let _ = write!(
        json,
        "{{\n  \"bench\": \"telemetry\",\n  \"mode\": \"{mode}\",\n  \
         \"generated_by\": \"cargo run -p dbgpt-bench --release --bin bench_telemetry\",\n  \
         \"seed\": {SEED},\n  \"requests_per_scenario\": {requests},\n  \
         \"tenants\": {tenants},\n  \"span_budget\": {budget},\n  \
         \"gates\": {{\n    \"cross_node_trace_per_acked_request\": true,\n    \
         \"error_trace_retention\": \"100%\",\n    \
         \"store_within_span_budget\": true,\n    \
         \"sql_store_matches_aggregator\": true,\n    \
         \"disabled_path_outcome_identical\": true\n  }},\n  \
         \"runs\": [\n"
    );
    for (i, rep) in runs.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&rep.to_json());
        json.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    fs::create_dir_all("results").ok();
    fs::write(out_path, json).expect("write results file");
    println!("\n  determinism + trace-shape + retention + store-fidelity gates passed");
    println!("  wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_override = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone());
    let out_path = out_override.unwrap_or_else(|| {
        if smoke {
            "results/BENCH_telemetry_smoke.json".to_string()
        } else {
            "results/BENCH_telemetry.json".to_string()
        }
    });
    run(smoke, &out_path);
}
