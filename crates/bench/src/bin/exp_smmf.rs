//! Experiment **E2**: SMMF serving — routing policies, replica scaling,
//! and failover under injected faults.
//!
//! ```text
//! cargo run -p dbgpt-bench --bin exp_smmf --release
//! ```

use std::time::Instant;

use dbgpt_llm::{builtin_model, GenerationParams};
use dbgpt_smmf::{ApiServer, DeploymentMode, Locality, ModelWorker, RoutingPolicy};

const REQUESTS: usize = 300;

fn run_requests(server: &ApiServer, model: &str) -> (usize, u64) {
    let params = GenerationParams::default();
    let mut ok = 0usize;
    let mut simulated_us = 0u64;
    for i in 0..REQUESTS {
        let prompt = format!("summarize report number {i} about quarterly sales figures");
        if let Ok(c) = server.chat(model, &prompt, &params) {
            ok += 1;
            simulated_us += c.simulated_latency_us;
        }
    }
    (ok, simulated_us)
}

fn main() {
    println!("Experiment E2: SMMF routing, scaling and failover");
    println!("=================================================\n");

    // Part A: routing policy × replica count.
    println!("A. policy × replicas ({REQUESTS} requests each)");
    println!(
        "  {:<14} | {:>8} | {:>10} | {:>16} | {:>14}",
        "policy", "replicas", "success", "sim µs/request", "wall µs/req"
    );
    println!("  {}", "-".repeat(74));
    for &policy in RoutingPolicy::ALL {
        for replicas in [1usize, 2, 4, 8] {
            let mut server = ApiServer::with_policy(DeploymentMode::Local, policy, 7);
            server.deploy_builtin("sim-qwen", replicas).expect("deploys");
            let wall = Instant::now();
            let (ok, sim_us) = run_requests(&server, "sim-qwen");
            let wall_us = wall.elapsed().as_micros() as f64 / REQUESTS as f64;
            println!(
                "  {:<14} | {:>8} | {:>9.1}% | {:>16} | {:>14.1}",
                policy.name(),
                replicas,
                ok as f64 / REQUESTS as f64 * 100.0,
                sim_us / REQUESTS as u64,
                wall_us
            );
        }
    }

    // Part B: failover under injected faults.
    println!("\nB. failover with faulty replicas (4 workers, varying fault rate)");
    println!("  {:<12} | {:>10} | {:>12}", "fault rate", "success", "note");
    println!("  {}", "-".repeat(44));
    for fault_rate in [0.0, 0.2, 0.5, 0.9] {
        let mut server = ApiServer::with_policy(DeploymentMode::Local, RoutingPolicy::RoundRobin, 7);
        for i in 0..4 {
            let w = ModelWorker::with_faults(
                format!("w{i}"),
                builtin_model("sim-qwen").expect("builtin"),
                Locality::Local,
                fault_rate,
                i,
            );
            server.register_worker(w).expect("registers");
        }
        let (ok, _) = run_requests(&server, "sim-qwen");
        let note = if ok == REQUESTS {
            "failover hides all faults"
        } else {
            "some requests exhausted retries"
        };
        println!(
            "  {:<12.1} | {:>9.1}% | {note}",
            fault_rate,
            ok as f64 / REQUESTS as f64 * 100.0
        );
    }

    // Part C: the privacy boundary.
    println!("\nC. privacy enforcement");
    let mut local = ApiServer::new(DeploymentMode::Local);
    let remote = ModelWorker::with_faults(
        "remote-w0",
        builtin_model("proxy-gpt").expect("builtin"),
        Locality::Remote,
        0.0,
        0,
    );
    match local.register_worker(remote) {
        Err(e) => println!("  Local mode rejected a remote worker: {e}"),
        Ok(_) => println!("  UNEXPECTED: remote worker admitted in Local mode"),
    }
}
