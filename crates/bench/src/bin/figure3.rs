//! Regenerate **Figure 3**: the generative-data-analysis demonstration,
//! area by area (① new session … ⑦ follow-up turn).
//!
//! ```text
//! cargo run -p dbgpt-bench --bin figure3 --release
//! ```

use dbgpt::vis::chart::ChartType;
use dbgpt::DbGpt;

const DEMO_COMMAND: &str =
    "Build sales reports and analyze user orders from at least three distinct dimensions";

fn main() {
    println!("Figure 3: Demonstration of DB-GPT");
    println!("=================================\n");

    let mut db = DbGpt::builder().with_sales_demo().build().expect("system builds");

    // Area ①: a new chat session.
    let session = db.server().open_session("analysis");
    println!("① new chat session: {session}");

    // Area ②: the user's command.
    println!("② user command: {DEMO_COMMAND:?}\n");

    // Areas ③–⑤ run through the multi-agent framework.
    let out = db.chat(DEMO_COMMAND).expect("analysis succeeds");
    let report: dbgpt::apps::AnalysisReport =
        serde_json::from_value(out.payload.clone()).expect("report deserializes");

    println!("③ planner strategy ({} steps):", report.plan.len());
    for step in &report.plan {
        match (&step.chart, &step.dimension) {
            (Some(c), Some(d)) => println!("   {}. [{} chart · {d}] {}", step.id, c, step.description),
            _ => println!("   {}. [{}] {}", step.id, step.agent, step.description),
        }
    }

    println!("\n④ chart agents produced {} charts:", report.charts.len());
    for (spec, sql) in report.charts.iter().zip(&report.chart_sql) {
        println!("   • {} [{}]  ⟵  {}", spec.title, spec.chart_type.name(), sql);
    }

    println!("\n⑤ aggregated report:");
    println!("{}", report.render_ascii());

    // Area ⑥: the user switches a chart's type.
    let donut = report
        .charts
        .iter()
        .find(|c| c.chart_type == ChartType::Donut)
        .expect("demo yields a donut chart");
    let as_bar = donut.switch_type(ChartType::Bar);
    println!("⑥ user switches the donut to a bar chart:");
    println!("{}", dbgpt::vis::ascii::render(&as_bar));

    // Area ⑦: the conversation continues.
    let followup = "what is the total amount per month of orders?";
    println!("⑦ follow-up turn: {followup:?}");
    let out = db.chat(followup).expect("follow-up succeeds");
    println!("   → {}", out.text);

    // The communication history behind all of it is archived locally.
    let archive = db.analyzer().orchestrator().archive();
    println!(
        "\n(agent archive: {} message(s) across {} conversation(s))",
        archive.len(),
        archive.conversations().len()
    );
}
