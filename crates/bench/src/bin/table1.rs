//! Regenerate **Table 1**: the capability comparison between DB-GPT and
//! LangChain / LlamaIndex / PrivateGPT / ChatDB.
//!
//! Every cell is *probed*: the framework implementation is exercised and
//! its output behaviourally checked (see `dbgpt-baselines`). Run:
//!
//! ```text
//! cargo run -p dbgpt-bench --bin table1 --release
//! ```

use dbgpt_baselines::{all_frameworks, matrix};

fn main() {
    println!("Table 1: Comparison between DB-GPT and other tools (probed)");
    println!("============================================================\n");
    let mut frameworks = all_frameworks();
    let m = matrix(&mut frameworks);
    println!("{}", m.to_table());
    println!("(each ✓ = the probe executed that capability and its output passed validation)");
}
