#![warn(missing_docs)]

//! # dbgpt-bench — benchmark harness and experiment regeneration
//!
//! One binary per paper artifact (run with `cargo run -p dbgpt-bench
//! --bin <name> --release`):
//!
//! | Binary         | Regenerates |
//! |----------------|-------------|
//! | `table1`       | Table 1 — the probed capability matrix |
//! | `figure1`      | Figure 1 — the four-layer architecture + per-layer traffic |
//! | `figure2`      | Figure 2 — RAG recall/latency across retrieval strategies |
//! | `figure3`      | Figure 3 — the generative-data-analysis demo walk-through |
//! | `exp_text2sql` | Experiment E1 — base vs fine-tuned Text-to-SQL accuracy |
//! | `exp_smmf`     | Experiment E2 — SMMF routing/failover throughput |
//! | `exp_models`   | Experiment E7 — model-zoo trade-offs + per-model KBQA |
//!
//! Criterion micro-benchmarks (`cargo bench -p dbgpt-bench`): `sql_bench`
//! (E4), `rag_bench` (E5), `awel_bench` (E3), `agents_bench` (E6),
//! `smmf_bench` (E2). This library holds the shared workload generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dbgpt_rag::{Chunker, ChunkingStrategy, HashEmbedder, KnowledgeBase};
use dbgpt_sqlengine::Engine;
use std::sync::Arc;

/// Topic vocabulary for synthetic corpora; each document draws from one
/// topic so retrieval has a recoverable ground truth.
const TOPICS: &[(&str, &[&str])] = &[
    ("storage", &["btree", "compaction", "wal", "checkpoint", "page", "buffer"]),
    ("query", &["optimizer", "join", "predicate", "cardinality", "plan", "scan"]),
    ("serving", &["replica", "routing", "latency", "failover", "capacity", "worker"]),
    ("agents", &["planner", "aggregator", "workflow", "operator", "archive", "task"]),
    ("retrieval", &["embedding", "index", "recall", "ranking", "chunk", "corpus"]),
];

/// Entity-name pool woven into documents (teams/services). 60 names over
/// a 500-doc corpus means each name appears in ~8 documents.
const ENTITY_POOL: &[&str] = &[
    "argon", "basalt", "cobalt", "dynamo", "ember", "falcon", "garnet", "harbor", "indigo",
    "jasper", "krypton", "lumen", "marble", "nimbus", "onyx", "pylon", "quartz", "raven",
    "sable", "topaz", "umber", "vertex", "willow", "xenith", "yarrow", "zephyr", "anchor",
    "breeze", "cinder", "delta", "echo", "flint", "grove", "haven", "iris", "juniper",
    "kestrel", "lagoon", "mesa", "north", "opal", "prism", "quill", "ridge", "summit",
    "tundra", "ultra", "vapor", "wharf", "xylem", "yonder", "zenith", "atlas", "bay",
    "crest", "dune", "elm", "ford", "glen", "hollow",
];

/// A synthetic corpus document with its topic label (ground truth).
#[derive(Debug, Clone)]
pub struct CorpusDoc {
    /// Document id.
    pub id: String,
    /// Topic the document belongs to.
    pub topic: &'static str,
    /// Body text.
    pub text: String,
}

/// Generate `n` topic-labelled documents (seeded).
pub fn synthetic_corpus(n: usize, seed: u64) -> Vec<CorpusDoc> {
    let mut rng = StdRng::seed_from_u64(seed);
    let filler = [
        "the system", "we observe", "in practice", "measurements show", "the design",
        "under load", "operators report", "by default",
    ];
    (0..n)
        .map(|i| {
            let (topic, words) = TOPICS[i % TOPICS.len()];
            // Two named entities anchor the document (teams/services drawn
            // from a shared pool), so specific-document retrieval has a
            // recoverable signal without unique magic tokens.
            let e1 = ENTITY_POOL[rng.gen_range(0..ENTITY_POOL.len())];
            let e2 = ENTITY_POOL[rng.gen_range(0..ENTITY_POOL.len())];
            let mut text = format!(
                "Incident review by team {e1} concerning service {e2}. "
            );
            for _ in 0..4 {
                let w1 = words[rng.gen_range(0..words.len())];
                let w2 = words[rng.gen_range(0..words.len())];
                let f = filler[rng.gen_range(0..filler.len())];
                text.push_str(&format!("{f} {w1} interacts with {w2} in the {topic} subsystem. "));
            }
            text.push_str(&format!("Team {e1} tuned the {} settings for {e2}.", words[i % words.len()]));
            CorpusDoc {
                id: format!("doc-{i}"),
                topic,
                text,
            }
        })
        .collect()
}

/// Build a knowledge base over a synthetic corpus.
pub fn corpus_kb(docs: &[CorpusDoc]) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new(
        Chunker::new(ChunkingStrategy::Paragraph { max_tokens: 64 }),
        Arc::new(HashEmbedder::new()),
    );
    for d in docs {
        kb.add_text(&d.id, &d.text);
    }
    kb.build_ann_index();
    kb
}

/// Queries with ground-truth topics, one per topic.
pub fn corpus_queries() -> Vec<(&'static str, String)> {
    TOPICS
        .iter()
        .map(|(topic, words)| {
            (
                *topic,
                format!("how does {} relate to {} in {topic}?", words[0], words[1]),
            )
        })
        .collect()
}

/// Build a seeded orders table of `n` rows for SQL benchmarks.
pub fn orders_engine(n: usize, seed: u64) -> Engine {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut engine = Engine::new();
    engine
        .execute("CREATE TABLE orders (id INT, user_id INT, amount FLOAT, category TEXT, month TEXT)")
        .expect("ddl");
    engine
        .execute("CREATE TABLE users (id INT, name TEXT, city TEXT)")
        .expect("ddl");
    let cats = ["books", "tech", "food", "toys"];
    let months = ["jan", "feb", "mar", "apr", "may", "jun"];
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        rows.push(format!(
            "({}, {}, {:.1}, '{}', '{}')",
            i,
            rng.gen_range(0..100),
            rng.gen_range(1.0..500.0),
            cats[rng.gen_range(0..cats.len())],
            months[rng.gen_range(0..months.len())],
        ));
        if rows.len() == 500 || i == n - 1 {
            engine
                .execute(&format!("INSERT INTO orders VALUES {}", rows.join(", ")))
                .expect("insert");
            rows.clear();
        }
    }
    let mut rows = Vec::new();
    for i in 0..100 {
        rows.push(format!("({i}, 'user{i}', 'city{}')", i % 10));
    }
    engine
        .execute(&format!("INSERT INTO users VALUES {}", rows.join(", ")))
        .expect("insert");
    engine
}

/// The harder task: retrieve one *specific* document. Each query is built
/// from a sampled document's own vocabulary (without copying a full
/// sentence), and the ground truth is that document id. With ~100
/// same-topic near-duplicates per document, hit@k separates the
/// strategies where topic-level recall saturates.
pub fn doc_queries(docs: &[CorpusDoc], n: usize, seed: u64) -> Vec<(String, String)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let d = &docs[rng.gen_range(0..docs.len())];
            // The query mentions the document's anchors plus a couple of
            // its topic words — enough signal to be findable, enough
            // overlap with ~8 sibling documents to be non-trivial.
            let raw: Vec<&str> = d
                .text
                .split_whitespace()
                .map(|w| w.trim_matches(|c: char| !c.is_alphanumeric()))
                .collect();
            let anchor = |marker: &str| {
                raw.windows(2)
                    .find(|w| w[0] == marker)
                    .map(|w| w[1])
                    .unwrap_or(raw[0])
            };
            let team = anchor("team");
            let service = anchor("service");
            let words: Vec<&str> = raw.iter().copied().filter(|w| w.len() > 4).collect();
            let w1 = words[rng.gen_range(0..words.len())];
            let w2 = words[rng.gen_range(0..words.len())];
            (
                d.id.clone(),
                format!("what did team {team} report about {w1} and {w2} on service {service}?"),
            )
        })
        .collect()
}

/// Hit@k on the specific-document task.
pub fn hit_at_k(
    kb: &KnowledgeBase,
    queries: &[(String, String)],
    strategy: dbgpt_rag::RetrievalStrategy,
    k: usize,
) -> f64 {
    let mut hits = 0usize;
    for (target, q) in queries {
        if kb
            .retrieve(q, k, strategy)
            .iter()
            .any(|r| &r.chunk.document_id == target)
        {
            hits += 1;
        }
    }
    hits as f64 / queries.len().max(1) as f64
}

/// Recall@k: fraction of queries whose top-k hits contain a chunk of the
/// ground-truth topic.
pub fn recall_at_k(
    kb: &KnowledgeBase,
    docs: &[CorpusDoc],
    strategy: dbgpt_rag::RetrievalStrategy,
    k: usize,
) -> f64 {
    let queries = corpus_queries();
    let mut hits = 0usize;
    for (topic, q) in &queries {
        let results = kb.retrieve(q, k, strategy);
        let found = results.iter().any(|r| {
            docs.iter()
                .find(|d| d.id == r.chunk.document_id)
                .map(|d| d.topic == *topic)
                .unwrap_or(false)
        });
        if found {
            hits += 1;
        }
    }
    hits as f64 / queries.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgpt_rag::RetrievalStrategy;

    #[test]
    fn corpus_is_deterministic_and_labelled() {
        let a = synthetic_corpus(20, 1);
        let b = synthetic_corpus(20, 1);
        assert_eq!(a.len(), 20);
        assert_eq!(a[0].text, b[0].text);
        assert_eq!(a[0].topic, "storage");
        assert_eq!(a[1].topic, "query");
    }

    #[test]
    fn kb_builds_and_recall_is_high_for_vector() {
        let docs = synthetic_corpus(50, 2);
        let kb = corpus_kb(&docs);
        assert!(kb.chunk_count() > 0);
        let recall = recall_at_k(&kb, &docs, RetrievalStrategy::Vector, 5);
        assert!(recall >= 0.8, "vector recall@5 = {recall}");
    }

    #[test]
    fn orders_engine_populates() {
        let mut e = orders_engine(1000, 3);
        let n = e.execute("SELECT COUNT(*) FROM orders").unwrap();
        assert_eq!(n.rows[0][0].as_i64(), Some(1000));
        let g = e
            .execute("SELECT category, SUM(amount) FROM orders GROUP BY category")
            .unwrap();
        assert_eq!(g.rows.len(), 4);
    }

    #[test]
    fn queries_cover_every_topic() {
        assert_eq!(corpus_queries().len(), TOPICS.len());
    }
}
