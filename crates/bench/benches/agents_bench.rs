//! Experiment E6: multi-agent overhead — end-to-end goal execution across
//! plan sizes, and the cost of history archiving.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use serde_json::json;

use dbgpt_agents::{
    AgentMessage, HistoryArchive, LlmClient, MessageKind, Orchestrator,
};
use dbgpt_llm::builtin_model;

fn goal_with_steps(n: usize) -> String {
    let clauses: Vec<String> = (0..n).map(|i| format!("do thing number {i}")).collect();
    clauses.join(", ")
}

fn bench_goal_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("agents_goal");
    group.sample_size(20);
    for steps in [1usize, 4, 8] {
        let goal = goal_with_steps(steps);
        group.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, _| {
            let mut orch =
                Orchestrator::new(LlmClient::direct(builtin_model("sim-qwen").unwrap()));
            b.iter(|| orch.execute_goal(std::hint::black_box(&goal)).unwrap())
        });
    }
    group.finish();
}

fn bench_archive(c: &mut Criterion) {
    use criterion::BatchSize;

    let mut group = c.benchmark_group("agents_archive");
    // An unbounded archive degrades as it grows (Vec + file append), so
    // each sample appends a fixed batch of 100 messages to a FRESH
    // archive — the measurement stays stationary.
    group.sample_size(30);
    let msg = AgentMessage {
        seq: 0,
        conversation: "bench".into(),
        from: "planner".into(),
        to: "worker".into(),
        kind: MessageKind::Task,
        content: json!({"description": "benchmark task payload", "id": 7}),
    };
    let record_100 = |archive: HistoryArchive, msg: &AgentMessage| {
        for _ in 0..100 {
            archive.record(msg.clone()).unwrap();
        }
        archive
    };
    group.bench_function("record_100_in_memory", |b| {
        b.iter_batched(
            HistoryArchive::in_memory,
            |archive| record_100(archive, &msg),
            BatchSize::SmallInput,
        )
    });
    let path = std::env::temp_dir().join("dbgpt-bench-archive.jsonl");
    group.bench_function("record_100_durable", |b| {
        b.iter_batched(
            || {
                let _ = std::fs::remove_file(&path);
                HistoryArchive::at_path(&path).unwrap()
            },
            |archive| record_100(archive, &msg),
            BatchSize::SmallInput,
        )
    });
    let _ = std::fs::remove_file(&path);
    group.finish();
}

criterion_group!(benches, bench_goal_execution, bench_archive);
criterion_main!(benches);
