//! Experiment E3: AWEL scheduling overhead — batch vs async execution
//! across DAG widths and depths, plus DSL parse cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use serde_json::json;

use dbgpt_awel::{ops, Dag, DagBuilder, ExecutionMode, OperatorRegistry, Scheduler};

/// A fan-out/fan-in DAG of the given width.
fn wide_dag(width: usize) -> Dag {
    let mut b = DagBuilder::new("wide")
        .node("src", ops::identity())
        .node("sink", ops::map_all(|vs| json!(vs.len())));
    for i in 0..width {
        let name = format!("w{i}");
        b = b
            .node(name.clone(), ops::map(|v| json!(v.as_i64().unwrap_or(0) + 1)))
            .edge("src", name.clone())
            .edge(name, "sink");
    }
    b.build().expect("valid dag")
}

/// A linear chain DAG of the given depth.
fn deep_dag(depth: usize) -> Dag {
    let mut b = DagBuilder::new("deep");
    for i in 0..depth {
        b = b.node(format!("n{i}"), ops::map(|v| json!(v.as_i64().unwrap_or(0) + 1)));
        if i > 0 {
            b = b.edge(format!("n{}", i - 1), format!("n{i}"));
        }
    }
    b.build().expect("valid dag")
}

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("awel_modes");
    let scheduler = Scheduler::new();
    for width in [4usize, 16, 64] {
        let dag = wide_dag(width);
        for mode in [ExecutionMode::Batch, ExecutionMode::Async] {
            let label = match mode {
                ExecutionMode::Batch => "batch",
                ExecutionMode::Async => "async",
            };
            group.bench_with_input(BenchmarkId::new(label, width), &mode, |b, &m| {
                b.iter(|| scheduler.run(&dag, json!(1), m).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("awel_depth");
    let scheduler = Scheduler::new();
    for depth in [8usize, 64, 256] {
        let dag = deep_dag(depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| scheduler.run_batch(&dag, json!(0)).unwrap())
        });
    }
    group.finish();
}

fn bench_stream(c: &mut Criterion) {
    let scheduler = Scheduler::new();
    let dag = deep_dag(8);
    c.bench_function("awel_stream_100_events", |b| {
        b.iter(|| {
            scheduler
                .run_stream(&dag, (0..100).map(|i| json!(i)))
                .unwrap()
        })
    });
}

fn bench_dsl_parse(c: &mut Criterion) {
    let mut registry = OperatorRegistry::with_builtins();
    registry.register("plan", ops::identity());
    registry.register("chart", ops::identity());
    let dsl = "dag sales {\n\
        node c1 = chart; node c2 = chart; node c3 = chart;\n\
        plan >> [c1, c2, c3] >> join;\n\
    }";
    c.bench_function("awel_dsl_parse", |b| {
        b.iter(|| dbgpt_awel::parse_dsl(std::hint::black_box(dsl), &registry).unwrap())
    });
}

criterion_group!(benches, bench_modes, bench_depth, bench_stream, bench_dsl_parse);
criterion_main!(benches);
