//! Experiment E5: RAG micro-benchmarks — embedding, index construction,
//! and query cost per strategy across corpus sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dbgpt_bench::{corpus_kb, synthetic_corpus};
use dbgpt_rag::{Embedder, HashEmbedder, RetrievalConfig, RetrievalStrategy, VectorStore};

fn bench_embedding(c: &mut Criterion) {
    let embedder = HashEmbedder::new();
    let text = "the optimizer estimates cardinality for every join predicate \
                before choosing a physical plan for the scan";
    c.bench_function("rag_embed_one", |b| {
        b.iter(|| embedder.embed(std::hint::black_box(text)))
    });
}

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("rag_index_build");
    group.sample_size(10);
    for size in [100usize, 500] {
        let docs = synthetic_corpus(size, 5);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| corpus_kb(std::hint::black_box(&docs)))
        });
    }
    group.finish();
}

fn bench_retrieval_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("rag_query");
    for size in [200usize, 1000] {
        let docs = synthetic_corpus(size, 5);
        let kb = corpus_kb(&docs);
        let query = "how does the embedding index affect recall and ranking?";
        for &strategy in RetrievalStrategy::ALL {
            group.bench_with_input(
                BenchmarkId::new(strategy.name(), size),
                &strategy,
                |b, &s| b.iter(|| kb.retrieve(std::hint::black_box(query), 5, s)),
            );
        }
    }
    group.finish();
}

fn bench_rerank(c: &mut Criterion) {
    let docs = synthetic_corpus(500, 5);
    let kb = corpus_kb(&docs);
    let query = "incident review concerning checkpoint compaction";
    let mut group = c.benchmark_group("rag_rerank");
    group.bench_function("retrieve_k5", |b| {
        b.iter(|| kb.retrieve(std::hint::black_box(query), 5, RetrievalStrategy::Hybrid))
    });
    group.bench_function("retrieve_reranked_k5", |b| {
        b.iter(|| kb.retrieve_reranked(std::hint::black_box(query), 5, RetrievalStrategy::Hybrid))
    });
    group.finish();
}

fn bench_parallel_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("rag_parallel_scan");
    group.sample_size(10);
    let docs = synthetic_corpus(5000, 5);
    let embedder = HashEmbedder::new();
    let mut store = VectorStore::new();
    for d in &docs {
        store.add(embedder.embed(&d.text));
    }
    let query = embedder.embed("how does the embedding index affect recall and ranking?");
    for threads in [1usize, 2, 4, 8] {
        let cfg = RetrievalConfig {
            threads,
            topk_crossover: 0,
            ..RetrievalConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("threads", threads), &cfg, |b, cfg| {
            b.iter(|| store.search_flat_with(std::hint::black_box(&query), 10, cfg))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_embedding,
    bench_index_build,
    bench_retrieval_strategies,
    bench_rerank,
    bench_parallel_scan
);
criterion_main!(benches);
