//! Experiment E4: SQL engine micro-benchmarks — scan/filter/join/aggregate
//! throughput and the optimizer ablation (rules on vs off).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dbgpt_bench::orders_engine;
use dbgpt_sqlengine::plan::Optimizer;
use dbgpt_sqlengine::Engine;

fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("sql_operators");
    let queries = [
        ("scan", "SELECT * FROM orders"),
        ("filter", "SELECT id FROM orders WHERE amount > 250"),
        (
            "aggregate",
            "SELECT category, SUM(amount), COUNT(*) FROM orders GROUP BY category",
        ),
        (
            "hash_join",
            "SELECT o.id, u.name FROM orders o JOIN users u ON o.user_id = u.id",
        ),
        (
            "sort_limit",
            "SELECT id FROM orders ORDER BY amount DESC LIMIT 10",
        ),
        ("distinct", "SELECT DISTINCT category FROM orders"),
    ];
    for rows in [1_000usize, 10_000] {
        let mut engine = orders_engine(rows, 7);
        for (name, sql) in queries {
            group.bench_with_input(
                BenchmarkId::new(name, rows),
                &rows,
                |b, _| b.iter(|| engine.execute(std::hint::black_box(sql)).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_optimizer_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sql_optimizer_ablation");
    // A query where pushdown + pruning pay: selective filter over a join.
    let sql = "SELECT o.id FROM orders o JOIN users u ON o.user_id = u.id \
               WHERE o.amount > 400 AND u.city = 'city3'";
    let seed_engine = orders_engine(5_000, 7);
    for (label, optimizer) in [("optimized", Optimizer::new()), ("unoptimized", Optimizer::disabled())] {
        let mut engine = Engine::with_optimizer(optimizer);
        *engine.database_mut() = seed_engine.database().clone();
        group.bench_function(label, |b| {
            b.iter(|| engine.execute(std::hint::black_box(sql)).unwrap())
        });
    }
    group.finish();
}

fn bench_parse_and_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("sql_frontend");
    let sql = "SELECT category, SUM(amount) AS total FROM orders \
               WHERE amount > 10 GROUP BY category HAVING SUM(amount) > 100 \
               ORDER BY total DESC LIMIT 5";
    group.bench_function("parse", |b| {
        b.iter(|| dbgpt_sqlengine::parser::parse(std::hint::black_box(sql)).unwrap())
    });
    let engine = orders_engine(10, 7);
    group.bench_function("explain", |b| {
        b.iter(|| engine.explain(std::hint::black_box(sql)).unwrap())
    });
    group.finish();
}

fn bench_index_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sql_index_ablation");
    // Point lookup on a text column: posting-list scan vs full scan.
    let sql = "SELECT id FROM orders WHERE category = 'tech'";
    for (label, indexed) in [("full_scan", false), ("hash_index", true)] {
        let mut engine = orders_engine(10_000, 7);
        if indexed {
            engine.execute("CREATE INDEX idx_cat ON orders (category)").unwrap();
        }
        group.bench_function(label, |b| {
            b.iter(|| engine.execute(std::hint::black_box(sql)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_operators,
    bench_optimizer_ablation,
    bench_parse_and_plan,
    bench_index_ablation
);
criterion_main!(benches);
