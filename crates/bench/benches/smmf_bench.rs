//! Experiment E2 (criterion half): SMMF dispatch cost per routing policy
//! and replica count, and failover overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dbgpt_llm::{builtin_model, GenerationParams};
use dbgpt_smmf::{ApiServer, DeploymentMode, Locality, ModelWorker, RoutingPolicy};

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("smmf_routing");
    let params = GenerationParams::default();
    for &policy in RoutingPolicy::ALL {
        for replicas in [1usize, 4] {
            let mut server = ApiServer::with_policy(DeploymentMode::Local, policy, 7);
            server.deploy_builtin("sim-qwen", replicas).unwrap();
            group.bench_with_input(
                BenchmarkId::new(policy.name(), replicas),
                &replicas,
                |b, _| {
                    b.iter(|| {
                        server
                            .chat("sim-qwen", std::hint::black_box("ping request"), &params)
                            .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_failover(c: &mut Criterion) {
    let mut group = c.benchmark_group("smmf_failover");
    let params = GenerationParams::default();
    for (label, fault) in [("healthy", 0.0), ("flaky_half", 0.5)] {
        let mut server = ApiServer::with_policy(DeploymentMode::Local, RoutingPolicy::RoundRobin, 7);
        for i in 0..4 {
            let w = ModelWorker::with_faults(
                format!("w{i}"),
                builtin_model("sim-qwen").unwrap(),
                Locality::Local,
                fault,
                i,
            );
            server.register_worker(w).unwrap();
        }
        group.bench_function(label, |b| {
            b.iter(|| {
                // Under faults some requests exhaust retries; both outcomes
                // count as completed dispatch work.
                let _ = server.chat("sim-qwen", std::hint::black_box("ping"), &params);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing, bench_failover);
criterion_main!(benches);
