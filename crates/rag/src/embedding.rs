//! The neural-encoder stand-in: deterministic hashed embeddings.
//!
//! "each paragraph is encoded into a multidimensional vector using a
//! neural encoder" (§2.3). Offline we substitute a *feature-hashing*
//! encoder: every unigram and bigram of the text is hashed into a
//! fixed-dimensional vector with a signed contribution, and the result is
//! L2-normalised. This preserves what the RAG pipeline needs from an
//! encoder — texts sharing vocabulary land close in cosine space, the map
//! is deterministic, and encoding is cheap — without model weights.

use serde::{Deserialize, Serialize};

use crate::error::RagError;

/// A dense embedding vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Embedding(pub Vec<f32>);

impl Embedding {
    /// Dimension of the vector.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.0.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Consume the vector, returning its unit-normalized form together
    /// with the original L2 norm. A zero (or non-finite-norm) vector is
    /// returned unchanged so its dot product with anything stays 0 —
    /// matching the [`cosine_similarity`] zero-vector convention.
    pub fn into_unit(self) -> (Embedding, f32) {
        let norm = self.norm();
        if norm > 0.0 && norm.is_finite() {
            let mut v = self.0;
            for x in &mut v {
                *x /= norm;
            }
            (Embedding(v), norm)
        } else {
            (self, norm)
        }
    }

    /// A unit-normalized copy (zero vector stays zero).
    pub fn unit(&self) -> Embedding {
        self.clone().into_unit().0
    }
}

/// Plain dot product. On *unit* vectors this equals cosine similarity —
/// the normalized-vector kernel of the retrieval hot path: [`VectorStore`]
/// normalizes once at insert time, so per-candidate scoring needs no
/// square roots or divisions at all.
///
/// [`VectorStore`]: crate::vector_store::VectorStore
pub fn dot(a: &Embedding, b: &Embedding) -> f32 {
    debug_assert_eq!(a.dim(), b.dim());
    a.0.iter().zip(&b.0).map(|(x, y)| x * y).sum()
}

/// Cosine similarity in `[-1, 1]`; 0 when either vector is zero.
///
/// Kept as the exact reference formula: it recomputes both operand norms
/// per call, which the store-side kernel ([`dot`] over pre-normalized
/// vectors) avoids. Property tests pin the two to within 1e-5.
pub fn cosine_similarity(a: &Embedding, b: &Embedding) -> f32 {
    debug_assert_eq!(a.dim(), b.dim());
    let dot: f32 = a.0.iter().zip(&b.0).map(|(x, y)| x * y).sum();
    let na = a.norm();
    let nb = b.norm();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

/// Anything that turns text into an embedding.
pub trait Embedder: Send + Sync {
    /// Output dimension.
    fn dim(&self) -> usize;

    /// Encode one text.
    fn embed(&self, text: &str) -> Embedding;

    /// Validate a vector against this embedder's dimension.
    fn check(&self, e: &Embedding) -> Result<(), RagError> {
        if e.dim() != self.dim() {
            return Err(RagError::DimensionMismatch {
                expected: self.dim(),
                found: e.dim(),
            });
        }
        Ok(())
    }
}

/// The feature-hashing encoder (see module docs).
#[derive(Debug, Clone)]
pub struct HashEmbedder {
    dim: usize,
    seed: u64,
}

impl HashEmbedder {
    /// Default: 128 dimensions.
    pub fn new() -> Self {
        HashEmbedder { dim: 128, seed: 0x5EED }
    }

    /// Custom dimension (min 8).
    pub fn with_dim(dim: usize) -> Self {
        HashEmbedder {
            dim: dim.max(8),
            seed: 0x5EED,
        }
    }

    /// FNV-1a with a seed salt.
    fn hash(&self, token: &str, salt: u64) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed.wrapping_mul(salt | 1);
        for b in token.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Lowercased alphanumeric tokens (CJK chars count individually).
    fn tokens(text: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut current = String::new();
        for c in text.chars() {
            if c.is_alphanumeric() || c == '_' {
                if (0x4E00..=0x9FFF).contains(&(c as u32)) {
                    if !current.is_empty() {
                        out.push(std::mem::take(&mut current));
                    }
                    out.push(c.to_string());
                } else {
                    current.extend(c.to_lowercase());
                }
            } else if !current.is_empty() {
                out.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            out.push(current);
        }
        out
    }
}

impl Default for HashEmbedder {
    fn default() -> Self {
        HashEmbedder::new()
    }
}

impl Embedder for HashEmbedder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, text: &str) -> Embedding {
        let mut v = vec![0.0f32; self.dim];
        let tokens = Self::tokens(text);
        // Unigram features.
        for t in &tokens {
            let h = self.hash(t, 1);
            let idx = (h % self.dim as u64) as usize;
            let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
            v[idx] += sign;
            // A second projection halves collision damage.
            let h2 = self.hash(t, 7);
            let idx2 = (h2 % self.dim as u64) as usize;
            let sign2 = if (h2 >> 32) & 1 == 0 { 1.0 } else { -1.0 };
            v[idx2] += 0.5 * sign2;
        }
        // Bigram features give mild order sensitivity.
        for pair in tokens.windows(2) {
            let joined = format!("{} {}", pair[0], pair[1]);
            let h = self.hash(&joined, 13);
            let idx = (h % self.dim as u64) as usize;
            let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
            v[idx] += 0.5 * sign;
        }
        // L2 normalise (zero vector stays zero).
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        Embedding(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emb(text: &str) -> Embedding {
        HashEmbedder::new().embed(text)
    }

    #[test]
    fn deterministic() {
        assert_eq!(emb("hello world"), emb("hello world"));
    }

    #[test]
    fn normalised() {
        let e = emb("some nontrivial text here");
        assert!((e.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_text_is_zero_vector() {
        let e = emb("");
        assert_eq!(e.norm(), 0.0);
        assert_eq!(cosine_similarity(&e, &emb("x")), 0.0);
    }

    #[test]
    fn identical_texts_have_similarity_one() {
        let s = cosine_similarity(&emb("database query"), &emb("database query"));
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn related_beats_unrelated() {
        let q = emb("sales report by product category");
        let related = emb("the sales report shows revenue per product category");
        let unrelated = emb("quantum entanglement of photon pairs in vacuum");
        assert!(
            cosine_similarity(&q, &related) > cosine_similarity(&q, &unrelated),
            "related={} unrelated={}",
            cosine_similarity(&q, &related),
            cosine_similarity(&q, &unrelated)
        );
    }

    #[test]
    fn case_insensitive() {
        let a = emb("Database Query");
        let b = emb("database query");
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn word_order_matters_slightly() {
        let a = emb("fast database");
        let b = emb("database fast");
        let s = cosine_similarity(&a, &b);
        assert!(s > 0.5 && s < 0.9999, "similarity {s}");
    }

    #[test]
    fn cjk_tokens_contribute() {
        let a = emb("销售报表");
        let b = emb("销售数据");
        let c = emb("quantum physics");
        assert!(cosine_similarity(&a, &b) > cosine_similarity(&a, &c));
    }

    #[test]
    fn dimension_check() {
        let e = HashEmbedder::with_dim(32);
        assert_eq!(e.dim(), 32);
        assert_eq!(e.embed("x").dim(), 32);
        let wrong = Embedding(vec![0.0; 16]);
        assert!(e.check(&wrong).is_err());
        assert!(e.check(&e.embed("x")).is_ok());
    }

    #[test]
    fn min_dim_enforced() {
        assert_eq!(HashEmbedder::with_dim(2).dim(), 8);
    }

    #[test]
    fn into_unit_preserves_direction_and_norm() {
        let raw = Embedding(vec![3.0, 4.0]);
        let (unit, norm) = raw.clone().into_unit();
        assert!((norm - 5.0).abs() < 1e-6);
        assert!((unit.norm() - 1.0).abs() < 1e-6);
        assert!((cosine_similarity(&raw, &unit) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn into_unit_zero_vector_is_fixed_point() {
        let (unit, norm) = Embedding(vec![0.0; 4]).into_unit();
        assert_eq!(norm, 0.0);
        assert_eq!(unit, Embedding(vec![0.0; 4]));
    }

    #[test]
    fn dot_on_units_equals_cosine() {
        let a = emb("sales report by category");
        let b = emb("report of category sales");
        let d = dot(&a.unit(), &b.unit());
        assert!((d - cosine_similarity(&a, &b)).abs() < 1e-5);
    }
}
