//! The neural-encoder stand-in: deterministic hashed embeddings.
//!
//! "each paragraph is encoded into a multidimensional vector using a
//! neural encoder" (§2.3). Offline we substitute a *feature-hashing*
//! encoder: every unigram and bigram of the text is hashed into a
//! fixed-dimensional vector with a signed contribution, and the result is
//! L2-normalised. This preserves what the RAG pipeline needs from an
//! encoder — texts sharing vocabulary land close in cosine space, the map
//! is deterministic, and encoding is cheap — without model weights.

use serde::{Deserialize, Serialize};

use crate::error::RagError;

/// A dense embedding vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Embedding(pub Vec<f32>);

impl Embedding {
    /// Dimension of the vector.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.0.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

/// Cosine similarity in `[-1, 1]`; 0 when either vector is zero.
pub fn cosine_similarity(a: &Embedding, b: &Embedding) -> f32 {
    debug_assert_eq!(a.dim(), b.dim());
    let dot: f32 = a.0.iter().zip(&b.0).map(|(x, y)| x * y).sum();
    let na = a.norm();
    let nb = b.norm();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

/// Anything that turns text into an embedding.
pub trait Embedder: Send + Sync {
    /// Output dimension.
    fn dim(&self) -> usize;

    /// Encode one text.
    fn embed(&self, text: &str) -> Embedding;

    /// Validate a vector against this embedder's dimension.
    fn check(&self, e: &Embedding) -> Result<(), RagError> {
        if e.dim() != self.dim() {
            return Err(RagError::DimensionMismatch {
                expected: self.dim(),
                found: e.dim(),
            });
        }
        Ok(())
    }
}

/// The feature-hashing encoder (see module docs).
#[derive(Debug, Clone)]
pub struct HashEmbedder {
    dim: usize,
    seed: u64,
}

impl HashEmbedder {
    /// Default: 128 dimensions.
    pub fn new() -> Self {
        HashEmbedder { dim: 128, seed: 0x5EED }
    }

    /// Custom dimension (min 8).
    pub fn with_dim(dim: usize) -> Self {
        HashEmbedder {
            dim: dim.max(8),
            seed: 0x5EED,
        }
    }

    /// FNV-1a with a seed salt.
    fn hash(&self, token: &str, salt: u64) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed.wrapping_mul(salt | 1);
        for b in token.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Lowercased alphanumeric tokens (CJK chars count individually).
    fn tokens(text: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut current = String::new();
        for c in text.chars() {
            if c.is_alphanumeric() || c == '_' {
                if (0x4E00..=0x9FFF).contains(&(c as u32)) {
                    if !current.is_empty() {
                        out.push(std::mem::take(&mut current));
                    }
                    out.push(c.to_string());
                } else {
                    current.extend(c.to_lowercase());
                }
            } else if !current.is_empty() {
                out.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            out.push(current);
        }
        out
    }
}

impl Default for HashEmbedder {
    fn default() -> Self {
        HashEmbedder::new()
    }
}

impl Embedder for HashEmbedder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, text: &str) -> Embedding {
        let mut v = vec![0.0f32; self.dim];
        let tokens = Self::tokens(text);
        // Unigram features.
        for t in &tokens {
            let h = self.hash(t, 1);
            let idx = (h % self.dim as u64) as usize;
            let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
            v[idx] += sign;
            // A second projection halves collision damage.
            let h2 = self.hash(t, 7);
            let idx2 = (h2 % self.dim as u64) as usize;
            let sign2 = if (h2 >> 32) & 1 == 0 { 1.0 } else { -1.0 };
            v[idx2] += 0.5 * sign2;
        }
        // Bigram features give mild order sensitivity.
        for pair in tokens.windows(2) {
            let joined = format!("{} {}", pair[0], pair[1]);
            let h = self.hash(&joined, 13);
            let idx = (h % self.dim as u64) as usize;
            let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
            v[idx] += 0.5 * sign;
        }
        // L2 normalise (zero vector stays zero).
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        Embedding(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emb(text: &str) -> Embedding {
        HashEmbedder::new().embed(text)
    }

    #[test]
    fn deterministic() {
        assert_eq!(emb("hello world"), emb("hello world"));
    }

    #[test]
    fn normalised() {
        let e = emb("some nontrivial text here");
        assert!((e.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_text_is_zero_vector() {
        let e = emb("");
        assert_eq!(e.norm(), 0.0);
        assert_eq!(cosine_similarity(&e, &emb("x")), 0.0);
    }

    #[test]
    fn identical_texts_have_similarity_one() {
        let s = cosine_similarity(&emb("database query"), &emb("database query"));
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn related_beats_unrelated() {
        let q = emb("sales report by product category");
        let related = emb("the sales report shows revenue per product category");
        let unrelated = emb("quantum entanglement of photon pairs in vacuum");
        assert!(
            cosine_similarity(&q, &related) > cosine_similarity(&q, &unrelated),
            "related={} unrelated={}",
            cosine_similarity(&q, &related),
            cosine_similarity(&q, &unrelated)
        );
    }

    #[test]
    fn case_insensitive() {
        let a = emb("Database Query");
        let b = emb("database query");
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn word_order_matters_slightly() {
        let a = emb("fast database");
        let b = emb("database fast");
        let s = cosine_similarity(&a, &b);
        assert!(s > 0.5 && s < 0.9999, "similarity {s}");
    }

    #[test]
    fn cjk_tokens_contribute() {
        let a = emb("销售报表");
        let b = emb("销售数据");
        let c = emb("quantum physics");
        assert!(cosine_similarity(&a, &b) > cosine_similarity(&a, &c));
    }

    #[test]
    fn dimension_check() {
        let e = HashEmbedder::with_dim(32);
        assert_eq!(e.dim(), 32);
        assert_eq!(e.embed("x").dim(), 32);
        let wrong = Embedding(vec![0.0; 16]);
        assert!(e.check(&wrong).is_err());
        assert!(e.check(&e.embed("x")).is_ok());
    }

    #[test]
    fn min_dim_enforced() {
        assert_eq!(HashEmbedder::with_dim(2).dim(), 8);
    }
}
