//! Adaptive In-Context Learning: prompt assembly with privacy redaction.
//!
//! The third stage of Figure 2: "ICL enhances DB-GPT's response by
//! integrating knowledge retrieval results during LLMs' inference. It
//! incorporates them into a predefined prompt template … and
//! incorporates privacy measures to protect private information" (§2.3).
//!
//! [`IclBuilder`] packs retrieved chunks into the structured-prompt
//! convention of `dbgpt-llm` under an explicit token budget (most relevant
//! chunks first; a chunk that would overflow the budget is skipped, and
//! packing continues with smaller ones). [`PrivacyPolicy`] redacts
//! sensitive spans — emails, phone numbers, and long digit runs — before
//! any text reaches a model.

use dbgpt_llm::Tokenizer;

use crate::error::RagError;
use crate::knowledge::RetrievedChunk;

/// Which sensitive spans to redact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrivacyPolicy {
    /// Redact `user@host.tld` shapes.
    pub redact_emails: bool,
    /// Redact phone-number shapes (7+ digits with separators).
    pub redact_phones: bool,
    /// Redact bare digit runs of 9+ (account/ID numbers).
    pub redact_long_numbers: bool,
}

impl PrivacyPolicy {
    /// Everything on.
    pub fn strict() -> Self {
        PrivacyPolicy {
            redact_emails: true,
            redact_phones: true,
            redact_long_numbers: true,
        }
    }

    /// Everything off.
    pub fn disabled() -> Self {
        PrivacyPolicy {
            redact_emails: false,
            redact_phones: false,
            redact_long_numbers: false,
        }
    }

    /// Apply the policy to `text`.
    pub fn redact(&self, text: &str) -> String {
        let mut out = text.to_string();
        if self.redact_emails {
            out = redact_emails(&out);
        }
        if self.redact_phones {
            out = redact_phones(&out);
        }
        if self.redact_long_numbers {
            out = redact_long_numbers(&out);
        }
        out
    }
}

impl Default for PrivacyPolicy {
    fn default() -> Self {
        PrivacyPolicy::strict()
    }
}

/// Replace `local@domain.tld` spans with `[REDACTED-EMAIL]`.
fn redact_emails(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let chars: Vec<char> = text.chars().collect();
    let is_local = |c: char| c.is_alphanumeric() || matches!(c, '.' | '_' | '-' | '+');
    let is_domain = |c: char| c.is_alphanumeric() || matches!(c, '.' | '-');
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] == '@' && i > 0 && is_local(chars[i - 1]) {
            // Walk back over the local part already emitted.
            let mut start = out.chars().count();
            let emitted: Vec<char> = out.chars().collect();
            while start > 0 && is_local(emitted[start - 1]) {
                start -= 1;
            }
            // Walk forward over the domain.
            let mut j = i + 1;
            let mut saw_dot = false;
            while j < chars.len() && is_domain(chars[j]) {
                if chars[j] == '.' {
                    saw_dot = true;
                }
                j += 1;
            }
            if saw_dot && j > i + 1 {
                let keep: String = emitted[..start].iter().collect();
                out = keep;
                out.push_str("[REDACTED-EMAIL]");
                i = j;
                continue;
            }
        }
        out.push(chars[i]);
        i += 1;
    }
    out
}

/// Replace phone-like runs (≥7 digits allowing `-`, space, `(`, `)`, `+`)
/// with `[REDACTED-PHONE]`.
fn redact_phones(text: &str) -> String {
    let chars: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i].is_ascii_digit() || (chars[i] == '+' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit())
        {
            let mut j = i;
            let mut digits = 0usize;
            while j < chars.len()
                && (chars[j].is_ascii_digit() || matches!(chars[j], '-' | ' ' | '(' | ')' | '+'))
            {
                if chars[j].is_ascii_digit() {
                    digits += 1;
                }
                j += 1;
            }
            // Trim trailing separators from the candidate span.
            let mut end = j;
            while end > i && !chars[end - 1].is_ascii_digit() {
                end -= 1;
            }
            if digits >= 7 {
                out.push_str("[REDACTED-PHONE]");
                i = end;
                continue;
            }
        }
        out.push(chars[i]);
        i += 1;
    }
    out
}

/// Replace bare digit runs of 9+ with `[REDACTED-ID]` (applied after the
/// phone rule, so only runs the phone rule left behind are caught).
fn redact_long_numbers(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut run = String::new();
    for c in text.chars() {
        if c.is_ascii_digit() {
            run.push(c);
        } else {
            if !run.is_empty() {
                if run.len() >= 9 {
                    out.push_str("[REDACTED-ID]");
                } else {
                    out.push_str(&run);
                }
                run.clear();
            }
            out.push(c);
        }
    }
    if !run.is_empty() {
        if run.len() >= 9 {
            out.push_str("[REDACTED-ID]");
        } else {
            out.push_str(&run);
        }
    }
    out
}

/// Builds ICL prompts from retrieved chunks (see module docs).
#[derive(Debug, Clone)]
pub struct IclBuilder {
    /// Token budget for the whole prompt.
    budget_tokens: usize,
    /// Privacy policy applied to context and question.
    policy: PrivacyPolicy,
    /// Task label emitted in the `### Task:` header.
    task: String,
    tokenizer: Tokenizer,
}

impl IclBuilder {
    /// Builder with a budget, strict privacy, and the `qa` task.
    pub fn new(budget_tokens: usize) -> Self {
        IclBuilder {
            budget_tokens,
            policy: PrivacyPolicy::strict(),
            task: "qa".into(),
            tokenizer: Tokenizer::new(),
        }
    }

    /// Override the privacy policy.
    pub fn with_policy(mut self, policy: PrivacyPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Override the task header.
    pub fn with_task(mut self, task: impl Into<String>) -> Self {
        self.task = task.into();
        self
    }

    /// Assemble the prompt. Chunks are taken in the given (ranked) order;
    /// any chunk that would overflow the remaining budget is skipped.
    /// Returns the prompt and the number of chunks included.
    pub fn build(
        &self,
        question: &str,
        chunks: &[RetrievedChunk],
    ) -> Result<(String, usize), RagError> {
        let question = self.policy.redact(question);
        let skeleton = format!("### Task: {}\n### Context:\n\n### Input:\n{question}", self.task);
        let skeleton_tokens = self.tokenizer.count(&skeleton);
        if skeleton_tokens >= self.budget_tokens {
            return Err(RagError::BudgetTooSmall(self.budget_tokens));
        }
        let mut remaining = self.budget_tokens - skeleton_tokens;
        let mut context = String::new();
        let mut used = 0usize;
        for rc in chunks {
            let text = self.policy.redact(&rc.chunk.text);
            let cost = self.tokenizer.count(&text) + 1; // newline separator
            if cost > remaining {
                continue;
            }
            if !context.is_empty() {
                context.push('\n');
            }
            context.push_str(&text);
            remaining -= cost;
            used += 1;
        }
        let prompt = format!(
            "### Task: {}\n### Context:\n{context}\n### Input:\n{question}",
            self.task
        );
        Ok((prompt, used))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunker::Chunk;

    fn rc(text: &str) -> RetrievedChunk {
        RetrievedChunk {
            chunk: Chunk {
                document_id: "d".into(),
                index: 0,
                text: text.into(),
            },
            score: 1.0,
        }
    }

    #[test]
    fn redacts_emails() {
        let p = PrivacyPolicy::strict();
        let out = p.redact("contact alice.smith+x@company.co.uk today");
        assert_eq!(out, "contact [REDACTED-EMAIL] today");
    }

    #[test]
    fn redacts_phones() {
        let p = PrivacyPolicy::strict();
        let out = p.redact("call +1 (555) 123-4567 now");
        assert!(out.contains("[REDACTED-PHONE]"), "{out}");
        assert!(!out.contains("4567"));
    }

    #[test]
    fn short_numbers_survive() {
        let p = PrivacyPolicy::strict();
        assert_eq!(p.redact("we sold 42 units in Q3 2024"), "we sold 42 units in Q3 2024");
    }

    #[test]
    fn redacts_long_ids() {
        let p = PrivacyPolicy {
            redact_emails: false,
            redact_phones: false,
            redact_long_numbers: true,
        };
        let out = p.redact("account 123456789012 closed");
        assert_eq!(out, "account [REDACTED-ID] closed");
    }

    #[test]
    fn disabled_policy_is_identity() {
        let p = PrivacyPolicy::disabled();
        let s = "mail a@b.com, call 555-123-4567, id 123456789";
        assert_eq!(p.redact(s), s);
    }

    #[test]
    fn build_includes_chunks_in_rank_order() {
        let b = IclBuilder::new(200).with_policy(PrivacyPolicy::disabled());
        let (prompt, used) = b
            .build("what?", &[rc("first chunk."), rc("second chunk.")])
            .unwrap();
        assert_eq!(used, 2);
        let p1 = prompt.find("first chunk").unwrap();
        let p2 = prompt.find("second chunk").unwrap();
        assert!(p1 < p2);
        assert!(prompt.starts_with("### Task: qa"));
        assert!(prompt.contains("### Input:\nwhat?"));
    }

    #[test]
    fn build_skips_oversized_chunks_but_packs_smaller_ones() {
        let b = IclBuilder::new(30).with_policy(PrivacyPolicy::disabled());
        let big = "word ".repeat(50);
        let (prompt, used) = b.build("q?", &[rc(&big), rc("tiny.")]).unwrap();
        assert_eq!(used, 1);
        assert!(prompt.contains("tiny."));
        assert!(!prompt.contains("word word word word word word word word"));
    }

    #[test]
    fn build_rejects_impossible_budget() {
        let b = IclBuilder::new(3);
        assert!(matches!(
            b.build("a long question with many words here", &[]),
            Err(RagError::BudgetTooSmall(3))
        ));
    }

    #[test]
    fn build_redacts_context_and_question() {
        let b = IclBuilder::new(200);
        let (prompt, _) = b
            .build("email bob@corp.com?", &[rc("bob@corp.com bought 12 units")])
            .unwrap();
        assert!(!prompt.contains("bob@corp.com"));
        assert_eq!(prompt.matches("[REDACTED-EMAIL]").count(), 2);
    }

    #[test]
    fn custom_task_header() {
        let b = IclBuilder::new(100).with_task("summarize");
        let (prompt, _) = b.build("summarise this", &[rc("content.")]).unwrap();
        assert!(prompt.starts_with("### Task: summarize"));
    }

    #[test]
    fn prompt_fits_budget() {
        let b = IclBuilder::new(50).with_policy(PrivacyPolicy::disabled());
        let chunks: Vec<RetrievedChunk> =
            (0..10).map(|i| rc(&format!("chunk number {i} with some words."))).collect();
        let (prompt, _) = b.build("question?", &chunks).unwrap();
        assert!(Tokenizer::new().count(&prompt) <= 50);
    }
}
