//! Documents from multiple data sources.
//!
//! The paper: "DB-GPT constructs a knowledge base according to multiple
//! data sources provided by users." This module normalises those sources —
//! plain text, Markdown, and CSV/tabular exports — into one [`Document`]
//! shape the rest of the pipeline consumes.

use serde::{Deserialize, Serialize};

/// Where a document came from; controls the cleaning applied at ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DocumentSource {
    /// Plain text: used verbatim.
    PlainText,
    /// Markdown: headings/emphasis/code fences are stripped to prose.
    Markdown,
    /// CSV: each record becomes a `col: value` sentence, so tabular facts
    /// are retrievable by keyword and vector search alike.
    Csv,
}

/// A normalised document ready for chunking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Document {
    /// Stable id, unique within a knowledge base.
    pub id: String,
    /// Source kind.
    pub source: DocumentSource,
    /// Cleaned text content.
    pub content: String,
}

impl Document {
    /// Ingest plain text.
    pub fn from_text(id: impl Into<String>, content: impl Into<String>) -> Self {
        Document {
            id: id.into(),
            source: DocumentSource::PlainText,
            content: content.into(),
        }
    }

    /// Ingest Markdown: strips `#` headings, `*`/`_` emphasis markers,
    /// inline code ticks, code fences, and link targets.
    pub fn from_markdown(id: impl Into<String>, md: &str) -> Self {
        let mut out = String::with_capacity(md.len());
        let mut in_fence = false;
        for line in md.lines() {
            let trimmed = line.trim_start();
            if trimmed.starts_with("```") {
                in_fence = !in_fence;
                continue;
            }
            if in_fence {
                continue;
            }
            let line = trimmed.trim_start_matches('#').trim_start();
            let line = strip_md_inline(line);
            out.push_str(&line);
            out.push('\n');
        }
        Document {
            id: id.into(),
            source: DocumentSource::Markdown,
            content: out,
        }
    }

    /// Ingest CSV text: the header names each field, and every record is
    /// rendered as one `name: v1, name2: v2.` sentence-paragraph.
    pub fn from_csv(id: impl Into<String>, csv: &str) -> Self {
        let mut lines = csv.lines();
        let header: Vec<&str> = lines.next().map(|h| h.split(',').collect()).unwrap_or_default();
        let mut out = String::new();
        for record in lines {
            if record.trim().is_empty() {
                continue;
            }
            let cells: Vec<&str> = record.split(',').collect();
            let mut sentence = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    sentence.push_str(", ");
                }
                let name = header.get(i).copied().unwrap_or("field");
                sentence.push_str(&format!("{}: {}", name.trim(), cell.trim()));
            }
            sentence.push('.');
            out.push_str(&sentence);
            out.push('\n');
        }
        Document {
            id: id.into(),
            source: DocumentSource::Csv,
            content: out,
        }
    }

    /// Is there anything to index?
    pub fn is_empty(&self) -> bool {
        self.content.trim().is_empty()
    }
}

/// Strip inline Markdown markers (`*`, `_`, backticks, link targets).
fn strip_md_inline(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '*' | '_' | '`' => {}
            '[' => { /* keep link text */ }
            ']' => {
                // Skip the "(url)" part if present.
                if chars.peek() == Some(&'(') {
                    for nc in chars.by_ref() {
                        if nc == ')' {
                            break;
                        }
                    }
                }
            }
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_is_verbatim() {
        let d = Document::from_text("a", "hello world");
        assert_eq!(d.content, "hello world");
        assert_eq!(d.source, DocumentSource::PlainText);
        assert!(!d.is_empty());
    }

    #[test]
    fn markdown_strips_syntax() {
        let md = "# Title\nSome *bold* and `code` text.\n```rust\nfn hidden() {}\n```\nA [link](http://x.com) here.";
        let d = Document::from_markdown("m", md);
        assert!(d.content.contains("Title"));
        assert!(d.content.contains("Some bold and code text."));
        assert!(!d.content.contains("fn hidden"));
        assert!(d.content.contains("A link here."));
        assert!(!d.content.contains("http://x.com"));
    }

    #[test]
    fn csv_becomes_sentences() {
        let d = Document::from_csv("c", "name,amount\nalice,10\nbob,20\n");
        assert!(d.content.contains("name: alice, amount: 10."));
        assert!(d.content.contains("name: bob, amount: 20."));
    }

    #[test]
    fn empty_inputs_detected() {
        assert!(Document::from_text("a", "  \n ").is_empty());
        assert!(Document::from_csv("c", "h1,h2\n").is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let d = Document::from_text("a", "x");
        let json = serde_json::to_string(&d).unwrap();
        assert_eq!(serde_json::from_str::<Document>(&json).unwrap(), d);
    }
}
