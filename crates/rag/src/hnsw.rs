//! HNSW: a hierarchical navigable-small-world graph for sublinear ANN.
//!
//! The flat scan is exact but O(n) per query; at 100k+ chunks it is the
//! retrieval bottleneck of the whole Chat2Data path. [`HnswGraph`] holds a
//! multi-layer proximity graph: every node lives on layer 0, and an
//! exponentially thinning subset is promoted to higher layers. A query
//! greedily descends from the top layer's entry point (each hop halves the
//! remaining distance in expectation), then runs a bounded best-first beam
//! (`ef_search`) on layer 0 — visiting a few hundred nodes where the flat
//! scan visits all of them.
//!
//! # Determinism
//!
//! Graph construction is fully deterministic, which is what lets the
//! bench and the cluster layer treat the index as reproducible derived
//! data:
//!
//! - **Level assignment is a pure function of `(seed, id)`** — a seeded
//!   SplitMix64 hash drives the usual `⌊-ln(u)·mL⌋` draw, so a node's
//!   level does not depend on what was inserted before it.
//! - **Every comparison is a strict total order** — similarities compare
//!   with `total_cmp` and tie-break on the lower id, the same rank order
//!   as [`crate::topk::TopK`] — so beam contents, neighbor selection and
//!   pruning never depend on float ambiguity.
//! - Insertion order is the caller's id order.
//!
//! Same seed + same insertion sequence ⇒ byte-identical graph (pinned by
//! [`HnswGraph::fingerprint`] and property-tested in `tests/ann_props.rs`).
//!
//! The graph stores only ids; the caller supplies similarity closures
//! (higher = more similar), so the same structure serves the f32 store
//! and the scalar-quantized store ([`crate::quant::QuantizedStore`]).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Hard cap on layer indices (the `(seed, id)` draw is geometric; 16
/// layers covers corpora far beyond memory anyway).
const MAX_LEVEL: usize = 16;

/// Build-time knobs. `m` is the degree bound per layer (layer 0 keeps
/// `2m`); `ef_construction` is the candidate beam width while inserting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HnswConfig {
    /// Max neighbors per node on layers ≥ 1 (layer 0 allows `2m`).
    pub m: usize,
    /// Beam width used when inserting a node.
    pub ef_construction: usize,
    /// Seed for the level-assignment hash.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig {
            m: 16,
            ef_construction: 128,
            seed: 0x5EED,
        }
    }
}

/// A candidate ranked by similarity (higher better), ties to lower id —
/// the shared rank order of the crate. `BinaryHeap<Cand>` pops best first.
#[derive(Debug, Clone, Copy)]
struct Cand {
    sim: f32,
    id: u32,
}

impl Cand {
    /// `Greater` when `self` ranks better than `other`.
    fn rank_cmp(&self, other: &Self) -> Ordering {
        self.sim
            .total_cmp(&other.sim)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.rank_cmp(other) == Ordering::Equal
    }
}
impl Eq for Cand {}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.rank_cmp(other)
    }
}

/// Min-heap wrapper: `BinaryHeap<Worst>` pops the *worst* candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Worst(Cand);
impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Worst {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.cmp(&self.0)
    }
}

/// Diversity-aware neighbor selection (the HNSW paper's Algorithm 4).
///
/// `candidates` are ranked best-first with `Cand::sim` = similarity to
/// the *target* node. A candidate is accepted only if it is closer to
/// the target than to every already-accepted neighbor — nearest-`cap`
/// truncation would pack all links into one tight cluster (the bench
/// corpus has ~8 near-duplicate siblings per entity) and leave no
/// long-range edges, collapsing recall on clustered data. Rejected
/// candidates backfill remaining slots (keep-pruned-connections), so a
/// node never ends up under-connected. Fully deterministic: `total_cmp`
/// with the shared lower-id tie-break, ties on the diversity test keep
/// the candidate.
fn select_diverse(
    candidates: &[Cand],
    cap: usize,
    sim_pair: &dyn Fn(u32, u32) -> f32,
) -> Vec<u32> {
    let mut selected: Vec<u32> = Vec::new();
    let mut skipped: Vec<u32> = Vec::new();
    for c in candidates {
        if selected.len() >= cap {
            break;
        }
        let diverse = selected
            .iter()
            .all(|&s| c.sim.total_cmp(&sim_pair(c.id, s)) != Ordering::Less);
        if diverse {
            selected.push(c.id);
        } else {
            skipped.push(c.id);
        }
    }
    for id in skipped {
        if selected.len() >= cap {
            break;
        }
        selected.push(id);
    }
    selected
}

/// The multi-layer graph (see module docs).
#[derive(Debug, Clone, Default)]
pub struct HnswGraph {
    config: HnswConfig,
    /// Top layer of each node.
    levels: Vec<u8>,
    /// `links[node][layer]` = neighbor ids, `layer ∈ 0..=levels[node]`.
    links: Vec<Vec<Vec<u32>>>,
    /// Entry point: a node on the highest occupied layer.
    entry: Option<u32>,
    max_level: usize,
}

impl HnswGraph {
    /// Empty graph with the given knobs.
    pub fn new(config: HnswConfig) -> Self {
        HnswGraph {
            config,
            ..HnswGraph::default()
        }
    }

    /// The build knobs.
    pub fn config(&self) -> &HnswConfig {
        &self.config
    }

    /// Nodes inserted so far.
    pub fn node_count(&self) -> usize {
        self.levels.len()
    }

    /// Is the graph empty?
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Deterministic level for node `id` under this seed: a SplitMix64
    /// draw mapped through the geometric `⌊-ln(u) / ln(m)⌋`.
    fn level_for(&self, id: u32) -> usize {
        let mut x = self
            .config
            .seed
            .wrapping_add(u64::from(id).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        // 53 mantissa bits → u ∈ [0, 1); clamp away exact 0 before ln.
        let u = ((x >> 11) as f64 / (1u64 << 53) as f64).max(f64::MIN_POSITIVE);
        let ml = 1.0 / (self.config.m.max(2) as f64).ln();
        ((-u.ln() * ml) as usize).min(MAX_LEVEL)
    }

    /// Degree bound on `layer`.
    fn capacity(&self, layer: usize) -> usize {
        if layer == 0 {
            self.config.m * 2
        } else {
            self.config.m
        }
    }

    /// Insert the next node. `sim_to_new(x)` is the similarity between
    /// existing node `x` and the node being inserted; `sim_pair(a, b)` is
    /// the similarity between two existing nodes (used when pruning their
    /// neighbor lists). The new node's id must be `self.node_count()`.
    pub fn insert(
        &mut self,
        sim_to_new: &dyn Fn(u32) -> f32,
        sim_pair: &dyn Fn(u32, u32) -> f32,
    ) {
        let id = self.node_count() as u32;
        let level = self.level_for(id);
        self.levels.push(level as u8);
        self.links.push(vec![Vec::new(); level + 1]);

        let Some(mut ep) = self.entry else {
            self.entry = Some(id);
            self.max_level = level;
            return;
        };

        // Greedy descent through layers above the new node's level.
        let mut layer = self.max_level;
        while layer > level {
            ep = self.greedy_step(sim_to_new, ep, layer);
            layer -= 1;
        }

        // Beam search + connect on each shared layer, top down.
        let ef = self.config.ef_construction.max(1);
        let mut entries = vec![ep];
        for layer in (0..=level.min(self.max_level)).rev() {
            let found = self.search_layer(sim_to_new, &entries, ef, layer);
            let chosen = select_diverse(&found, self.config.m, sim_pair);
            self.links[id as usize][layer] = chosen.clone();
            for nb in chosen {
                self.links[nb as usize][layer].push(id);
                let cap = self.capacity(layer);
                if self.links[nb as usize][layer].len() > cap {
                    self.prune(sim_pair, nb, layer, cap);
                }
            }
            // Next layer starts from everything the beam found.
            entries = found.iter().map(|c| c.id).collect();
        }

        if level > self.max_level {
            self.entry = Some(id);
            self.max_level = level;
        }
    }

    /// Shrink `node`'s neighbor list on `layer` to `cap` entries with the
    /// same diversity heuristic used at insertion, keeping long-range
    /// links that plain nearest-first truncation would throw away.
    fn prune(&mut self, sim_pair: &dyn Fn(u32, u32) -> f32, node: u32, layer: usize, cap: usize) {
        let mut ranked: Vec<Cand> = self.links[node as usize][layer]
            .iter()
            .map(|&nb| Cand {
                sim: sim_pair(node, nb),
                id: nb,
            })
            .collect();
        ranked.sort_by(|a, b| b.rank_cmp(a));
        self.links[node as usize][layer] = select_diverse(&ranked, cap, sim_pair);
    }

    /// One-at-a-time greedy walk on `layer`: hop to the best neighbor
    /// while it improves on the current position.
    fn greedy_step(&self, sim: &dyn Fn(u32) -> f32, start: u32, layer: usize) -> u32 {
        let mut cur = Cand {
            sim: sim(start),
            id: start,
        };
        loop {
            let mut best = cur;
            for &nb in &self.links[cur.id as usize][layer] {
                let c = Cand { sim: sim(nb), id: nb };
                if c.rank_cmp(&best) == Ordering::Greater {
                    best = c;
                }
            }
            if best.id == cur.id {
                return cur.id;
            }
            cur = best;
        }
    }

    /// Bounded best-first beam on `layer`, seeded from `entries`.
    /// Returns up to `ef` candidates, best first.
    fn search_layer(
        &self,
        sim: &dyn Fn(u32) -> f32,
        entries: &[u32],
        ef: usize,
        layer: usize,
    ) -> Vec<Cand> {
        self.search_layer_hinted(sim, &|_| {}, entries, ef, layer)
    }

    /// [`HnswGraph::search_layer`] with a prefetch hint: a popped node's
    /// unseen neighbors are all hinted before any of them is scored, so
    /// up to a full adjacency list of vector fetches overlaps with the
    /// scoring arithmetic.
    fn search_layer_hinted(
        &self,
        sim: &dyn Fn(u32) -> f32,
        prefetch: &dyn Fn(u32),
        entries: &[u32],
        ef: usize,
        layer: usize,
    ) -> Vec<Cand> {
        let mut visited = vec![0u64; self.levels.len().div_ceil(64)];
        let mut seen = |id: u32| -> bool {
            let (w, b) = ((id / 64) as usize, id % 64);
            let hit = visited[w] >> b & 1 == 1;
            visited[w] |= 1 << b;
            hit
        };
        let mut frontier: BinaryHeap<Cand> = BinaryHeap::new();
        let mut results: BinaryHeap<Worst> = BinaryHeap::new();
        for &e in entries {
            if seen(e) {
                continue;
            }
            let c = Cand { sim: sim(e), id: e };
            frontier.push(c);
            results.push(Worst(c));
            if results.len() > ef {
                results.pop();
            }
        }
        let mut fresh: Vec<u32> = Vec::with_capacity(self.config.m * 2);
        while let Some(c) = frontier.pop() {
            if results.len() >= ef {
                let worst = results.peek().expect("nonempty").0;
                if c.rank_cmp(&worst) == Ordering::Less {
                    break;
                }
            }
            fresh.clear();
            for &nb in &self.links[c.id as usize][layer] {
                if !seen(nb) {
                    prefetch(nb);
                    fresh.push(nb);
                }
            }
            for &nb in &fresh {
                let cand = Cand { sim: sim(nb), id: nb };
                if results.len() < ef
                    || cand.rank_cmp(&results.peek().expect("nonempty").0) == Ordering::Greater
                {
                    frontier.push(cand);
                    results.push(Worst(cand));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<Cand> = results.into_iter().map(|w| w.0).collect();
        out.sort_by(|a, b| b.rank_cmp(a));
        out
    }

    /// Query the graph: beam descent from the entry point, then an
    /// `ef`-wide beam on layer 0. Returns up to `ef` `(id, similarity)`
    /// pairs, best first — the caller truncates to its k (and may
    /// re-score through the exact store first).
    ///
    /// Upper layers are descended with a narrow beam rather than the
    /// textbook single greedy walk: when a query's true neighbors are
    /// scattered across several coarse clusters (common for short
    /// queries far off the document manifold), a single entry point
    /// commits layer 0 to one cluster and the beam's termination bound
    /// keeps it from crossing the low-similarity valley into the others.
    /// Carrying a handful of diverse entry points down caps recall loss
    /// at negligible extra cost (upper layers hold ~1/m of the nodes).
    pub fn search(&self, sim: &dyn Fn(u32) -> f32, ef: usize) -> Vec<(usize, f32)> {
        self.search_hinted(sim, &|_| {}, ef)
    }

    /// [`HnswGraph::search`] with a cache-warm hint: `prefetch(id)` is
    /// called for each node shortly before `sim(id)`, so a storage
    /// backend can issue a memory prefetch for the node's vector. Beam
    /// traversal is random access — without the hint every candidate
    /// score stalls on a cold cache line.
    pub fn search_hinted(
        &self,
        sim: &dyn Fn(u32) -> f32,
        prefetch: &dyn Fn(u32),
        ef: usize,
    ) -> Vec<(usize, f32)> {
        let Some(ep) = self.entry else {
            return Vec::new();
        };
        let ef = ef.max(1);
        let upper_ef = (ef / 4).clamp(8, 64);
        let mut entries = vec![ep];
        for layer in (1..=self.max_level).rev() {
            entries = self
                .search_layer_hinted(sim, prefetch, &entries, upper_ef, layer)
                .into_iter()
                .map(|c| c.id)
                .collect();
        }
        self.search_layer_hinted(sim, prefetch, &entries, ef, 0)
            .into_iter()
            .map(|c| (c.id as usize, c.sim))
            .collect()
    }

    /// Beam search on layer 0 from caller-chosen entry points (ids must
    /// be `< node_count()`). Lets the caller route with external
    /// knowledge — e.g. a coarse seed set spanning the corpus's clusters
    /// — instead of the entry-point descent of [`HnswGraph::search`].
    /// Returns up to `ef` `(id, similarity)` pairs, best first.
    pub fn search_from(&self, sim: &dyn Fn(u32) -> f32, entries: &[u32], ef: usize) -> Vec<(usize, f32)> {
        if self.is_empty() || entries.is_empty() {
            return Vec::new();
        }
        self.search_layer(sim, entries, ef.max(1), 0)
            .into_iter()
            .map(|c| (c.id as usize, c.sim))
            .collect()
    }

    /// Diagnostic: how many nodes a search on `layer` can reach from the
    /// entry point by following out-links (BFS). A healthy graph keeps
    /// this at (or very near) the number of nodes on that layer; stranded
    /// islands cap recall no matter how wide the beam.
    pub fn reachable_from_entry(&self, layer: usize) -> usize {
        let Some(ep) = self.entry else { return 0 };
        if (self.levels[ep as usize] as usize) < layer {
            return 0;
        }
        let mut seen = vec![false; self.levels.len()];
        let mut stack = vec![ep];
        seen[ep as usize] = true;
        let mut count = 0usize;
        while let Some(x) = stack.pop() {
            count += 1;
            for &nb in &self.links[x as usize][layer] {
                if !seen[nb as usize] {
                    seen[nb as usize] = true;
                    stack.push(nb);
                }
            }
        }
        count
    }

    /// FNV-1a digest of the whole structure: config, entry point, levels
    /// and adjacency. Two graphs with equal fingerprints are
    /// byte-identical (same layers, same neighbor lists in the same
    /// order) — the determinism witness used by the bench and tests.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.config.m as u64);
        eat(self.config.ef_construction as u64);
        eat(self.config.seed);
        eat(self.entry.map(|e| u64::from(e) + 1).unwrap_or(0));
        eat(self.max_level as u64);
        for (lvl, layers) in self.levels.iter().zip(&self.links) {
            eat(u64::from(*lvl));
            for list in layers {
                eat(list.len() as u64);
                for &nb in list {
                    eat(u64::from(nb));
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::{dot, Embedder, Embedding, HashEmbedder};

    fn corpus(n: usize) -> Vec<Embedding> {
        let e = HashEmbedder::new();
        (0..n)
            .map(|i| e.embed(&format!("doc {i} topic {} entity e{}", i % 9, i % 23)).unit())
            .collect()
    }

    fn build(vs: &[Embedding], cfg: HnswConfig) -> HnswGraph {
        let mut g = HnswGraph::new(cfg);
        for i in 0..vs.len() {
            let new = &vs[i];
            g.insert(
                &|x| dot(new, &vs[x as usize]),
                &|a, b| dot(&vs[a as usize], &vs[b as usize]),
            );
        }
        g
    }

    #[test]
    fn empty_graph_returns_nothing() {
        let g = HnswGraph::new(HnswConfig::default());
        assert!(g.is_empty());
        assert!(g.search(&|_| 0.0, 10).is_empty());
    }

    #[test]
    fn levels_are_a_pure_function_of_seed_and_id() {
        let g = HnswGraph::new(HnswConfig::default());
        let h = HnswGraph::new(HnswConfig::default());
        for id in 0..500 {
            assert_eq!(g.level_for(id), h.level_for(id));
        }
        let other = HnswGraph::new(HnswConfig {
            seed: 999,
            ..HnswConfig::default()
        });
        assert!(
            (0..500).any(|id| g.level_for(id) != other.level_for(id)),
            "different seeds should shuffle levels"
        );
        // The draw is geometric: most nodes stay on layer 0.
        let ground = (0..500).filter(|&id| g.level_for(id) == 0).count();
        assert!(ground > 350, "only {ground}/500 on layer 0");
    }

    #[test]
    fn same_seed_builds_identical_graphs() {
        let vs = corpus(200);
        let a = build(&vs, HnswConfig::default());
        let b = build(&vs, HnswConfig::default());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.links, b.links);
    }

    #[test]
    fn degree_bounds_hold() {
        let vs = corpus(300);
        let g = build(&vs, HnswConfig::default());
        for (id, layers) in g.links.iter().enumerate() {
            for (layer, list) in layers.iter().enumerate() {
                assert!(
                    list.len() <= g.capacity(layer),
                    "node {id} layer {layer} has {} links",
                    list.len()
                );
            }
        }
    }

    #[test]
    fn search_finds_the_true_nearest_neighbor() {
        let vs = corpus(400);
        let g = build(&vs, HnswConfig::default());
        let e = HashEmbedder::new();
        for probe in ["doc 17 topic 8", "doc 250 topic 7 entity e20", "doc 3"] {
            let q = e.embed(probe).unit();
            let mut exact: Vec<(usize, f32)> =
                vs.iter().enumerate().map(|(i, v)| (i, dot(&q, v))).collect();
            exact.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            let hits = g.search(&|x| dot(&q, &vs[x as usize]), 64);
            assert_eq!(hits[0].0, exact[0].0, "probe {probe:?}");
        }
    }

    #[test]
    fn wider_beam_is_a_superset_ranking() {
        let vs = corpus(250);
        let g = build(&vs, HnswConfig::default());
        let q = HashEmbedder::new().embed("doc 100 topic 1").unit();
        let sim = |x: u32| dot(&q, &vs[x as usize]);
        let narrow = g.search(&sim, 8);
        let wide = g.search(&sim, 64);
        assert!(narrow.len() <= wide.len());
        // Both are internally sorted best-first.
        for w in wide.windows(2) {
            assert!(w[0].1 >= w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0));
        }
    }
}
