//! Scalar-quantized vector storage: u8 codes + per-query lookup tables.
//!
//! A million 128-dim f32 chunks is ~512 MB of raw vectors; at the
//! "millions of users' knowledge bases" scale the embedding store must
//! shrink. [`QuantizedStore`] compresses each dimension to one byte
//! against a per-dimension `[min, max]` grid fitted over the corpus —
//! a 4× reduction (the grid itself is 2 floats per *dimension*, not per
//! vector, so it amortizes to nothing).
//!
//! Scoring never dequantizes per candidate. A query is expanded once into
//! a [`DotLut`]: since `dequant(d, c) = min[d] + c · step[d]`, the dot
//! product factors into `Σ q[d]·min[d]` (a per-query constant) plus
//! `Σ c · q[d]·step[d]` — so scoring a candidate is one dot product
//! between its contiguous u8 code row and a dim-length f32 vector that
//! lives in L1, with no per-candidate dequantization. (A dim×256 table
//! would compute the same sums through scattered lookups; the factored
//! form vectorizes.) Quantization loses at most half a grid step per
//! dimension
//! ([`QuantizedStore::max_error`], property-tested), and the ANN search
//! path can re-score its top candidates against the exact f32 vectors to
//! claw back the last recall points (`RetrievalConfig::ann_rescore`).
//!
//! The grid is **frozen at fit time**: vectors appended later are clamped
//! onto the existing grid ([`QuantizedStore::push`]), which keeps
//! incremental ingest deterministic — codes never depend on what arrived
//! after fitting.

use crate::embedding::Embedding;

/// Codes per dimension (u8 range).
const LEVELS: usize = 256;

/// A query expanded against the quantization grid (see module docs):
/// `score(i) = bias + Σ_d codes[i][d] · scaled[d]`.
#[derive(Debug, Clone)]
pub struct DotLut {
    /// `Σ_d q[d] · min[d]` — the grid-origin contribution.
    bias: f32,
    /// `scaled[d] = q[d] · step[d]`.
    scaled: Vec<f32>,
}

/// Scalar-quantized mirror of a vector store (see module docs).
#[derive(Debug, Clone, Default)]
pub struct QuantizedStore {
    dim: usize,
    /// Per-dimension grid lower bound.
    mins: Vec<f32>,
    /// Per-dimension grid step `(max - min) / 255`; `0` for a flat
    /// dimension (every vector equal there), which decodes to `min`.
    steps: Vec<f32>,
    /// Row-major codes, `len × dim`.
    codes: Vec<u8>,
}

impl QuantizedStore {
    /// Fit the per-dimension grid over `vectors` and encode all of them.
    /// An empty slice yields an empty store with an empty grid (the first
    /// real fit should happen once data exists).
    pub fn fit(vectors: &[Embedding]) -> Self {
        let dim = vectors.first().map(|v| v.dim()).unwrap_or(0);
        let mut mins = vec![f32::INFINITY; dim];
        let mut maxs = vec![f32::NEG_INFINITY; dim];
        for v in vectors {
            for (d, &x) in v.0.iter().enumerate() {
                if x < mins[d] {
                    mins[d] = x;
                }
                if x > maxs[d] {
                    maxs[d] = x;
                }
            }
        }
        let steps: Vec<f32> = mins
            .iter()
            .zip(&maxs)
            .map(|(&lo, &hi)| {
                let span = hi - lo;
                if span > 0.0 && span.is_finite() {
                    span / (LEVELS - 1) as f32
                } else {
                    0.0
                }
            })
            .collect();
        let mut store = QuantizedStore {
            dim,
            mins,
            steps,
            codes: Vec::with_capacity(vectors.len() * dim),
        };
        for v in vectors {
            store.push(v);
        }
        store
    }

    /// Append one vector, clamped onto the frozen grid.
    pub fn push(&mut self, v: &Embedding) {
        debug_assert_eq!(v.dim(), self.dim);
        for (d, &x) in v.0.iter().enumerate() {
            self.codes.push(self.encode_dim(d, x));
        }
    }

    fn encode_dim(&self, d: usize, x: f32) -> u8 {
        let step = self.steps[d];
        if step == 0.0 || !x.is_finite() {
            return 0;
        }
        let c = ((x - self.mins[d]) / step).round();
        c.clamp(0.0, (LEVELS - 1) as f32) as u8
    }

    /// Reconstructed value of code `c` in dimension `d`.
    #[inline]
    fn dequant(&self, d: usize, c: u8) -> f32 {
        self.mins[d] + self.steps[d] * c as f32
    }

    /// Number of encoded vectors.
    pub fn len(&self) -> usize {
        self.codes.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Decode vector `i` back to f32 (testing / diagnostics — the scoring
    /// path never calls this).
    pub fn decode(&self, i: usize) -> Option<Embedding> {
        if i >= self.len() {
            return None;
        }
        let row = &self.codes[i * self.dim..(i + 1) * self.dim];
        Some(Embedding(
            row.iter()
                .enumerate()
                .map(|(d, &c)| self.dequant(d, c))
                .collect(),
        ))
    }

    /// Worst-case absolute reconstruction error for an in-grid value in
    /// dimension `d`: half a grid step (rounding to the nearest level).
    pub fn max_error(&self, d: usize) -> f32 {
        self.steps[d] / 2.0
    }

    /// Expand a (unit-normalized) query against the grid. O(dim), paid
    /// once per query.
    pub fn lut(&self, q: &Embedding) -> DotLut {
        debug_assert_eq!(q.dim(), self.dim);
        let mut bias = 0.0f32;
        let mut scaled = Vec::with_capacity(self.dim);
        for ((&qx, &min), &step) in q.0.iter().zip(&self.mins).zip(&self.steps) {
            bias += qx * min;
            scaled.push(qx * step);
        }
        DotLut { bias, scaled }
    }

    /// Approximate dot product of the query behind `lut` with vector `i`:
    /// a u8·f32 dot over the candidate's contiguous code row.
    #[inline]
    pub fn score(&self, lut: &DotLut, i: usize) -> f32 {
        let row = &self.codes[i * self.dim..(i + 1) * self.dim];
        let mut acc = 0.0f32;
        for (&c, &s) in row.iter().zip(&lut.scaled) {
            acc += c as f32 * s;
        }
        lut.bias + acc
    }

    /// Pointer to vector `i`'s code row — for cache prefetch hints on
    /// the ANN hot path (the row is `dim` contiguous bytes).
    #[inline]
    pub fn row_ptr(&self, i: usize) -> *const u8 {
        self.codes[i * self.dim..].as_ptr()
    }

    /// Bytes held by the quantized representation (codes + grid).
    pub fn memory_bytes(&self) -> usize {
        self.codes.len() + (self.mins.len() + self.steps.len()) * std::mem::size_of::<f32>()
    }

    /// FNV-1a digest of the grid and every code byte — two stores with
    /// the same fit inputs and push sequence are byte-identical iff their
    /// fingerprints match.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&(self.dim as u64).to_le_bytes());
        for x in self.mins.iter().chain(&self.steps) {
            eat(&x.to_le_bytes());
        }
        eat(&self.codes);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::{dot, Embedder, HashEmbedder};

    fn corpus(n: usize) -> Vec<Embedding> {
        let e = HashEmbedder::new();
        (0..n)
            .map(|i| e.embed(&format!("document {i} about topic {}", i % 7)).unit())
            .collect()
    }

    #[test]
    fn round_trip_error_is_bounded() {
        let vs = corpus(50);
        let q = QuantizedStore::fit(&vs);
        for (i, v) in vs.iter().enumerate() {
            let back = q.decode(i).unwrap();
            for (d, (&a, &b)) in v.0.iter().zip(&back.0).enumerate() {
                assert!(
                    (a - b).abs() <= q.max_error(d) + 1e-6,
                    "vector {i} dim {d}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn lut_score_matches_dequantized_dot() {
        let vs = corpus(30);
        let q = QuantizedStore::fit(&vs);
        let query = HashEmbedder::new().embed("document about topic 3").unit();
        let lut = q.lut(&query);
        for i in 0..q.len() {
            let fast = q.score(&lut, i);
            let slow = dot(&query, &q.decode(i).unwrap());
            assert!((fast - slow).abs() < 1e-4, "vector {i}: {fast} vs {slow}");
        }
    }

    #[test]
    fn quantized_scores_track_exact_scores() {
        let vs = corpus(40);
        let q = QuantizedStore::fit(&vs);
        let query = HashEmbedder::new().embed("document about topic 5").unit();
        let lut = q.lut(&query);
        for (i, v) in vs.iter().enumerate() {
            let approx = q.score(&lut, i);
            let exact = dot(&query, v);
            // 128 dims × tiny per-dim error: stay well inside 0.05.
            assert!((approx - exact).abs() < 0.05, "vector {i}: {approx} vs {exact}");
        }
    }

    #[test]
    fn push_uses_frozen_grid() {
        let vs = corpus(20);
        let mut q = QuantizedStore::fit(&vs);
        let grid_before: Vec<f32> = q.mins.clone();
        // An out-of-grid vector clamps instead of refitting.
        q.push(&Embedding(vec![100.0; q.dim()]));
        assert_eq!(q.mins, grid_before);
        assert_eq!(q.len(), 21);
        let back = q.decode(20).unwrap();
        for (d, &x) in back.0.iter().enumerate() {
            assert!(x <= q.dequant(d, 255) + 1e-6);
        }
    }

    #[test]
    fn memory_is_a_quarter_of_f32() {
        let vs = corpus(1000);
        let q = QuantizedStore::fit(&vs);
        let f32_bytes = vs.len() * vs[0].dim() * 4;
        assert!(
            (q.memory_bytes() as f64) <= 0.30 * f32_bytes as f64,
            "quantized {} vs f32 {}",
            q.memory_bytes(),
            f32_bytes
        );
    }

    #[test]
    fn fingerprint_is_deterministic_and_sensitive() {
        let vs = corpus(25);
        let a = QuantizedStore::fit(&vs);
        let b = QuantizedStore::fit(&vs);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = QuantizedStore::fit(&vs);
        c.push(&vs[0]);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn empty_and_degenerate_stores() {
        let q = QuantizedStore::fit(&[]);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.decode(0).is_none());
        // All-identical vectors: every step is 0, decode returns the value.
        let same = vec![Embedding(vec![0.5, -0.25]); 4];
        let q = QuantizedStore::fit(&same);
        assert_eq!(q.decode(2).unwrap(), same[2]);
    }
}
