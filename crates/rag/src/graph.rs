//! The graph index: entity co-occurrence knowledge graph.
//!
//! The paper's knowledge construction "integrates … graph index methods,
//! facilitating precise context-relevant data retrieval" (§2.3). Here the
//! graph's nodes are *entities* (salient content terms) and its edges are
//! chunk-level co-occurrences. Retrieval expands a query's entities one hop
//! through the graph, then scores chunks by direct entity matches plus
//! discounted neighbour matches — which lets the graph index find chunks
//! that share no literal keyword with the query, via an intermediate
//! document that links the vocabulary.

use std::collections::{HashMap, HashSet};

use crate::topk::TopK;

/// Weight of a one-hop (neighbour) entity match relative to a direct match.
const NEIGHBOUR_WEIGHT: f64 = 0.5;

/// Terms too common/structural to be entities.
const STOP_WORDS: &[&str] = &[
    "the", "a", "an", "is", "are", "was", "were", "of", "in", "on", "to", "and", "or", "for",
    "with", "by", "from", "at", "as", "it", "its", "this", "that", "be", "has", "have", "had",
    "what", "which", "who", "how", "why", "when", "where", "not", "no", "can", "will", "does",
    "do", "did", "into", "their", "they", "them", "these", "those", "also", "but", "if", "then",
];

/// A scored hit: `(chunk id, graph score)`.
pub type GraphHit = (usize, f64);

/// The co-occurrence graph index.
#[derive(Debug, Clone, Default)]
pub struct GraphIndex {
    /// entity → chunk ids containing it.
    entity_chunks: HashMap<String, HashSet<usize>>,
    /// entity → co-occurring entities.
    edges: HashMap<String, HashSet<String>>,
    chunk_count: usize,
}

impl GraphIndex {
    /// Empty index.
    pub fn new() -> Self {
        GraphIndex::default()
    }

    /// Extract the entity terms of `text`: lowercased content words of
    /// length ≥ 3 (CJK chars are grouped into bigram entities).
    pub fn entities(text: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut current = String::new();
        let mut cjk_prev: Option<char> = None;
        let push = |s: String, out: &mut Vec<String>, seen: &mut HashSet<String>| {
            if s.len() >= 3 && !STOP_WORDS.contains(&s.as_str()) && seen.insert(s.clone()) {
                out.push(s);
            }
        };
        for c in text.chars() {
            if (0x4E00..=0x9FFF).contains(&(c as u32)) {
                if !current.is_empty() {
                    push(std::mem::take(&mut current), &mut out, &mut seen);
                }
                // CJK bigrams as entities (covers most Chinese nouns).
                if let Some(p) = cjk_prev {
                    let bigram: String = [p, c].iter().collect();
                    if seen.insert(bigram.clone()) {
                        out.push(bigram);
                    }
                }
                cjk_prev = Some(c);
            } else if c.is_alphanumeric() || c == '_' {
                cjk_prev = None;
                current.extend(c.to_lowercase());
            } else {
                cjk_prev = None;
                if !current.is_empty() {
                    push(std::mem::take(&mut current), &mut out, &mut seen);
                }
            }
        }
        if !current.is_empty() {
            push(current, &mut out, &mut seen);
        }
        out
    }

    /// Index one chunk; its id is its insertion index.
    pub fn add(&mut self, text: &str) -> usize {
        let id = self.chunk_count;
        self.chunk_count += 1;
        let ents = Self::entities(text);
        for e in &ents {
            self.entity_chunks.entry(e.clone()).or_default().insert(id);
        }
        for (i, a) in ents.iter().enumerate() {
            for b in &ents[i + 1..] {
                self.edges.entry(a.clone()).or_default().insert(b.clone());
                self.edges.entry(b.clone()).or_default().insert(a.clone());
            }
        }
        id
    }

    /// Number of indexed chunks.
    pub fn len(&self) -> usize {
        self.chunk_count
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.chunk_count == 0
    }

    /// Number of entity nodes.
    pub fn node_count(&self) -> usize {
        self.entity_chunks.len()
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(HashSet::len).sum::<usize>() / 2
    }

    /// Direct neighbours of an entity.
    pub fn neighbours(&self, entity: &str) -> Vec<&str> {
        self.edges
            .get(&entity.to_lowercase())
            .map(|s| {
                let mut v: Vec<&str> = s.iter().map(String::as_str).collect();
                v.sort_unstable();
                v
            })
            .unwrap_or_default()
    }

    /// Graph search: score = direct entity hits + 0.5 × one-hop entity
    /// hits, normalised by query entity count.
    pub fn search(&self, query: &str, k: usize) -> Vec<GraphHit> {
        let q_entities = Self::entities(query);
        if q_entities.is_empty() || self.chunk_count == 0 {
            return Vec::new();
        }
        // One-hop expansion.
        let mut expanded: HashMap<String, f64> = HashMap::new();
        for e in &q_entities {
            expanded.insert(e.clone(), 1.0);
        }
        for e in &q_entities {
            if let Some(ns) = self.edges.get(e) {
                for n in ns {
                    expanded.entry(n.clone()).or_insert(NEIGHBOUR_WEIGHT);
                }
            }
        }
        let mut scores: HashMap<usize, f64> = HashMap::new();
        for (entity, weight) in &expanded {
            if let Some(chunks) = self.entity_chunks.get(entity) {
                for &c in chunks {
                    *scores.entry(c).or_insert(0.0) += weight;
                }
            }
        }
        let norm = q_entities.len() as f64;
        let mut top = TopK::new(k);
        for (c, s) in scores {
            top.push(c, s / norm);
        }
        top.into_sorted_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(texts: &[&str]) -> GraphIndex {
        let mut g = GraphIndex::new();
        for t in texts {
            g.add(t);
        }
        g
    }

    #[test]
    fn entity_extraction_filters_stopwords_and_short() {
        let ents = GraphIndex::entities("The AWEL language is a DAG of operators");
        assert!(ents.contains(&"awel".to_string()));
        assert!(ents.contains(&"language".to_string()));
        assert!(ents.contains(&"dag".to_string()));
        assert!(!ents.contains(&"the".to_string()));
        assert!(!ents.contains(&"is".to_string()));
        assert!(!ents.contains(&"a".to_string()));
    }

    #[test]
    fn entities_deduplicate() {
        let ents = GraphIndex::entities("data data data");
        assert_eq!(ents, vec!["data".to_string()]);
    }

    #[test]
    fn cjk_bigram_entities() {
        let ents = GraphIndex::entities("销售报表");
        assert!(ents.contains(&"销售".to_string()));
        assert!(ents.contains(&"售报".to_string()));
        assert!(ents.contains(&"报表".to_string()));
    }

    #[test]
    fn direct_match_scores_highest() {
        let g = index(&[
            "awel orchestrates agent workflows",
            "cats and dogs play outside",
        ]);
        let hits = g.search("awel workflows", 2);
        assert_eq!(hits[0].0, 0);
    }

    #[test]
    fn one_hop_expansion_finds_linked_chunks() {
        // Chunk 0 links "smmf" ↔ "privacy". Chunk 1 mentions only
        // "privacy". A query for "smmf" should surface chunk 1 via the
        // graph even though chunk 1 never says "smmf".
        let g = index(&[
            "smmf guarantees privacy for deployments",
            "privacy matters for enterprise data",
        ]);
        let hits = g.search("smmf", 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits[1].0, 1);
        assert!(hits[1].1 < hits[0].1);
    }

    #[test]
    fn neighbours_are_sorted_and_reflexive() {
        let g = index(&["alpha beta gamma"]);
        let n = g.neighbours("beta");
        assert_eq!(n, vec!["alpha", "gamma"]);
        assert!(g.neighbours("alpha").contains(&"beta"));
        assert!(g.neighbours("missing").is_empty());
    }

    #[test]
    fn graph_stats() {
        let g = index(&["alpha beta", "beta gamma"]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2); // alpha-beta, beta-gamma
        assert!(!g.is_empty());
    }

    #[test]
    fn empty_query_or_index() {
        let g = index(&["alpha beta"]);
        assert!(g.search("", 5).is_empty());
        assert!(g.search("of the", 5).is_empty());
        assert!(GraphIndex::new().search("alpha", 5).is_empty());
    }

    #[test]
    fn k_truncates_results() {
        let g = index(&["data one", "data two", "data three"]);
        assert_eq!(g.search("data", 2).len(), 2);
    }
}
