//! Knowledge construction stage 1: segment documents into paragraphs.
//!
//! "Contents in each data source are segmented into paragraphs" (§2.3).
//! Two strategies are provided: natural paragraph boundaries (blank lines /
//! newlines) and a fixed sliding token window with overlap, which bounds
//! chunk size for embedding quality.

use serde::{Deserialize, Serialize};

use dbgpt_llm::Tokenizer;

use crate::document::Document;

/// One retrievable unit of text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chunk {
    /// Id of the source document.
    pub document_id: String,
    /// Position of this chunk within its document (0-based).
    pub index: usize,
    /// The text.
    pub text: String,
}

/// How to split documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChunkingStrategy {
    /// Split on blank lines, then single newlines; long paragraphs are
    /// further wrapped at `max_tokens`.
    Paragraph {
        /// Upper bound per chunk.
        max_tokens: usize,
    },
    /// Fixed window of `size` tokens advancing by `size - overlap`.
    Window {
        /// Window size in tokens.
        size: usize,
        /// Overlap between consecutive windows, in tokens.
        overlap: usize,
    },
}

impl Default for ChunkingStrategy {
    fn default() -> Self {
        ChunkingStrategy::Paragraph { max_tokens: 128 }
    }
}

/// Splits documents into [`Chunk`]s.
#[derive(Debug, Clone, Default)]
pub struct Chunker {
    strategy: ChunkingStrategy,
    tokenizer: Tokenizer,
}

impl Chunker {
    /// Chunker with a strategy.
    pub fn new(strategy: ChunkingStrategy) -> Self {
        Chunker {
            strategy,
            tokenizer: Tokenizer::new(),
        }
    }

    /// The active strategy.
    pub fn strategy(&self) -> ChunkingStrategy {
        self.strategy
    }

    /// Split one document.
    pub fn chunk(&self, doc: &Document) -> Vec<Chunk> {
        let pieces: Vec<String> = match self.strategy {
            ChunkingStrategy::Paragraph { max_tokens } => self.by_paragraph(&doc.content, max_tokens),
            ChunkingStrategy::Window { size, overlap } => self.by_window(&doc.content, size, overlap),
        };
        pieces
            .into_iter()
            .filter(|p| !p.trim().is_empty())
            .enumerate()
            .map(|(index, text)| Chunk {
                document_id: doc.id.clone(),
                index,
                text,
            })
            .collect()
    }

    fn by_paragraph(&self, text: &str, max_tokens: usize) -> Vec<String> {
        let max_tokens = max_tokens.max(8);
        let mut out = Vec::new();
        for para in text.split("\n\n").flat_map(|p| p.split('\n')) {
            let para = para.trim();
            if para.is_empty() {
                continue;
            }
            if self.tokenizer.count(para) <= max_tokens {
                out.push(para.to_string());
            } else {
                // Wrap long paragraphs at sentence boundaries where
                // possible, hard-splitting only as a last resort.
                let mut current = String::new();
                for sentence in para.split_inclusive(['.', '!', '?', '。']) {
                    let candidate_len =
                        self.tokenizer.count(&current) + self.tokenizer.count(sentence);
                    if !current.is_empty() && candidate_len > max_tokens {
                        out.push(std::mem::take(&mut current).trim().to_string());
                    }
                    if self.tokenizer.count(sentence) > max_tokens {
                        // Hard split an over-long sentence. `truncate`
                        // returns a byte-exact prefix, so slicing past it
                        // stays on a char boundary.
                        let mut rest: &str = sentence.trim();
                        while self.tokenizer.count(rest) > max_tokens {
                            let (head, kept) = self.tokenizer.truncate(rest, max_tokens);
                            debug_assert!(kept > 0);
                            let advance = head.len();
                            out.push(head.trim().to_string());
                            rest = rest[advance..].trim_start();
                        }
                        if !rest.is_empty() {
                            current.push_str(rest);
                        }
                    } else {
                        current.push_str(sentence);
                    }
                }
                if !current.trim().is_empty() {
                    out.push(current.trim().to_string());
                }
            }
        }
        out
    }

    fn by_window(&self, text: &str, size: usize, overlap: usize) -> Vec<String> {
        let size = size.max(4);
        let overlap = overlap.min(size - 1);
        let step = size - overlap;
        // Work over stream chunks so reconstruction preserves spacing.
        let words = self.tokenizer.stream_chunks(text);
        if words.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut start = 0usize;
        while start < words.len() {
            let end = (start + size).min(words.len());
            let window: String = words[start..end].concat();
            out.push(window.trim().to_string());
            if end == words.len() {
                break;
            }
            start += step;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paragraph_chunking_splits_on_newlines() {
        let d = Document::from_text("d", "Para one text.\n\nPara two text.\nPara three.");
        let chunks = Chunker::new(ChunkingStrategy::Paragraph { max_tokens: 50 }).chunk(&d);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].text, "Para one text.");
        assert_eq!(chunks[2].index, 2);
        assert!(chunks.iter().all(|c| c.document_id == "d"));
    }

    #[test]
    fn long_paragraph_wraps_at_sentences() {
        let long = "Sentence one is here. Sentence two is here. Sentence three is here. \
                    Sentence four is here.";
        let d = Document::from_text("d", long);
        let chunks = Chunker::new(ChunkingStrategy::Paragraph { max_tokens: 12 }).chunk(&d);
        assert!(chunks.len() >= 2, "{chunks:?}");
        let tok = Tokenizer::new();
        for c in &chunks {
            assert!(tok.count(&c.text) <= 12 + 6, "chunk too big: {}", c.text);
        }
    }

    #[test]
    fn window_chunking_overlaps() {
        let text = (1..=20).map(|i| format!("w{i}")).collect::<Vec<_>>().join(" ");
        let d = Document::from_text("d", text);
        let chunks = Chunker::new(ChunkingStrategy::Window { size: 8, overlap: 4 }).chunk(&d);
        assert!(chunks.len() >= 3);
        // Overlap: the second window repeats the back half of the first.
        assert!(chunks[1].text.contains("w5"));
        assert!(chunks[0].text.contains("w5"));
    }

    #[test]
    fn window_covers_all_tokens() {
        let text = (1..=23).map(|i| format!("w{i}")).collect::<Vec<_>>().join(" ");
        let d = Document::from_text("d", text);
        let chunks = Chunker::new(ChunkingStrategy::Window { size: 10, overlap: 2 }).chunk(&d);
        assert!(chunks.last().unwrap().text.contains("w23"));
    }

    #[test]
    fn empty_document_yields_no_chunks() {
        let d = Document::from_text("d", "  \n\n ");
        assert!(Chunker::default().chunk(&d).is_empty());
    }

    #[test]
    fn indices_are_sequential() {
        let d = Document::from_text("d", "a.\nb.\nc.");
        let chunks = Chunker::default().chunk(&d);
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }
}
