//! The inverted index with BM25 ranking.
//!
//! "DB-GPT enhances traditional vector-based knowledge representation by
//! integrating inverted index … methods" and retrieves by "categorization
//! according to keyword similarity" (§2.3). Standard Okapi BM25 with
//! k1 = 1.2, b = 0.75.

use std::collections::HashMap;

use crate::topk::TopK;

/// BM25 parameters.
const K1: f64 = 1.2;
const B: f64 = 0.75;

/// A scored hit: `(chunk id, bm25 score)`.
pub type KeywordHit = (usize, f64);

/// Posting: document id → term frequency.
type Postings = HashMap<usize, u32>;

/// An inverted index over dense `usize` document ids.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    postings: HashMap<String, Postings>,
    doc_len: Vec<usize>,
    total_len: usize,
}

impl InvertedIndex {
    /// Empty index.
    pub fn new() -> Self {
        InvertedIndex::default()
    }

    /// Lowercased alphanumeric terms of `text` (CJK chars individually).
    pub fn terms(text: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut current = String::new();
        for c in text.chars() {
            if c.is_alphanumeric() || c == '_' {
                if (0x4E00..=0x9FFF).contains(&(c as u32)) {
                    if !current.is_empty() {
                        out.push(std::mem::take(&mut current));
                    }
                    out.push(c.to_string());
                } else {
                    current.extend(c.to_lowercase());
                }
            } else if !current.is_empty() {
                out.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            out.push(current);
        }
        out
    }

    /// Add a document; its id is its insertion index.
    pub fn add(&mut self, text: &str) -> usize {
        let id = self.doc_len.len();
        let terms = Self::terms(text);
        self.doc_len.push(terms.len());
        self.total_len += terms.len();
        for t in terms {
            *self.postings.entry(t).or_default().entry(id).or_insert(0) += 1;
        }
        id
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.doc_len.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.doc_len.is_empty()
    }

    /// Number of distinct terms.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Documents containing `term` (document frequency).
    pub fn doc_freq(&self, term: &str) -> usize {
        self.postings
            .get(&term.to_lowercase())
            .map(|p| p.len())
            .unwrap_or(0)
    }

    /// BM25 top-k for a free-text query, highest score first; ties broken
    /// by id. Documents scoring 0 are omitted.
    pub fn search(&self, query: &str, k: usize) -> Vec<KeywordHit> {
        let n = self.doc_len.len();
        if n == 0 {
            return Vec::new();
        }
        let avg_len = self.total_len as f64 / n as f64;
        let mut scores: HashMap<usize, f64> = HashMap::new();
        for term in Self::terms(query) {
            let Some(postings) = self.postings.get(&term) else {
                continue;
            };
            let df = postings.len() as f64;
            // BM25 idf with the +1 inside the log (never negative).
            let idf = (((n as f64 - df + 0.5) / (df + 0.5)) + 1.0).ln();
            for (&doc, &tf) in postings {
                let tf = tf as f64;
                let dl = self.doc_len[doc] as f64;
                let denom = tf + K1 * (1.0 - B + B * dl / avg_len.max(1e-9));
                *scores.entry(doc).or_insert(0.0) += idf * tf * (K1 + 1.0) / denom;
            }
        }
        // Bounded heap selection: O(matches · log k), order-independent,
        // NaN-safe (total order), identical tie-breaking to every other
        // index (score desc, id asc).
        let mut top = TopK::new(k);
        for (doc, score) in scores {
            if score > 0.0 {
                top.push(doc, score);
            }
        }
        top.into_sorted_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(texts: &[&str]) -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        for t in texts {
            idx.add(t);
        }
        idx
    }

    #[test]
    fn exact_keyword_match_wins() {
        let idx = index(&[
            "the cat sat on the mat",
            "sql joins combine tables",
            "dogs chase cats sometimes",
        ]);
        let hits = idx.search("sql joins", 3);
        assert_eq!(hits[0].0, 1);
    }

    #[test]
    fn rare_terms_outweigh_common() {
        // "data" appears everywhere, "awel" once.
        let idx = index(&[
            "data data data pipeline",
            "data processing at scale",
            "awel orchestrates data workflows",
        ]);
        let hits = idx.search("awel data", 3);
        assert_eq!(hits[0].0, 2);
    }

    #[test]
    fn no_match_returns_empty() {
        let idx = index(&["alpha beta", "gamma delta"]);
        assert!(idx.search("omega", 5).is_empty());
    }

    #[test]
    fn empty_index_returns_empty() {
        assert!(InvertedIndex::new().search("x", 5).is_empty());
    }

    #[test]
    fn length_normalisation_prefers_concise_docs() {
        let long = format!("relevant term {}", "padding words ".repeat(50));
        let idx = index(&[&long, "relevant term"]);
        let hits = idx.search("relevant term", 2);
        assert_eq!(hits[0].0, 1, "short exact doc should outrank padded doc");
    }

    #[test]
    fn case_insensitive_terms() {
        let idx = index(&["Quarterly REPORT"]);
        assert_eq!(idx.search("quarterly report", 1).len(), 1);
        assert_eq!(idx.doc_freq("RePoRt"), 1);
    }

    #[test]
    fn cjk_terms_indexed() {
        let idx = index(&["销售报表数据", "物理学论文"]);
        let hits = idx.search("销售", 2);
        assert_eq!(hits[0].0, 0);
    }

    #[test]
    fn counts_and_vocab() {
        let idx = index(&["a b b", "b c"]);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.vocabulary_size(), 3);
        assert_eq!(idx.doc_freq("b"), 2);
        assert_eq!(idx.doc_freq("zzz"), 0);
        assert!(!idx.is_empty());
    }

    #[test]
    fn k_truncates() {
        let idx = index(&["term one", "term two", "term three"]);
        assert_eq!(idx.search("term", 2).len(), 2);
    }

    #[test]
    fn deterministic_tie_break() {
        let idx = index(&["same words here", "same words here"]);
        let hits = idx.search("same words", 2);
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits[1].0, 1);
    }
}
