//! The knowledge base: construction + retrieval under one roof.
//!
//! Ties the whole of Figure 2 together: documents enter, are chunked, and
//! every chunk is indexed into the vector store, the inverted index and the
//! graph index simultaneously; queries leave through a selectable
//! [`RetrievalStrategy`].

use std::collections::HashMap;
use std::sync::Arc;

use dbgpt_obs::metrics::COUNT_BUCKETS;
use dbgpt_obs::{Obs, Span};

use crate::chunker::{Chunk, Chunker, ChunkingStrategy};
use crate::document::Document;
use crate::embedding::{Embedder, HashEmbedder};
use crate::error::RagError;
use crate::graph::GraphIndex;
use crate::inverted::InvertedIndex;
use crate::retriever::{reciprocal_rank_fusion, RetrievalConfig, RetrievalStrategy};
use crate::vector_store::{AnnBuildConfig, VectorStore};

/// A retrieval result.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrievedChunk {
    /// The chunk.
    pub chunk: Chunk,
    /// Strategy-specific relevance score (higher is better). Scores are
    /// comparable within one strategy, not across strategies.
    pub score: f64,
}

/// Target number of chunks per IVF partition: `build_ann_index` sizes the
/// partition count as `chunks / CHUNKS_PER_IVF_LIST` (clamped to
/// `[1, MAX_IVF_LISTS]`). The old name `IVF_LIST_RATIO` described it
/// backwards — the value is a divisor (chunks per list), not a
/// lists-per-chunks ratio.
const CHUNKS_PER_IVF_LIST: usize = 100;

/// Upper bound on IVF partitions, whatever the corpus size.
const MAX_IVF_LISTS: usize = 64;

/// Partition count for a corpus of `chunks` chunks (see
/// [`CHUNKS_PER_IVF_LIST`]).
fn ivf_nlist(chunks: usize) -> usize {
    (chunks / CHUNKS_PER_IVF_LIST).clamp(1, MAX_IVF_LISTS)
}

/// The knowledge base (see module docs).
pub struct KnowledgeBase {
    chunker: Chunker,
    embedder: Arc<dyn Embedder>,
    chunks: Vec<Chunk>,
    vectors: VectorStore,
    inverted: InvertedIndex,
    graph: GraphIndex,
    documents: HashMap<String, usize>, // id → chunk count
    /// Scan tuning for every retrieval; defaults to auto-parallel above
    /// the crossover size, so existing callers speed up with no changes.
    config: RetrievalConfig,
    /// Build knobs used when the HNSW index is (auto-)built.
    ann_build: AnnBuildConfig,
    /// Tracing + metrics handle; disabled (free) by default. Retrieval has
    /// no simulated clock, so spans are timestamped with [`Obs::tick`]
    /// logical ticks — still byte-identical across identical runs.
    obs: Obs,
}

impl KnowledgeBase {
    /// Knowledge base with paragraph chunking and the hash embedder.
    pub fn with_defaults() -> Self {
        KnowledgeBase::new(
            Chunker::new(ChunkingStrategy::default()),
            Arc::new(HashEmbedder::new()),
        )
    }

    /// Fully custom construction.
    pub fn new(chunker: Chunker, embedder: Arc<dyn Embedder>) -> Self {
        KnowledgeBase {
            chunker,
            embedder,
            chunks: Vec::new(),
            vectors: VectorStore::new(),
            inverted: InvertedIndex::new(),
            graph: GraphIndex::new(),
            documents: HashMap::new(),
            config: RetrievalConfig::default(),
            ann_build: AnnBuildConfig::default(),
            obs: Obs::disabled(),
        }
    }

    /// Override the HNSW build knobs (storage backend, degree, beam,
    /// seed), builder style. Takes effect at the next (auto-)build.
    pub fn with_ann_build_config(mut self, config: AnnBuildConfig) -> Self {
        self.ann_build = config;
        self
    }

    /// Override the retrieval scan tuning, builder style.
    pub fn with_retrieval_config(mut self, config: RetrievalConfig) -> Self {
        self.config = config;
        self
    }

    /// Attach an observability handle, builder style.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Attach an observability handle in place (e.g. to share one [`Obs`]
    /// across the serving path and the knowledge base).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The observability handle (disabled unless one was attached).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Override the retrieval scan tuning in place.
    pub fn set_retrieval_config(&mut self, config: RetrievalConfig) {
        self.config = config;
    }

    /// The retrieval scan tuning currently in effect.
    pub fn retrieval_config(&self) -> RetrievalConfig {
        self.config
    }

    /// Order-sensitive FNV-1a digest of the ingested corpus: chunk texts
    /// in ingestion order plus the document table (sorted by id). Two
    /// knowledge bases that applied the same ingest operations in the same
    /// order have equal fingerprints, which is what the cluster layer uses
    /// to prove a replica's KB shard matches its primary after failover.
    ///
    /// Deliberately **independent of index state**: IVF partitions, the
    /// HNSW graph and the quantized codes are derived data, so a replica
    /// that built an ANN index and one that did not still converge.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for chunk in &self.chunks {
            eat(chunk.document_id.as_bytes());
            eat(&chunk.index.to_le_bytes());
            eat(chunk.text.as_bytes());
        }
        let mut ids: Vec<(&String, &usize)> = self.documents.iter().collect();
        ids.sort();
        for (id, n) in ids {
            eat(id.as_bytes());
            eat(&n.to_le_bytes());
        }
        h
    }

    /// Ingest a document into all three indexes. Returns chunks created.
    pub fn add_document(&mut self, doc: Document) -> Result<usize, RagError> {
        if self.documents.contains_key(&doc.id) {
            return Err(RagError::DuplicateDocument(doc.id));
        }
        if doc.is_empty() {
            return Err(RagError::EmptyDocument(doc.id));
        }
        let chunks = self.chunker.chunk(&doc);
        let n = chunks.len();
        for chunk in chunks {
            // `VectorStore::add` inserts into a built HNSW index
            // incrementally, so ANN retrieval stays live through ingest.
            let vid = self.vectors.add(self.embedder.embed(&chunk.text));
            let iid = self.inverted.add(&chunk.text);
            let gid = self.graph.add(&chunk.text);
            debug_assert_eq!(vid, iid);
            debug_assert_eq!(vid, gid);
            debug_assert_eq!(vid, self.chunks.len());
            self.chunks.push(chunk);
        }
        self.documents.insert(doc.id, n);
        // Auto-build once the corpus crosses the configured threshold;
        // past that point inserts above keep the index current.
        if !self.vectors.has_hnsw() && self.chunks.len() >= self.config.ann_auto_build {
            self.vectors.build_hnsw(self.ann_build);
        }
        Ok(n)
    }

    /// Convenience: ingest plain text.
    pub fn add_text(&mut self, id: &str, text: &str) -> usize {
        self.add_document(Document::from_text(id, text)).unwrap_or(0)
    }

    /// Total chunks indexed.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Documents ingested.
    pub fn document_count(&self) -> usize {
        self.documents.len()
    }

    /// All chunks of one document, in order.
    pub fn document_chunks(&self, id: &str) -> Vec<&Chunk> {
        self.chunks.iter().filter(|c| c.document_id == id).collect()
    }

    /// Build IVF partitions for approximate vector search (idempotent;
    /// call after bulk ingestion).
    pub fn build_ann_index(&mut self) {
        self.vectors.build_partitions(ivf_nlist(self.chunks.len()));
    }

    /// Build the HNSW graph index (and, with
    /// [`AnnStorage::Quantized`](crate::vector_store::AnnStorage), the
    /// scalar-quantized mirror) for [`RetrievalStrategy::VectorAnn`].
    /// Idempotent; later `add_document` calls insert into the built index
    /// incrementally. The index is *derived data*: it never contributes
    /// to [`KnowledgeBase::fingerprint`], so replicas that did and did not
    /// build it still converge.
    pub fn build_hnsw_index(&mut self, config: AnnBuildConfig) {
        self.ann_build = config;
        self.vectors.build_hnsw(config);
    }

    /// Is the HNSW index currently built?
    pub fn has_hnsw_index(&self) -> bool {
        self.vectors.has_hnsw()
    }

    /// The underlying vector store (read-only; for diagnostics and
    /// benches that need index fingerprints or memory accounting).
    pub fn vector_store(&self) -> &VectorStore {
        &self.vectors
    }

    /// Retrieve with a second-stage rerank: fetch `3k` candidates under
    /// `strategy`, then let the lexical cross-scorer pick the top `k`.
    pub fn retrieve_reranked(
        &self,
        query: &str,
        k: usize,
        strategy: RetrievalStrategy,
    ) -> Vec<RetrievedChunk> {
        let candidates = self.retrieve(query, k * 3, strategy);
        crate::rerank::rerank(query, candidates, k)
    }

    /// Retrieve the top-k chunks for a query under a strategy.
    ///
    /// Spans are opened only in this sequential orchestration — never
    /// inside the threaded scan workers — so trace dumps stay
    /// deterministic even when the flat scan fans out across threads.
    pub fn retrieve(
        &self,
        query: &str,
        k: usize,
        strategy: RetrievalStrategy,
    ) -> Vec<RetrievedChunk> {
        let span = self.obs.span("rag.retrieve", self.obs.tick());
        self.retrieve_with_span(query, k, strategy, span)
    }

    /// [`KnowledgeBase::retrieve`], but the `rag.retrieve` span joins
    /// `parent`'s trace (when the parent is recording) instead of opening
    /// its own — how an app-layer request root absorbs retrieval spans.
    /// Share one handle via [`KnowledgeBase::set_obs`] so the counters
    /// land in the same registry.
    pub fn retrieve_under(
        &self,
        query: &str,
        k: usize,
        strategy: RetrievalStrategy,
        parent: &Span,
    ) -> Vec<RetrievedChunk> {
        let span = if parent.is_recording() {
            parent.child("rag.retrieve", parent.tick())
        } else {
            self.obs.span("rag.retrieve", self.obs.tick())
        };
        self.retrieve_with_span(query, k, strategy, span)
    }

    /// [`KnowledgeBase::retrieve_reranked`] under a parent span.
    pub fn retrieve_reranked_under(
        &self,
        query: &str,
        k: usize,
        strategy: RetrievalStrategy,
        parent: &Span,
    ) -> Vec<RetrievedChunk> {
        let candidates = self.retrieve_under(query, k * 3, strategy, parent);
        crate::rerank::rerank(query, candidates, k)
    }

    /// Shared body of the `retrieve*` entry points, under an already-open
    /// span (stage children are timestamped on the span's tick clock).
    fn retrieve_with_span(
        &self,
        query: &str,
        k: usize,
        strategy: RetrievalStrategy,
        span: Span,
    ) -> Vec<RetrievedChunk> {
        if span.is_recording() {
            span.attr("strategy", strategy.name());
            span.attr("k", k);
        }
        self.obs.counter("rag.queries", 1);
        self.obs
            .counter("rag.chunks_scanned", self.chunks.len() as u64);
        let ids_scores: Vec<(usize, f64)> = match strategy {
            RetrievalStrategy::Vector => {
                let stage = span.child("rag.scan.vector", span.tick());
                let r = self
                    .vectors
                    .search_flat_with(&self.embedder.embed(query), k, &self.config)
                    .into_iter()
                    .map(|(i, s)| (i, s as f64))
                    .collect();
                stage.end(span.tick());
                r
            }
            RetrievalStrategy::VectorApprox => {
                let stage = span.child("rag.scan.ivf", span.tick());
                let r = self
                    .vectors
                    .search_ivf_with(&self.embedder.embed(query), k, 4, &self.config)
                    .into_iter()
                    .map(|(i, s)| (i, s as f64))
                    .collect();
                stage.end(span.tick());
                r
            }
            RetrievalStrategy::VectorAnn => {
                let stage = span.child("rag.scan.hnsw", span.tick());
                let r = self
                    .vectors
                    .search_hnsw_with(&self.embedder.embed(query), k, &self.config)
                    .into_iter()
                    .map(|(i, s)| (i, s as f64))
                    .collect();
                stage.end(span.tick());
                r
            }
            RetrievalStrategy::Keyword => {
                let stage = span.child("rag.scan.keyword", span.tick());
                let r = self.inverted.search(query, k);
                stage.end(span.tick());
                r
            }
            RetrievalStrategy::Graph => {
                let stage = span.child("rag.scan.graph", span.tick());
                let r = self.graph.search(query, k);
                stage.end(span.tick());
                r
            }
            RetrievalStrategy::Hybrid => {
                let q = self.embedder.embed(query);
                let stage = span.child("rag.scan.vector", span.tick());
                let vector: Vec<usize> = self
                    .vectors
                    .search_flat_with(&q, k * 2, &self.config)
                    .into_iter()
                    .map(|(i, _)| i)
                    .collect();
                stage.end(span.tick());
                let stage = span.child("rag.scan.keyword", span.tick());
                let keyword: Vec<usize> = self
                    .inverted
                    .search(query, k * 2)
                    .into_iter()
                    .map(|(i, _)| i)
                    .collect();
                stage.end(span.tick());
                let stage = span.child("rag.scan.graph", span.tick());
                let graph: Vec<usize> = self
                    .graph
                    .search(query, k * 2)
                    .into_iter()
                    .map(|(i, _)| i)
                    .collect();
                stage.end(span.tick());
                let stage = span.child("rag.fuse", span.tick());
                let r = reciprocal_rank_fusion(&[vector, keyword, graph], k);
                stage.end(span.tick());
                r
            }
        };
        let out: Vec<RetrievedChunk> = ids_scores
            .into_iter()
            .filter_map(|(i, score)| {
                self.chunks.get(i).map(|chunk| RetrievedChunk {
                    chunk: chunk.clone(),
                    score,
                })
            })
            .collect();
        if self.obs.is_enabled() {
            self.obs
                .observe_with("rag.hits", COUNT_BUCKETS, out.len() as u64);
        }
        if span.is_recording() {
            span.attr("hits", out.len());
            span.end(span.tick());
        }
        out
    }
}

impl std::fmt::Debug for KnowledgeBase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KnowledgeBase")
            .field("documents", &self.documents.len())
            .field("chunks", &self.chunks.len())
            .field("vocabulary", &self.inverted.vocabulary_size())
            .field("graph_nodes", &self.graph.node_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;

    fn kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::with_defaults();
        kb.add_text(
            "awel",
            "AWEL is the Agentic Workflow Expression Language.\n\
             It composes agents into directed acyclic graphs.",
        );
        kb.add_text(
            "smmf",
            "SMMF is the Service-oriented Multi-model Management Framework.\n\
             It keeps model serving private and local.",
        );
        kb.add_text(
            "rag",
            "Retrieval augmented generation enriches prompts with context.\n\
             DB-GPT retrieves from vector, inverted and graph indexes.",
        );
        kb
    }

    #[test]
    fn ingestion_counts() {
        let kb = kb();
        assert_eq!(kb.document_count(), 3);
        assert_eq!(kb.chunk_count(), 6);
        assert_eq!(kb.document_chunks("awel").len(), 2);
    }

    #[test]
    fn duplicate_document_rejected() {
        let mut kb = kb();
        let err = kb.add_document(Document::from_text("awel", "dup")).unwrap_err();
        assert!(matches!(err, RagError::DuplicateDocument(_)));
    }

    #[test]
    fn empty_document_rejected() {
        let mut kb = kb();
        let err = kb.add_document(Document::from_text("blank", "  ")).unwrap_err();
        assert!(matches!(err, RagError::EmptyDocument(_)));
    }

    #[test]
    fn every_strategy_finds_the_obvious_answer() {
        let mut kb = kb();
        kb.build_ann_index();
        for &strategy in RetrievalStrategy::ALL {
            let hits = kb.retrieve("agentic workflow expression language", 2, strategy);
            assert!(
                !hits.is_empty(),
                "strategy {} returned nothing",
                strategy.name()
            );
            assert_eq!(
                hits[0].chunk.document_id,
                "awel",
                "strategy {} missed",
                strategy.name()
            );
        }
    }

    #[test]
    fn hybrid_covers_keyword_only_matches() {
        // A chunk retrievable by exact keyword but embedded far from the
        // query phrasing should still surface through hybrid fusion.
        let mut kb = KnowledgeBase::with_defaults();
        kb.add_text("a", "xylophone zebra quartz");
        kb.add_text("b", "completely different musical instrument discussion");
        let hits = kb.retrieve("xylophone", 2, RetrievalStrategy::Hybrid);
        assert_eq!(hits[0].chunk.document_id, "a");
    }

    #[test]
    fn retrieval_scores_are_monotonic() {
        let kb = kb();
        let hits = kb.retrieve("private model serving", 3, RetrievalStrategy::Vector);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn k_limits_results() {
        let kb = kb();
        assert!(kb.retrieve("the", 1, RetrievalStrategy::Vector).len() <= 1);
    }

    #[test]
    fn debug_output_summarises() {
        let kb = kb();
        let dbg = format!("{kb:?}");
        assert!(dbg.contains("documents: 3"));
    }

    #[test]
    fn add_text_returns_zero_on_failure() {
        let mut kb = kb();
        assert_eq!(kb.add_text("awel", "dup"), 0);
    }

    #[test]
    fn ivf_nlist_clamps_both_ends() {
        assert_eq!(ivf_nlist(0), 1, "empty corpus still gets one list");
        assert_eq!(ivf_nlist(99), 1, "below one full list");
        assert_eq!(ivf_nlist(100), 1);
        assert_eq!(ivf_nlist(250), 2);
        assert_eq!(ivf_nlist(6400), MAX_IVF_LISTS);
        assert_eq!(ivf_nlist(1_000_000), MAX_IVF_LISTS, "upper clamp");
    }

    #[test]
    fn build_ann_index_partition_count_tracks_corpus_size() {
        let mut kb = kb(); // 6 chunks → clamps to a single partition
        kb.build_ann_index();
        assert_eq!(kb.vector_store().partition_count(), 1);
    }

    #[test]
    fn fingerprint_ignores_ann_index_state() {
        // The graph and quantized codes are derived data: a replica that
        // built the index and one that did not must stay convergent.
        let plain = kb();
        let mut indexed = kb();
        indexed.build_ann_index();
        indexed.build_hnsw_index(AnnBuildConfig::default());
        assert!(indexed.has_hnsw_index());
        assert_eq!(plain.fingerprint(), indexed.fingerprint());

        // And ingest on top of divergent index state still converges.
        let mut plain = plain;
        let mut indexed = indexed;
        plain.add_text("extra", "one more note about serving capacity");
        indexed.add_text("extra", "one more note about serving capacity");
        assert_eq!(plain.fingerprint(), indexed.fingerprint());
    }

    #[test]
    fn vector_ann_falls_back_to_flat_until_built() {
        let kb = kb();
        assert!(!kb.has_hnsw_index());
        let flat = kb.retrieve("agentic workflow expression language", 2, RetrievalStrategy::Vector);
        let ann = kb.retrieve(
            "agentic workflow expression language",
            2,
            RetrievalStrategy::VectorAnn,
        );
        assert_eq!(flat, ann);
    }

    #[test]
    fn vector_ann_auto_builds_past_threshold_and_inserts_incrementally() {
        let mut kb = KnowledgeBase::with_defaults().with_retrieval_config(RetrievalConfig {
            ann_auto_build: 10,
            ..RetrievalConfig::default()
        });
        for i in 0..9 {
            kb.add_text(&format!("d{i}"), &format!("note {i} about subsystem {}", i % 3));
        }
        assert!(!kb.has_hnsw_index(), "below threshold");
        kb.add_text("d9", "note 9 about subsystem 0");
        assert!(kb.has_hnsw_index(), "threshold crossed → auto-build");
        let before = kb.vector_store().hnsw_fingerprint();
        kb.add_text("d10", "a fresh note about quarterly revenue forecasts");
        assert!(kb.has_hnsw_index());
        assert_ne!(
            kb.vector_store().hnsw_fingerprint(),
            before,
            "ingest must insert into the built graph"
        );
        let hits = kb.retrieve("quarterly revenue forecasts", 1, RetrievalStrategy::VectorAnn);
        assert_eq!(hits[0].chunk.document_id, "d10");
    }

    #[test]
    fn retrieval_config_round_trips_and_keeps_results_identical() {
        let mut kb = kb();
        assert_eq!(kb.retrieval_config(), RetrievalConfig::default());
        let sequential = kb.retrieve("private model serving", 3, RetrievalStrategy::Vector);

        let forced_parallel = RetrievalConfig {
            threads: 4,
            topk_crossover: 0,
            ..RetrievalConfig::default()
        };
        kb.set_retrieval_config(forced_parallel);
        assert_eq!(kb.retrieval_config(), forced_parallel);
        let parallel = kb.retrieve("private model serving", 3, RetrievalStrategy::Vector);
        assert_eq!(sequential, parallel);

        let kb2 = KnowledgeBase::with_defaults().with_retrieval_config(forced_parallel);
        assert_eq!(kb2.retrieval_config(), forced_parallel);
    }
}

#[cfg(test)]
mod obs_tests {
    use super::*;
    use dbgpt_obs::ObsConfig;

    fn kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::with_defaults();
        kb.add_text("awel", "AWEL composes agents into directed acyclic graphs.");
        kb.add_text("smmf", "SMMF keeps model serving private and local.");
        kb
    }

    #[test]
    fn default_retrieval_records_nothing() {
        let kb = kb();
        kb.retrieve("model serving", 2, RetrievalStrategy::Hybrid);
        assert!(!kb.obs().is_enabled());
        assert_eq!(kb.obs().span_count(), 0);
        assert_eq!(kb.obs().metrics_json(), Obs::disabled().metrics_json());
    }

    #[test]
    fn retrieval_spans_cover_every_hybrid_stage() {
        let kb = kb().with_obs(Obs::new(ObsConfig::enabled(5)));
        let hits = kb.retrieve("model serving", 2, RetrievalStrategy::Hybrid);
        assert!(!hits.is_empty());
        let spans = kb.obs().finished_spans();
        let root = spans.iter().find(|r| r.name == "rag.retrieve").expect("root");
        assert_eq!(root.attr("strategy"), Some("hybrid"));
        assert_eq!(root.attr("hits"), Some(hits.len().to_string()).as_deref());
        for stage in ["rag.scan.vector", "rag.scan.keyword", "rag.scan.graph", "rag.fuse"] {
            let s = spans.iter().find(|r| r.name == stage).unwrap_or_else(|| {
                panic!("missing stage span {stage}")
            });
            assert_eq!(s.parent, Some(root.id), "{stage} must nest under the root");
        }
        assert_eq!(kb.obs().counter_value("rag.queries"), 1);
        assert_eq!(
            kb.obs().counter_value("rag.chunks_scanned"),
            kb.chunk_count() as u64
        );
    }

    #[test]
    fn observed_retrieval_is_unchanged_and_deterministic() {
        let plain = kb();
        let run = || {
            let observed = kb().with_obs(Obs::new(ObsConfig::enabled(9)));
            let mut all = Vec::new();
            for &strategy in RetrievalStrategy::ALL {
                all.push(observed.retrieve("model serving", 2, strategy));
            }
            (all, observed.obs().trace_json(), observed.obs().metrics_json())
        };
        let (a, trace_a, metrics_a) = run();
        let (b, trace_b, metrics_b) = run();
        for (hits, &strategy) in a.iter().zip(RetrievalStrategy::ALL) {
            assert_eq!(
                hits,
                &plain.retrieve("model serving", 2, strategy),
                "observability must not change {} results",
                strategy.name()
            );
        }
        assert_eq!(a, b);
        assert_eq!(trace_a, trace_b, "same seed, same trace bytes");
        assert_eq!(metrics_a, metrics_b);
    }
}

#[cfg(test)]
mod rerank_integration {
    use super::*;

    #[test]
    fn reranked_retrieval_prefers_dense_matches() {
        let mut kb = KnowledgeBase::with_defaults();
        kb.add_text("padded", &format!("checkpoint {}", "irrelevant padding words ".repeat(30)));
        kb.add_text("dense", "checkpoint interval tuning for compaction");
        let top = kb.retrieve_reranked("checkpoint interval tuning", 1, RetrievalStrategy::Keyword);
        assert_eq!(top[0].chunk.document_id, "dense");
    }

    #[test]
    fn reranked_never_exceeds_k() {
        let mut kb = KnowledgeBase::with_defaults();
        for i in 0..10 {
            kb.add_text(&format!("d{i}"), &format!("common words appear in document {i}"));
        }
        assert_eq!(kb.retrieve_reranked("common words", 4, RetrievalStrategy::Hybrid).len(), 4);
    }
}
