#![warn(missing_docs)]

//! # dbgpt-rag — Retrieval-Augmented Generation from multiple data sources
//!
//! Implements the RAG architecture of DB-GPT's module layer (paper §2.3,
//! Figure 2), in three stages:
//!
//! 1. **Knowledge construction** — documents from multiple sources are
//!    segmented into paragraphs ([`chunker`]), each paragraph encoded into a
//!    multidimensional vector by a neural-encoder stand-in
//!    ([`embedding::HashEmbedder`]), and indexed **three ways**, exactly as
//!    the paper describes: a vector index ([`vector_store`]), an inverted
//!    index with BM25 scoring ([`inverted`]), and a graph index of entity
//!    co-occurrence ([`graph`]).
//! 2. **Knowledge retrieval** — a query is embedded and the top-k most
//!    relevant paragraphs are found under a selectable
//!    [`retriever::RetrievalStrategy`]: cosine-similarity vector search,
//!    keyword (BM25) search, graph-neighbourhood search, or a hybrid that
//!    fuses all three with reciprocal-rank fusion.
//!    A second-stage [`rerank()`](rerank()) pass sharpens the candidate list with a
//!    lexical cross-scorer.
//! 3. **Adaptive ICL** — retrieved paragraphs are packed into a prompt
//!    template under a token budget, with privacy redaction of sensitive
//!    spans ([`icl`]), ready for a [`dbgpt_llm::LanguageModel`].
//!
//! ## Performance: the retrieval hot path
//!
//! Retrieval is built around three compounding optimizations (see the
//! README "Performance" section for reproduction commands):
//!
//! - **Normalized-vector kernel** — [`VectorStore`] unit-normalizes every
//!   vector once at insert (keeping the raw norm via
//!   [`VectorStore::stored_norm`]), so per-candidate cosine scoring is a
//!   bare [`dot`](embedding::dot) product with no square roots or
//!   divisions; k-means partition building reuses the same kernel.
//! - **Heap top-k** — every ranking path (flat scan, IVF probe, BM25,
//!   graph, RRF fusion) selects through one shared bounded
//!   [`topk::TopK`] accumulator: O(n log k) instead of sort-everything
//!   O(n log n), with a single definition of tie-breaking (score
//!   descending, id ascending) and NaN-safe `total_cmp` ordering.
//! - **Sharded parallel scan** — above a configurable crossover size the
//!   candidate range is split across scoped worker threads, each merging
//!   a local `TopK`; results are bit-identical to the sequential scan.
//!   Tuning lives in [`RetrievalConfig`] (`threads`, `topk_crossover`)
//!   and is threaded through [`KnowledgeBase`], so `retrieve` /
//!   `retrieve_reranked` callers get the speedup with no code changes.
//! - **ANN retrieval (HNSW + scalar quantization)** — past ~100k chunks
//!   even the parallel flat scan is the bottleneck, so
//!   [`RetrievalStrategy::VectorAnn`] routes through a deterministic
//!   [`hnsw`] graph (seeded level assignment, `total_cmp` + id tie-breaks
//!   ⇒ the same seed builds a byte-identical index) over either the f32
//!   store or a [`quant`] scalar-quantized mirror (u8 codes + per-query
//!   dot lookup tables, ~4× less memory, optional exact rescore).
//!   [`KnowledgeBase`] auto-builds the index once the corpus crosses
//!   `RetrievalConfig::ann_auto_build` chunks and inserts incrementally
//!   on later ingest; until an index exists the strategy falls back to
//!   the exact flat scan. Gated ≥0.95 recall@10 and ≥20× flat-scan
//!   speedup at 100k chunks by `bench_ann` (`results/BENCH_ann.json`).
//!
//! Retrieval is also observable: attach a [`dbgpt_obs::Obs`] handle via
//! [`KnowledgeBase::set_obs`] and every `retrieve` records a
//! `rag.retrieve` span with per-stage scan children plus query/scan-volume
//! counters — timestamped with logical ticks, deterministic across runs,
//! and free when no handle is attached (the default).
//!
//! ## Quickstart
//!
//! ```
//! use dbgpt_rag::{KnowledgeBase, RetrievalStrategy};
//!
//! let mut kb = KnowledgeBase::with_defaults();
//! kb.add_text("awel-doc", "AWEL is DB-GPT's workflow language. \
//!                          It composes agents into DAGs.");
//! kb.add_text("smmf-doc", "SMMF manages private model deployments locally.");
//! let hits = kb.retrieve("what language composes agents?", 1,
//!                        RetrievalStrategy::Hybrid);
//! assert_eq!(hits[0].chunk.document_id, "awel-doc");
//! ```

pub mod chunker;
pub mod document;
pub mod embedding;
pub mod error;
pub mod graph;
pub mod hnsw;
pub mod icl;
pub mod inverted;
pub mod knowledge;
pub mod quant;
pub mod rerank;
pub mod retriever;
pub mod topk;
pub mod vector_store;

pub use chunker::{Chunk, Chunker, ChunkingStrategy};
pub use document::{Document, DocumentSource};
pub use embedding::{cosine_similarity, dot, Embedder, Embedding, HashEmbedder};
pub use error::RagError;
pub use graph::GraphIndex;
pub use hnsw::{HnswConfig, HnswGraph};
pub use icl::{IclBuilder, PrivacyPolicy};
pub use inverted::InvertedIndex;
pub use knowledge::{KnowledgeBase, RetrievedChunk};
pub use quant::QuantizedStore;
pub use rerank::rerank;
pub use retriever::{RetrievalConfig, RetrievalStrategy};
pub use topk::TopK;
pub use vector_store::{AnnBuildConfig, AnnStorage, VectorStore};
