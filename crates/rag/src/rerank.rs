//! Reranking: a second-stage scorer over retrieved candidates.
//!
//! Production RAG stacks retrieve generously with a cheap first stage and
//! rerank the candidates with a sharper (more expensive) scorer — the
//! "diverse retrieval strategies for prioritizing relevant documents" of
//! §2.3. The reranker here is a lexical cross-scorer: it measures direct
//! query↔chunk term overlap (with IDF-free dampening for length), and
//! blends it with the candidate's first-stage rank. Deterministic, like
//! everything else in the repository.

use std::collections::HashSet;

use crate::inverted::InvertedIndex;
use crate::knowledge::RetrievedChunk;

/// Weight of the lexical cross-score relative to the first-stage rank.
const CROSS_WEIGHT: f64 = 0.7;

/// Compute the lexical cross-score of a query against one chunk text:
/// |terms ∩| / sqrt(|chunk terms|), normalised by query size.
pub fn cross_score(query: &str, text: &str) -> f64 {
    let q_terms: HashSet<String> = InvertedIndex::terms(query).into_iter().collect();
    if q_terms.is_empty() {
        return 0.0;
    }
    let t_terms: Vec<String> = InvertedIndex::terms(text);
    if t_terms.is_empty() {
        return 0.0;
    }
    let t_set: HashSet<&String> = t_terms.iter().collect();
    let overlap = q_terms.iter().filter(|t| t_set.contains(t)).count() as f64;
    overlap / (q_terms.len() as f64) / (t_terms.len() as f64).sqrt() * 4.0
}

/// Rerank candidates in place: final score = rank-decay + cross-score.
/// Returns the top `k`, best first. Stable for equal scores.
pub fn rerank(query: &str, mut candidates: Vec<RetrievedChunk>, k: usize) -> Vec<RetrievedChunk> {
    let n = candidates.len();
    let mut scored: Vec<(f64, usize)> = candidates
        .iter()
        .enumerate()
        .map(|(rank, c)| {
            // First-stage evidence decays with rank (1.0 → ~0).
            let stage1 = 1.0 - rank as f64 / n.max(1) as f64;
            let cross = cross_score(query, &c.chunk.text);
            ((1.0 - CROSS_WEIGHT) * stage1 + CROSS_WEIGHT * cross, rank)
        })
        .collect();
    // total_cmp: a NaN cross-score degrades the ordering gracefully
    // instead of panicking the server path.
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let order: Vec<usize> = scored.into_iter().take(k).map(|(_, i)| i).collect();
    // Extract in the new order (preserving scores for inspection).
    let mut out = Vec::with_capacity(order.len());
    let mut taken: Vec<Option<RetrievedChunk>> =
        candidates.drain(..).map(Some).collect();
    for i in order {
        let mut c = taken[i].take().expect("each index taken once");
        c.score = cross_score(query, &c.chunk.text);
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunker::Chunk;

    fn rc(id: &str, text: &str) -> RetrievedChunk {
        RetrievedChunk {
            chunk: Chunk {
                document_id: id.into(),
                index: 0,
                text: text.into(),
            },
            score: 0.0,
        }
    }

    #[test]
    fn exact_overlap_outranks_padding() {
        let q = "compaction checkpoint interval";
        let candidates = vec![
            rc("padded", &format!("unrelated words {}", "filler ".repeat(40))),
            rc("exact", "the compaction checkpoint interval is configurable"),
        ];
        let top = rerank(q, candidates, 1);
        assert_eq!(top[0].chunk.document_id, "exact");
    }

    #[test]
    fn first_stage_rank_still_matters_without_overlap() {
        let q = "zzz qqq";
        let candidates = vec![rc("first", "alpha beta"), rc("second", "gamma delta")];
        let top = rerank(q, candidates, 2);
        // No lexical signal: stage-1 order preserved.
        assert_eq!(top[0].chunk.document_id, "first");
        assert_eq!(top[1].chunk.document_id, "second");
    }

    #[test]
    fn k_truncates_and_handles_empty() {
        assert!(rerank("q", vec![], 3).is_empty());
        let top = rerank("alpha", vec![rc("a", "alpha"), rc("b", "alpha")], 1);
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn cross_score_properties() {
        assert!(cross_score("alpha beta", "alpha beta gamma") > cross_score("alpha beta", "alpha"));
        assert_eq!(cross_score("", "anything"), 0.0);
        assert_eq!(cross_score("word", ""), 0.0);
        // Longer chunks with the same overlap score lower.
        let short = cross_score("alpha", "alpha beta");
        let long = cross_score("alpha", &format!("alpha {}", "pad ".repeat(50)));
        assert!(short > long);
    }

    #[test]
    fn deterministic() {
        let mk = || vec![rc("a", "alpha beta"), rc("b", "alpha beta gamma")];
        let x = rerank("alpha beta", mk(), 2);
        let y = rerank("alpha beta", mk(), 2);
        let ids = |v: &[RetrievedChunk]| {
            v.iter().map(|c| c.chunk.document_id.clone()).collect::<Vec<_>>()
        };
        assert_eq!(ids(&x), ids(&y));
    }
}
