//! Error type for the RAG stack.

use std::fmt;

/// Errors across knowledge construction, retrieval and ICL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RagError {
    /// A document id was registered twice.
    DuplicateDocument(String),
    /// A referenced document does not exist.
    DocumentNotFound(String),
    /// Embedding dimensions disagree.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Supplied dimension.
        found: usize,
    },
    /// The prompt budget is too small to fit the template at all.
    BudgetTooSmall(usize),
    /// Input document was empty after cleaning.
    EmptyDocument(String),
}

impl fmt::Display for RagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RagError::DuplicateDocument(id) => write!(f, "duplicate document id `{id}`"),
            RagError::DocumentNotFound(id) => write!(f, "document not found: `{id}`"),
            RagError::DimensionMismatch { expected, found } => {
                write!(f, "embedding dimension mismatch: expected {expected}, found {found}")
            }
            RagError::BudgetTooSmall(n) => write!(f, "prompt budget of {n} tokens is too small"),
            RagError::EmptyDocument(id) => write!(f, "document `{id}` has no content"),
        }
    }
}

impl std::error::Error for RagError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(RagError::DuplicateDocument("d".into()).to_string().contains('d'));
        assert!(RagError::DimensionMismatch { expected: 64, found: 32 }
            .to_string()
            .contains("64"));
        assert!(RagError::BudgetTooSmall(3).to_string().contains('3'));
    }
}
