//! Bounded top-k selection shared by every ranking path.
//!
//! All three indexes (vector, inverted, graph) and the rank-fusion stage
//! used to *collect every candidate, sort, truncate* — O(n log n) per
//! query with the sort dominating at scale. [`TopK`] replaces that with a
//! bounded binary-heap selection: O(n log k), no allocation beyond the k
//! retained entries, and one shared definition of the ranking order
//! (score descending, id ascending) so tie-breaking stays identical
//! everywhere.
//!
//! Scores are compared with `total_cmp`, so a NaN score (for example from
//! a poisoned embedding) ranks deterministically instead of panicking the
//! way the old `partial_cmp(..).unwrap()` comparators did.
//!
//! Because the ranking order is a *strict total order* (ids are unique),
//! the selected set is independent of insertion order. That is what makes
//! the sharded parallel scan in [`crate::vector_store`] bit-identical to
//! the sequential one: each worker keeps a local `TopK`, and
//! [`TopK::merge`] folds them into the same result a single-threaded scan
//! would have produced.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A score type usable in a [`TopK`]: `f32` or `f64`.
pub trait Score: Copy + PartialOrd {
    /// Total ordering over the score type (IEEE-754 `totalOrder`).
    fn total_order(&self, other: &Self) -> Ordering;
}

impl Score for f32 {
    fn total_order(&self, other: &Self) -> Ordering {
        f32::total_cmp(self, other)
    }
}

impl Score for f64 {
    fn total_order(&self, other: &Self) -> Ordering {
        f64::total_cmp(self, other)
    }
}

/// One retained candidate.
#[derive(Debug, Clone, Copy)]
struct Entry<S: Score> {
    id: usize,
    score: S,
}

impl<S: Score> Entry<S> {
    /// `Greater` when `self` ranks *better* than `other`: higher score
    /// first, ties broken by lower id.
    fn rank_cmp(&self, other: &Self) -> Ordering {
        self.score
            .total_order(&other.score)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl<S: Score> PartialEq for Entry<S> {
    fn eq(&self, other: &Self) -> bool {
        self.rank_cmp(other) == Ordering::Equal
    }
}

impl<S: Score> Eq for Entry<S> {}

impl<S: Score> PartialOrd for Entry<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<S: Score> Ord for Entry<S> {
    /// Reversed rank order, so the `BinaryHeap` max is the *worst*
    /// retained candidate — the one a better newcomer evicts.
    fn cmp(&self, other: &Self) -> Ordering {
        other.rank_cmp(self)
    }
}

/// Bounded top-k accumulator (see module docs).
#[derive(Debug, Clone)]
pub struct TopK<S: Score> {
    k: usize,
    heap: BinaryHeap<Entry<S>>,
}

impl<S: Score> TopK<S> {
    /// Accumulator retaining the best `k` candidates.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k.min(1024) + 1),
        }
    }

    /// The bound this accumulator was created with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of candidates currently retained (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is nothing retained yet?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offer one candidate. O(log k); a candidate worse than the current
    /// k-th is rejected without touching the heap.
    pub fn push(&mut self, id: usize, score: S) {
        if self.k == 0 {
            return;
        }
        let entry = Entry { id, score };
        if self.heap.len() < self.k {
            self.heap.push(entry);
        } else if let Some(worst) = self.heap.peek() {
            if entry.rank_cmp(worst) == Ordering::Greater {
                self.heap.pop();
                self.heap.push(entry);
            }
        }
    }

    /// Fold another accumulator in (used to combine per-shard results).
    pub fn merge(&mut self, other: TopK<S>) {
        for e in other.heap {
            self.push(e.id, e.score);
        }
    }

    /// The retained candidates, best first (score desc, id asc).
    pub fn into_sorted_vec(self) -> Vec<(usize, S)> {
        let mut v = self.heap.into_vec();
        v.sort_by(|a, b| b.rank_cmp(a));
        v.into_iter().map(|e| (e.id, e.score)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference selection: full sort + truncate.
    fn reference(hits: &[(usize, f32)], k: usize) -> Vec<(usize, f32)> {
        let mut v = hits.to_vec();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    #[test]
    fn matches_sort_and_truncate() {
        let hits: Vec<(usize, f32)> = (0..100)
            .map(|i| (i, ((i * 37) % 100) as f32 / 10.0))
            .collect();
        for k in [0, 1, 3, 10, 99, 100, 200] {
            let mut top = TopK::new(k);
            for &(i, s) in &hits {
                top.push(i, s);
            }
            assert_eq!(top.into_sorted_vec(), reference(&hits, k), "k={k}");
        }
    }

    #[test]
    fn ties_break_by_lower_id() {
        let mut top = TopK::new(2);
        top.push(5, 1.0);
        top.push(2, 1.0);
        top.push(9, 1.0);
        assert_eq!(top.into_sorted_vec(), vec![(2, 1.0), (5, 1.0)]);
    }

    #[test]
    fn insertion_order_is_irrelevant() {
        let hits: Vec<(usize, f32)> = (0..50).map(|i| (i, ((i * 13) % 7) as f32)).collect();
        let mut forward = TopK::new(5);
        let mut backward = TopK::new(5);
        for &(i, s) in &hits {
            forward.push(i, s);
        }
        for &(i, s) in hits.iter().rev() {
            backward.push(i, s);
        }
        assert_eq!(forward.into_sorted_vec(), backward.into_sorted_vec());
    }

    #[test]
    fn merge_equals_single_accumulator() {
        let hits: Vec<(usize, f64)> = (0..60).map(|i| (i, ((i * 31) % 17) as f64)).collect();
        let mut whole = TopK::new(7);
        let mut a = TopK::new(7);
        let mut b = TopK::new(7);
        for &(i, s) in &hits {
            whole.push(i, s);
            if i % 2 == 0 {
                a.push(i, s);
            } else {
                b.push(i, s);
            }
        }
        a.merge(b);
        assert_eq!(a.into_sorted_vec(), whole.into_sorted_vec());
    }

    #[test]
    fn nan_scores_do_not_panic() {
        let mut top = TopK::new(3);
        top.push(0, f32::NAN);
        top.push(1, 0.5);
        top.push(2, f32::NAN);
        top.push(3, 0.9);
        let out = top.into_sorted_vec();
        assert_eq!(out.len(), 3);
        // total_cmp ranks positive NaN above every real number; the two
        // NaN entries tie and break by id.
        assert_eq!(out[0].0, 0);
        assert_eq!(out[1].0, 2);
        assert_eq!(out[2].0, 3);
    }

    #[test]
    fn k_zero_retains_nothing() {
        let mut top: TopK<f32> = TopK::new(0);
        top.push(1, 1.0);
        assert!(top.is_empty());
        assert_eq!(top.k(), 0);
        assert!(top.into_sorted_vec().is_empty());
    }
}
