//! The vector index: exact flat search plus an IVF-style partitioned index.
//!
//! "DB-GPT then identifies the top-k paragraphs within the knowledge base
//! that are most relevant to q … ordering based on the cosine similarity of
//! their embedded vectors" (§2.3). The flat store is the exact reference;
//! the partitioned store trades a little recall for sublinear probe cost on
//! large corpora (benchmark E5 measures the trade-off).

use crate::embedding::{cosine_similarity, Embedding};

/// A scored hit: `(chunk id, similarity)`.
pub type VectorHit = (usize, f32);

/// Number of Lloyd iterations used when building partitions.
const KMEANS_ITERS: usize = 5;

/// A store of embeddings addressed by dense `usize` ids.
#[derive(Debug, Clone, Default)]
pub struct VectorStore {
    vectors: Vec<Embedding>,
    /// IVF partitions: centroids plus member lists. Rebuilt on demand.
    partitions: Option<Partitions>,
}

#[derive(Debug, Clone)]
struct Partitions {
    centroids: Vec<Embedding>,
    members: Vec<Vec<usize>>,
}

impl VectorStore {
    /// Empty store.
    pub fn new() -> Self {
        VectorStore::default()
    }

    /// Append a vector; its id is its insertion index. Invalidates any
    /// built partitions.
    pub fn add(&mut self, v: Embedding) -> usize {
        self.partitions = None;
        self.vectors.push(v);
        self.vectors.len() - 1
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The vector with id `i`.
    pub fn get(&self, i: usize) -> Option<&Embedding> {
        self.vectors.get(i)
    }

    /// Exact top-k by cosine similarity, highest first; ties broken by id.
    pub fn search_flat(&self, query: &Embedding, k: usize) -> Vec<VectorHit> {
        let mut hits: Vec<VectorHit> = self
            .vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (i, cosine_similarity(query, v)))
            .collect();
        hits.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        hits.truncate(k);
        hits
    }

    /// Build IVF partitions with `nlist` centroids (k-means with
    /// deterministic farthest-point seeding).
    pub fn build_partitions(&mut self, nlist: usize) {
        let n = self.vectors.len();
        if n == 0 {
            self.partitions = None;
            return;
        }
        let nlist = nlist.clamp(1, n);
        // Farthest-point init: start from vector 0.
        let mut centroids: Vec<Embedding> = vec![self.vectors[0].clone()];
        while centroids.len() < nlist {
            let mut best = (0usize, f32::INFINITY);
            for (i, v) in self.vectors.iter().enumerate() {
                // Distance to the closest existing centroid.
                let closest = centroids
                    .iter()
                    .map(|c| cosine_similarity(c, v))
                    .fold(f32::NEG_INFINITY, f32::max);
                if closest < best.1 {
                    best = (i, closest);
                }
            }
            centroids.push(self.vectors[best.0].clone());
        }
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); centroids.len()];
        for _ in 0..KMEANS_ITERS {
            for m in &mut members {
                m.clear();
            }
            for (i, v) in self.vectors.iter().enumerate() {
                let c = nearest_centroid(&centroids, v);
                members[c].push(i);
            }
            // Recompute centroids as normalised means.
            for (c, member_ids) in centroids.iter_mut().zip(&members) {
                if member_ids.is_empty() {
                    continue;
                }
                let dim = c.dim();
                let mut mean = vec![0.0f32; dim];
                for &id in member_ids {
                    for (m, x) in mean.iter_mut().zip(&self.vectors[id].0) {
                        *m += x;
                    }
                }
                let norm = mean.iter().map(|x| x * x).sum::<f32>().sqrt();
                if norm > 0.0 {
                    for m in &mut mean {
                        *m /= norm;
                    }
                }
                *c = Embedding(mean);
            }
        }
        self.partitions = Some(Partitions { centroids, members });
    }

    /// Approximate top-k probing the `nprobe` nearest partitions. Falls
    /// back to flat search when partitions are unbuilt.
    pub fn search_ivf(&self, query: &Embedding, k: usize, nprobe: usize) -> Vec<VectorHit> {
        let Some(p) = &self.partitions else {
            return self.search_flat(query, k);
        };
        let mut centroid_order: Vec<(usize, f32)> = p
            .centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (i, cosine_similarity(query, c)))
            .collect();
        centroid_order.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let mut hits: Vec<VectorHit> = Vec::new();
        for &(ci, _) in centroid_order.iter().take(nprobe.max(1)) {
            for &id in &p.members[ci] {
                hits.push((id, cosine_similarity(query, &self.vectors[id])));
            }
        }
        hits.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        hits.truncate(k);
        hits
    }

    /// Are partitions currently built?
    pub fn has_partitions(&self) -> bool {
        self.partitions.is_some()
    }
}

fn nearest_centroid(centroids: &[Embedding], v: &Embedding) -> usize {
    let mut best = (0usize, f32::NEG_INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let s = cosine_similarity(c, v);
        if s > best.1 {
            best = (i, s);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::{Embedder, HashEmbedder};

    fn store_with(texts: &[&str]) -> (VectorStore, HashEmbedder) {
        let e = HashEmbedder::new();
        let mut s = VectorStore::new();
        for t in texts {
            s.add(e.embed(t));
        }
        (s, e)
    }

    #[test]
    fn flat_search_finds_exact_match_first() {
        let (s, e) = store_with(&[
            "rust is a systems language",
            "cats are small mammals",
            "sql databases store rows",
        ]);
        let hits = s.search_flat(&e.embed("sql databases store rows"), 2);
        assert_eq!(hits[0].0, 2);
        assert!(hits[0].1 > 0.99);
    }

    #[test]
    fn flat_search_ranks_by_similarity() {
        let (s, e) = store_with(&[
            "sales report by category",
            "unrelated quantum physics",
        ]);
        let hits = s.search_flat(&e.embed("category sales numbers"), 2);
        assert_eq!(hits[0].0, 0);
        assert!(hits[0].1 > hits[1].1);
    }

    #[test]
    fn k_larger_than_store_returns_all() {
        let (s, e) = store_with(&["a", "b"]);
        assert_eq!(s.search_flat(&e.embed("a"), 10).len(), 2);
    }

    #[test]
    fn empty_store_returns_nothing() {
        let s = VectorStore::new();
        let e = HashEmbedder::new();
        assert!(s.search_flat(&e.embed("x"), 3).is_empty());
        assert!(s.is_empty());
    }

    #[test]
    fn ivf_matches_flat_on_small_corpus_with_full_probe() {
        let texts: Vec<String> = (0..40).map(|i| format!("document number {i} about topic {}", i % 5)).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (mut s, e) = store_with(&refs);
        s.build_partitions(4);
        assert!(s.has_partitions());
        let q = e.embed("document about topic 3");
        let flat = s.search_flat(&q, 5);
        let ivf = s.search_ivf(&q, 5, 4); // probe all partitions = exact
        assert_eq!(flat, ivf);
    }

    #[test]
    fn ivf_with_few_probes_still_finds_near_duplicates() {
        let mut texts: Vec<String> = (0..60).map(|i| format!("filler text number {i}")).collect();
        texts.push("the quarterly sales report for electronics".into());
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (mut s, e) = store_with(&refs);
        s.build_partitions(6);
        let q = e.embed("the quarterly sales report for electronics");
        let hits = s.search_ivf(&q, 1, 1);
        assert_eq!(hits[0].0, 60);
    }

    #[test]
    fn add_invalidates_partitions() {
        let (mut s, e) = store_with(&["a", "b", "c"]);
        s.build_partitions(2);
        assert!(s.has_partitions());
        s.add(e.embed("d"));
        assert!(!s.has_partitions());
        // Fallback still works.
        assert_eq!(s.search_ivf(&e.embed("d"), 1, 1)[0].0, 3);
    }

    #[test]
    fn get_and_len() {
        let (s, _) = store_with(&["a", "b"]);
        assert_eq!(s.len(), 2);
        assert!(s.get(1).is_some());
        assert!(s.get(2).is_none());
    }
}
