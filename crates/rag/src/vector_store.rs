//! The vector index: exact flat search plus an IVF-style partitioned index.
//!
//! "DB-GPT then identifies the top-k paragraphs within the knowledge base
//! that are most relevant to q … ordering based on the cosine similarity of
//! their embedded vectors" (§2.3). The flat store is the exact reference;
//! the partitioned store trades a little recall for sublinear probe cost on
//! large corpora (benchmark E5 measures the trade-off).
//!
//! # The retrieval hot path
//!
//! Three compounding optimizations keep the scan as fast as the hardware
//! allows:
//!
//! 1. **Normalized-vector kernel** — vectors are unit-normalized once at
//!    [`VectorStore::add`] (the raw norm is kept, see
//!    [`VectorStore::stored_norm`]), so per-candidate scoring is a bare
//!    [`dot`] product: no square roots, no divisions, and k-means partition
//!    building stops paying the redundant-norm cost `KMEANS_ITERS`× over.
//! 2. **Heap top-k** — candidates feed a bounded [`TopK`] accumulator,
//!    O(n log k) instead of the old collect-all-then-sort O(n log n).
//! 3. **Sharded parallel scan** — above a configurable crossover the
//!    candidate range is partitioned across scoped worker threads, each
//!    with a local [`TopK`] merged at the end. Because the ranking order
//!    is a strict total order, the parallel result is *bit-identical* to
//!    the sequential one (property-tested in `tests/rag_props.rs`).

use crate::embedding::{dot, Embedding};
use crate::hnsw::{HnswConfig, HnswGraph};
use crate::quant::QuantizedStore;
use crate::retriever::RetrievalConfig;
use crate::topk::TopK;

/// A scored hit: `(chunk id, similarity)`.
pub type VectorHit = (usize, f32);

/// Number of Lloyd iterations used when building partitions.
const KMEANS_ITERS: usize = 5;

/// A store of embeddings addressed by dense `usize` ids.
///
/// Vectors are held unit-normalized; [`VectorStore::get`] returns the
/// normalized form and [`VectorStore::stored_norm`] the original L2 norm.
#[derive(Debug, Clone, Default)]
pub struct VectorStore {
    /// Unit-normalized vectors (a zero vector stays zero).
    vectors: Vec<Embedding>,
    /// Raw L2 norm of each vector as inserted.
    norms: Vec<f32>,
    /// IVF partitions: centroids plus member lists. Rebuilt on demand.
    partitions: Option<Partitions>,
    /// HNSW graph (+ optional quantized mirror). Unlike IVF partitions it
    /// survives [`VectorStore::add`]: new vectors are inserted into the
    /// graph (and encoded onto the frozen quantization grid)
    /// incrementally, so ingest never throws the index away.
    ann: Option<AnnIndex>,
}

#[derive(Debug, Clone)]
struct Partitions {
    centroids: Vec<Embedding>,
    members: Vec<Vec<usize>>,
}

/// How [`VectorStore::build_hnsw`] scores candidates at query time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnnStorage {
    /// Graph search scores against the exact f32 vectors.
    #[default]
    F32,
    /// Graph search scores through the scalar-quantized codes via a
    /// per-query lookup table (~4× less hot memory); the top
    /// `RetrievalConfig::ann_rescore` candidates can be re-scored exactly.
    Quantized,
}

/// Build-time configuration for the ANN layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnnBuildConfig {
    /// HNSW graph knobs (degree bound, construction beam, seed).
    pub hnsw: HnswConfig,
    /// Storage backend the query path scores against.
    pub storage: AnnStorage,
}

#[derive(Debug, Clone)]
struct AnnIndex {
    graph: HnswGraph,
    /// Row-major contiguous copy of the unit vectors (`len × dim`), kept
    /// only on the f32 backend. Graph traversal random-accesses candidate
    /// vectors; scoring out of one flat allocation avoids the per-vector
    /// pointer chase through `Vec<Embedding>` (empty when quantized — the
    /// codes are the contiguous scoring storage there).
    flat: Vec<f32>,
    /// Vector dimension (0 until the first vector is seen).
    dim: usize,
    /// Present iff `storage == Quantized`.
    quant: Option<QuantizedStore>,
}

/// Dot product over raw f32 rows (the flat-matrix scoring kernel).
#[inline]
fn dot_rows(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Hint the cache that `p` (and the line after it) is about to be read.
/// Graph traversal is random access; issuing the hint one batch ahead of
/// scoring overlaps the memory fetch with arithmetic. Purely advisory —
/// a no-op off x86_64, and never a memory-safety concern (PREFETCH does
/// not fault).
#[inline]
fn prefetch_read(p: *const u8) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(p as *const i8, _MM_HINT_T0);
        _mm_prefetch(p.wrapping_add(64) as *const i8, _MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

impl VectorStore {
    /// Empty store.
    pub fn new() -> Self {
        VectorStore::default()
    }

    /// Append a vector; its id is its insertion index. The vector is
    /// unit-normalized in place (its raw norm is retained). Invalidates
    /// any built partitions; a built HNSW index is updated *in place*
    /// (graph insert + quantized encode on the frozen grid), so ANN
    /// search keeps working through incremental ingest.
    pub fn add(&mut self, v: Embedding) -> usize {
        self.partitions = None;
        let (unit, norm) = v.into_unit();
        self.vectors.push(unit);
        self.norms.push(norm);
        let id = self.vectors.len() - 1;
        if let Some(ann) = &mut self.ann {
            if ann.dim == 0 {
                ann.dim = self.vectors[id].dim();
            }
            match &mut ann.quant {
                Some(quant) => {
                    quant.push(&self.vectors[id]);
                    // No flat matrix on the quantized backend: insertion
                    // scores through the Embedding rows directly.
                    let vectors = &self.vectors;
                    let new = &vectors[id];
                    ann.graph.insert(
                        &|x| dot(new, &vectors[x as usize]),
                        &|a, b| dot(&vectors[a as usize], &vectors[b as usize]),
                    );
                }
                None => {
                    ann.flat.extend_from_slice(&self.vectors[id].0);
                    let (flat, dim) = (&ann.flat, ann.dim);
                    let row = |x: u32| &flat[x as usize * dim..(x as usize + 1) * dim];
                    let new = row(id as u32);
                    ann.graph.insert(
                        &|x| dot_rows(new, row(x)),
                        &|a, b| dot_rows(row(a), row(b)),
                    );
                }
            }
        }
        id
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The (unit-normalized) vector with id `i`.
    pub fn get(&self, i: usize) -> Option<&Embedding> {
        self.vectors.get(i)
    }

    /// The raw L2 norm vector `i` had when it was inserted.
    pub fn stored_norm(&self, i: usize) -> Option<f32> {
        self.norms.get(i).copied()
    }

    /// Exact top-k by cosine similarity, highest first; ties broken by id.
    /// Uses the default [`RetrievalConfig`] (auto thread count above the
    /// crossover size).
    pub fn search_flat(&self, query: &Embedding, k: usize) -> Vec<VectorHit> {
        self.search_flat_with(query, k, &RetrievalConfig::default())
    }

    /// Exact top-k under an explicit [`RetrievalConfig`]. Parallel and
    /// sequential configs return identical hit lists.
    pub fn search_flat_with(
        &self,
        query: &Embedding,
        k: usize,
        config: &RetrievalConfig,
    ) -> Vec<VectorHit> {
        let q = query.unit();
        self.scan_all(&q, k, config).into_sorted_vec()
    }

    /// Score every stored vector against the (already unit-normalized)
    /// query, sharding across workers when the config allows it.
    fn scan_all(&self, q: &Embedding, k: usize, config: &RetrievalConfig) -> TopK<f32> {
        let n = self.vectors.len();
        let workers = config.effective_threads(n);
        if workers <= 1 {
            let mut top = TopK::new(k);
            for (i, v) in self.vectors.iter().enumerate() {
                top.push(i, dot(q, v));
            }
            return top;
        }
        let chunk = n.div_ceil(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .vectors
                .chunks(chunk)
                .enumerate()
                .map(|(shard, slice)| {
                    s.spawn(move || {
                        let mut top = TopK::new(k);
                        let base = shard * chunk;
                        for (j, v) in slice.iter().enumerate() {
                            top.push(base + j, dot(q, v));
                        }
                        top
                    })
                })
                .collect();
            let mut merged = TopK::new(k);
            for h in handles {
                merged.merge(h.join().expect("scan worker panicked"));
            }
            merged
        })
    }

    /// Score an explicit candidate id list (the IVF probe set), sharding
    /// across workers when the config allows it.
    fn scan_ids(
        &self,
        q: &Embedding,
        ids: &[usize],
        k: usize,
        config: &RetrievalConfig,
    ) -> TopK<f32> {
        let n = ids.len();
        let workers = config.effective_threads(n);
        if workers <= 1 {
            let mut top = TopK::new(k);
            for &id in ids {
                top.push(id, dot(q, &self.vectors[id]));
            }
            return top;
        }
        let chunk = n.div_ceil(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = ids
                .chunks(chunk)
                .map(|slice| {
                    s.spawn(move || {
                        let mut top = TopK::new(k);
                        for &id in slice {
                            top.push(id, dot(q, &self.vectors[id]));
                        }
                        top
                    })
                })
                .collect();
            let mut merged = TopK::new(k);
            for h in handles {
                merged.merge(h.join().expect("scan worker panicked"));
            }
            merged
        })
    }

    /// Build IVF partitions with `nlist` centroids (k-means with
    /// deterministic farthest-point seeding). All distance computations
    /// run on the normalized kernel: stored vectors and centroids are
    /// unit, so similarity is a bare dot product.
    pub fn build_partitions(&mut self, nlist: usize) {
        let n = self.vectors.len();
        if n == 0 {
            self.partitions = None;
            return;
        }
        let nlist = nlist.clamp(1, n);
        // Farthest-point init: start from vector 0.
        let mut centroids: Vec<Embedding> = vec![self.vectors[0].clone()];
        while centroids.len() < nlist {
            let mut best = (0usize, f32::INFINITY);
            for (i, v) in self.vectors.iter().enumerate() {
                // Similarity to the closest existing centroid.
                let closest = centroids
                    .iter()
                    .map(|c| dot(c, v))
                    .fold(f32::NEG_INFINITY, f32::max);
                if closest < best.1 {
                    best = (i, closest);
                }
            }
            centroids.push(self.vectors[best.0].clone());
        }
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); centroids.len()];
        for _ in 0..KMEANS_ITERS {
            for m in &mut members {
                m.clear();
            }
            for (i, v) in self.vectors.iter().enumerate() {
                let c = nearest_centroid(&centroids, v);
                members[c].push(i);
            }
            // Recompute centroids as normalised means.
            for (c, member_ids) in centroids.iter_mut().zip(&members) {
                if member_ids.is_empty() {
                    continue;
                }
                let dim = c.dim();
                let mut mean = vec![0.0f32; dim];
                for &id in member_ids {
                    for (m, x) in mean.iter_mut().zip(&self.vectors[id].0) {
                        *m += x;
                    }
                }
                let norm = mean.iter().map(|x| x * x).sum::<f32>().sqrt();
                if norm > 0.0 {
                    for m in &mut mean {
                        *m /= norm;
                    }
                }
                *c = Embedding(mean);
            }
        }
        self.partitions = Some(Partitions { centroids, members });
    }

    /// Approximate top-k probing the `nprobe` nearest partitions, with the
    /// default [`RetrievalConfig`]. Falls back to flat search when
    /// partitions are unbuilt.
    pub fn search_ivf(&self, query: &Embedding, k: usize, nprobe: usize) -> Vec<VectorHit> {
        self.search_ivf_with(query, k, nprobe, &RetrievalConfig::default())
    }

    /// Approximate top-k under an explicit [`RetrievalConfig`].
    ///
    /// Falls back to exact flat search when (a) partitions are unbuilt,
    /// (b) the caller asked to probe every partition (probing all lists
    /// one by one is never cheaper than one flat scan, and degenerate
    /// k-means runs — duplicate vectors, empty partitions — must not cost
    /// recall), or (c) the probed partitions hold fewer than `k`
    /// candidates while the store has more (empty probed partitions would
    /// otherwise silently shrink the result set).
    pub fn search_ivf_with(
        &self,
        query: &Embedding,
        k: usize,
        nprobe: usize,
        config: &RetrievalConfig,
    ) -> Vec<VectorHit> {
        let Some(p) = &self.partitions else {
            return self.search_flat_with(query, k, config);
        };
        let nprobe = nprobe.max(1);
        if nprobe >= p.centroids.len() {
            return self.search_flat_with(query, k, config);
        }
        let q = query.unit();
        let mut centroid_top = TopK::new(nprobe);
        for (i, c) in p.centroids.iter().enumerate() {
            centroid_top.push(i, dot(&q, c));
        }
        let mut candidates: Vec<usize> = Vec::new();
        for (ci, _) in centroid_top.into_sorted_vec() {
            candidates.extend_from_slice(&p.members[ci]);
        }
        if candidates.len() < k && candidates.len() < self.vectors.len() {
            return self.search_flat_with(query, k, config);
        }
        self.scan_ids(&q, &candidates, k, config).into_sorted_vec()
    }

    /// Are partitions currently built?
    pub fn has_partitions(&self) -> bool {
        self.partitions.is_some()
    }

    /// Number of IVF partitions currently built (0 when unbuilt).
    pub fn partition_count(&self) -> usize {
        self.partitions.as_ref().map(|p| p.centroids.len()).unwrap_or(0)
    }

    /// Build the HNSW index over every stored vector (idempotent: an
    /// existing index is discarded and rebuilt). With
    /// [`AnnStorage::Quantized`] the scalar-quantization grid is fitted
    /// over the current corpus and every vector encoded; vectors added
    /// later clamp onto that frozen grid. Construction always scores
    /// through the exact f32 vectors, so the graph topology is identical
    /// for both storage backends.
    pub fn build_hnsw(&mut self, config: AnnBuildConfig) {
        let quant = match config.storage {
            AnnStorage::F32 => None,
            AnnStorage::Quantized => Some(QuantizedStore::fit(&self.vectors)),
        };
        let dim = self.vectors.first().map(|v| v.dim()).unwrap_or(0);
        let mut flat: Vec<f32> = Vec::with_capacity(self.vectors.len() * dim);
        for v in &self.vectors {
            flat.extend_from_slice(&v.0);
        }
        let mut graph = HnswGraph::new(config.hnsw);
        for id in 0..self.vectors.len() {
            let row = |x: u32| &flat[x as usize * dim..(x as usize + 1) * dim];
            let new = row(id as u32);
            graph.insert(
                &|x| dot_rows(new, row(x)),
                &|a, b| dot_rows(row(a), row(b)),
            );
        }
        // The quantized backend scores queries through its codes; keeping
        // the f32 matrix too would forfeit the memory reduction.
        if config.storage == AnnStorage::Quantized {
            flat = Vec::new();
        }
        self.ann = Some(AnnIndex { graph, flat, dim, quant });
    }

    /// Is the HNSW index currently built?
    pub fn has_hnsw(&self) -> bool {
        self.ann.is_some()
    }

    /// Determinism witness: FNV digest of the graph structure plus the
    /// quantized codes (when present). `None` when the index is unbuilt.
    pub fn hnsw_fingerprint(&self) -> Option<u64> {
        self.ann.as_ref().map(|ann| {
            ann.graph.fingerprint()
                ^ ann
                    .quant
                    .as_ref()
                    .map(|q| q.fingerprint().wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .unwrap_or(0)
        })
    }

    /// Bytes held by the ANN scoring storage: the quantized codes + grid
    /// when quantized, the raw f32 vectors otherwise. (The graph adds
    /// `O(n · m)` u32 links on top in both cases.)
    pub fn ann_storage_bytes(&self) -> usize {
        match self.ann.as_ref().and_then(|a| a.quant.as_ref()) {
            Some(q) => q.memory_bytes(),
            None => self.vectors.iter().map(|v| v.dim() * 4).sum(),
        }
    }

    /// Approximate top-k through the HNSW graph under the default
    /// [`RetrievalConfig`]. Falls back to the exact flat scan when the
    /// index is unbuilt.
    pub fn search_hnsw(&self, query: &Embedding, k: usize) -> Vec<VectorHit> {
        self.search_hnsw_with(query, k, &RetrievalConfig::default())
    }

    /// Approximate top-k through the HNSW graph: greedy descent + an
    /// `ann_ef_search`-wide beam on layer 0 (never narrower than `k`).
    ///
    /// On the quantized backend candidates are scored through the
    /// per-query lookup table; the best `ann_rescore` of them are then
    /// re-scored against the exact f32 vectors (when `ann_rescore > 0`)
    /// so reported scores — and the final top-k cut — are exact for the
    /// surviving candidates. Falls back to the exact flat scan when the
    /// index is unbuilt.
    pub fn search_hnsw_with(
        &self,
        query: &Embedding,
        k: usize,
        config: &RetrievalConfig,
    ) -> Vec<VectorHit> {
        let Some(ann) = &self.ann else {
            return self.search_flat_with(query, k, config);
        };
        if k == 0 {
            return Vec::new();
        }
        let q = query.unit();
        let ef = config.ann_ef_search.max(k);
        let candidates = match &ann.quant {
            Some(quant) => {
                let lut = quant.lut(&q);
                let mut hits = ann.graph.search_hinted(
                    &|x| quant.score(&lut, x as usize),
                    &|x| prefetch_read(quant.row_ptr(x as usize)),
                    ef,
                );
                if config.ann_rescore > 0 {
                    hits.truncate(config.ann_rescore.max(k));
                    for (id, score) in &mut hits {
                        *score = dot(&q, &self.vectors[*id]);
                    }
                }
                hits
            }
            None => {
                let (flat, dim) = (&ann.flat, ann.dim);
                ann.graph.search_hinted(
                    &|x| dot_rows(&q.0, &flat[x as usize * dim..(x as usize + 1) * dim]),
                    &|x| prefetch_read(flat[x as usize * dim..].as_ptr() as *const u8),
                    ef,
                )
            }
        };
        let mut top = TopK::new(k);
        for (id, score) in candidates {
            top.push(id, score);
        }
        top.into_sorted_vec()
    }
}

fn nearest_centroid(centroids: &[Embedding], v: &Embedding) -> usize {
    let mut best = (0usize, f32::NEG_INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let s = dot(c, v);
        if s > best.1 {
            best = (i, s);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::{cosine_similarity, Embedder, HashEmbedder};

    fn store_with(texts: &[&str]) -> (VectorStore, HashEmbedder) {
        let e = HashEmbedder::new();
        let mut s = VectorStore::new();
        for t in texts {
            s.add(e.embed(t));
        }
        (s, e)
    }

    #[test]
    fn flat_search_finds_exact_match_first() {
        let (s, e) = store_with(&[
            "rust is a systems language",
            "cats are small mammals",
            "sql databases store rows",
        ]);
        let hits = s.search_flat(&e.embed("sql databases store rows"), 2);
        assert_eq!(hits[0].0, 2);
        assert!(hits[0].1 > 0.99);
    }

    #[test]
    fn flat_search_ranks_by_similarity() {
        let (s, e) = store_with(&[
            "sales report by category",
            "unrelated quantum physics",
        ]);
        let hits = s.search_flat(&e.embed("category sales numbers"), 2);
        assert_eq!(hits[0].0, 0);
        assert!(hits[0].1 > hits[1].1);
    }

    #[test]
    fn k_larger_than_store_returns_all() {
        let (s, e) = store_with(&["a", "b"]);
        assert_eq!(s.search_flat(&e.embed("a"), 10).len(), 2);
    }

    #[test]
    fn empty_store_returns_nothing() {
        let s = VectorStore::new();
        let e = HashEmbedder::new();
        assert!(s.search_flat(&e.embed("x"), 3).is_empty());
        assert!(s.is_empty());
    }

    #[test]
    fn scores_match_reference_cosine() {
        // The normalized kernel must agree with the reference formula on
        // raw (unnormalized) input vectors.
        let raws = [
            Embedding(vec![3.0, 4.0, 0.0, 1.0]),
            Embedding(vec![-1.0, 2.0, 2.0, 0.5]),
            Embedding(vec![0.0, 0.0, 0.0, 0.0]),
            Embedding(vec![10.0, -3.0, 0.25, 7.0]),
        ];
        let mut s = VectorStore::new();
        for r in &raws {
            s.add(r.clone());
        }
        let q = Embedding(vec![1.0, 2.0, 3.0, 4.0]);
        let hits = s.search_flat(&q, raws.len());
        for (id, score) in hits {
            let want = cosine_similarity(&q, &raws[id]);
            assert!(
                (score - want).abs() < 1e-5,
                "id {id}: kernel {score} vs cosine {want}"
            );
        }
    }

    #[test]
    fn stored_norm_is_kept() {
        let mut s = VectorStore::new();
        s.add(Embedding(vec![3.0, 4.0]));
        s.add(Embedding(vec![0.0, 0.0]));
        assert!((s.stored_norm(0).unwrap() - 5.0).abs() < 1e-6);
        assert_eq!(s.stored_norm(1), Some(0.0));
        assert_eq!(s.stored_norm(2), None);
        // The stored vector itself is unit.
        assert!((s.get(0).unwrap().norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn parallel_flat_matches_sequential() {
        let texts: Vec<String> = (0..300)
            .map(|i| format!("document number {i} about topic {}", i % 7))
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (s, e) = store_with(&refs);
        let q = e.embed("document about topic 3");
        let seq = s.search_flat_with(&q, 10, &RetrievalConfig::SEQUENTIAL);
        for threads in [2, 3, 4, 8] {
            let cfg = RetrievalConfig {
                threads,
                topk_crossover: 0,
                ..RetrievalConfig::default()
            };
            assert_eq!(
                s.search_flat_with(&q, 10, &cfg),
                seq,
                "threads={threads} diverged"
            );
        }
    }

    #[test]
    fn nan_poisoned_vector_does_not_panic() {
        let (mut s, e) = store_with(&["alpha beta", "gamma delta"]);
        s.add(Embedding(vec![f32::NAN; 128]));
        // No panic, bounded output — graceful degradation instead of the
        // old partial_cmp unwrap crash.
        let hits = s.search_flat(&e.embed("alpha"), 2);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn ivf_matches_flat_on_small_corpus_with_full_probe() {
        let texts: Vec<String> = (0..40).map(|i| format!("document number {i} about topic {}", i % 5)).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (mut s, e) = store_with(&refs);
        s.build_partitions(4);
        assert!(s.has_partitions());
        let q = e.embed("document about topic 3");
        let flat = s.search_flat(&q, 5);
        let ivf = s.search_ivf(&q, 5, 4); // probe all partitions = exact
        assert_eq!(flat, ivf);
    }

    #[test]
    fn ivf_with_few_probes_still_finds_near_duplicates() {
        let mut texts: Vec<String> = (0..60).map(|i| format!("filler text number {i}")).collect();
        texts.push("the quarterly sales report for electronics".into());
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (mut s, e) = store_with(&refs);
        s.build_partitions(6);
        let q = e.embed("the quarterly sales report for electronics");
        let hits = s.search_ivf(&q, 1, 1);
        assert_eq!(hits[0].0, 60);
    }

    #[test]
    fn ivf_full_probe_exact_despite_degenerate_partitions() {
        // Regression: many duplicate vectors make k-means collapse, which
        // used to leave empty/degenerate partitions; probing "everything"
        // must still be exactly equivalent to flat search.
        let e = HashEmbedder::new();
        let mut s = VectorStore::new();
        for _ in 0..20 {
            s.add(e.embed("identical duplicated text"));
        }
        for i in 0..5 {
            s.add(e.embed(&format!("unique document number {i}")));
        }
        s.build_partitions(8);
        let q = e.embed("unique document number 3");
        assert_eq!(s.search_ivf(&q, 6, 8), s.search_flat(&q, 6));
        assert_eq!(s.search_ivf(&q, 6, 100), s.search_flat(&q, 6));
    }

    #[test]
    fn ivf_falls_back_when_probe_cannot_fill_k() {
        // With k larger than any single partition, a 1-probe search would
        // return fewer than k hits; the coverage fallback guarantees k.
        let texts: Vec<String> = (0..30).map(|i| format!("text item {i} topic {}", i % 6)).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (mut s, e) = store_with(&refs);
        s.build_partitions(6);
        let q = e.embed("text item topic 2");
        let hits = s.search_ivf(&q, 25, 1);
        assert_eq!(hits.len(), 25);
        assert_eq!(hits, s.search_flat(&q, 25));
    }

    #[test]
    fn add_invalidates_partitions() {
        let (mut s, e) = store_with(&["a", "b", "c"]);
        s.build_partitions(2);
        assert!(s.has_partitions());
        s.add(e.embed("d"));
        assert!(!s.has_partitions());
        // Fallback still works.
        assert_eq!(s.search_ivf(&e.embed("d"), 1, 1)[0].0, 3);
    }

    #[test]
    fn get_and_len() {
        let (s, _) = store_with(&["a", "b"]);
        assert_eq!(s.len(), 2);
        assert!(s.get(1).is_some());
        assert!(s.get(2).is_none());
    }

    #[test]
    fn hnsw_unbuilt_falls_back_to_flat() {
        let (s, e) = store_with(&["alpha beta", "gamma delta", "epsilon zeta"]);
        assert!(!s.has_hnsw());
        assert_eq!(s.hnsw_fingerprint(), None);
        let q = e.embed("gamma delta");
        assert_eq!(s.search_hnsw(&q, 2), s.search_flat(&q, 2));
    }

    #[test]
    fn hnsw_finds_the_exact_top_hit() {
        let texts: Vec<String> = (0..120).map(|i| format!("entry {i} topic {}", i % 11)).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (mut s, e) = store_with(&refs);
        s.build_hnsw(AnnBuildConfig::default());
        assert!(s.has_hnsw());
        let q = e.embed("entry 77 topic 0");
        let flat = s.search_flat(&q, 5);
        let ann = s.search_hnsw(&q, 5);
        assert_eq!(ann[0], flat[0]);
        assert_eq!(ann.len(), 5);
    }

    #[test]
    fn hnsw_survives_incremental_add() {
        let texts: Vec<String> = (0..60).map(|i| format!("entry {i} topic {}", i % 5)).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (mut s, e) = store_with(&refs);
        s.build_hnsw(AnnBuildConfig::default());
        let before = s.hnsw_fingerprint();
        s.add(e.embed("a brand new document about quarterly revenue"));
        assert!(s.has_hnsw(), "add must not drop the ANN index");
        assert_ne!(s.hnsw_fingerprint(), before, "add must grow the graph");
        let q = e.embed("a brand new document about quarterly revenue");
        assert_eq!(s.search_hnsw(&q, 1)[0].0, 60);
    }

    #[test]
    fn quantized_backend_matches_f32_top_hit_and_saves_memory() {
        let texts: Vec<String> = (0..200).map(|i| format!("entry {i} topic {}", i % 13)).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (mut s, e) = store_with(&refs);
        let f32_bytes = s.ann_storage_bytes();
        s.build_hnsw(AnnBuildConfig {
            storage: AnnStorage::Quantized,
            ..AnnBuildConfig::default()
        });
        assert!(
            (s.ann_storage_bytes() as f64) <= 0.30 * f32_bytes as f64,
            "quantized {} vs f32 {f32_bytes}",
            s.ann_storage_bytes()
        );
        let q = e.embed("entry 150 topic 7");
        let flat = s.search_flat(&q, 3);
        let ann = s.search_hnsw(&q, 3);
        assert_eq!(ann[0].0, flat[0].0);
        // Rescored scores are exact.
        assert!((ann[0].1 - flat[0].1).abs() < 1e-6);
    }

    #[test]
    fn hnsw_build_is_deterministic() {
        let texts: Vec<String> = (0..150).map(|i| format!("entry {i} topic {}", i % 7)).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (mut a, e) = store_with(&refs);
        let (mut b, _) = store_with(&refs);
        let cfg = AnnBuildConfig {
            storage: AnnStorage::Quantized,
            ..AnnBuildConfig::default()
        };
        a.build_hnsw(cfg);
        b.build_hnsw(cfg);
        assert_eq!(a.hnsw_fingerprint(), b.hnsw_fingerprint());
        let q = e.embed("entry 42 topic 0");
        assert_eq!(a.search_hnsw(&q, 10), b.search_hnsw(&q, 10));
    }

    #[test]
    fn hnsw_k_zero_and_empty_store() {
        let mut s = VectorStore::new();
        s.build_hnsw(AnnBuildConfig::default());
        let e = HashEmbedder::new();
        assert!(s.search_hnsw(&e.embed("x"), 3).is_empty());
        s.add(e.embed("solo"));
        assert!(s.search_hnsw(&e.embed("solo"), 0).is_empty());
        assert_eq!(s.search_hnsw(&e.embed("solo"), 2).len(), 1);
    }
}
