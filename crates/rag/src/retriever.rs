//! Knowledge retrieval stage: strategy selection and rank fusion.
//!
//! "DB-GPT employs diverse retrieval strategies for prioritizing relevant
//! documents" (§2.3). Four strategies are exposed; `Hybrid` fuses the
//! other three with reciprocal-rank fusion (RRF), the standard way to
//! combine rankings whose raw scores are not comparable.

use serde::{Deserialize, Serialize};

use crate::topk::TopK;

/// RRF smoothing constant (the conventional value).
const RRF_K: f64 = 60.0;

/// Tuning knobs for the sharded retrieval scan.
///
/// Threaded through [`KnowledgeBase`](crate::KnowledgeBase) so existing
/// `retrieve`/`retrieve_reranked` callers pick up the parallel path with
/// no code changes. Parallel and sequential scans return *identical* hit
/// lists (the top-k order is a strict total order, so shard merge order
/// cannot matter); the config only trades wall-clock for threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetrievalConfig {
    /// Worker threads for index scans. `0` means use
    /// [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Stores smaller than this are scanned sequentially — below the
    /// crossover, thread spawn/merge overhead outweighs the shard win.
    pub topk_crossover: usize,
    /// HNSW beam width at search time (`ef_search`). Wider beams raise
    /// recall and cost; the effective beam is always at least `k`.
    pub ann_ef_search: usize,
    /// When the ANN index scores through the scalar-quantized codes, the
    /// top `ann_rescore` candidates are re-scored against the exact f32
    /// vectors before the final top-k cut. `0` disables rescoring (raw
    /// quantized scores are returned). Ignored on the f32 backend.
    pub ann_rescore: usize,
    /// [`KnowledgeBase`](crate::KnowledgeBase) builds the HNSW index
    /// automatically once the chunk count reaches this threshold (further
    /// ingest inserts incrementally). `usize::MAX` disables auto-build.
    pub ann_auto_build: usize,
}

/// Default HNSW search beam width.
const DEFAULT_ANN_EF_SEARCH: usize = 100;
/// Default exact-rescore depth over quantized candidates.
const DEFAULT_ANN_RESCORE: usize = 64;
/// Default chunk count at which the knowledge base auto-builds HNSW.
const DEFAULT_ANN_AUTO_BUILD: usize = 4096;

impl Default for RetrievalConfig {
    fn default() -> Self {
        RetrievalConfig {
            threads: 0,
            topk_crossover: 2048,
            ann_ef_search: DEFAULT_ANN_EF_SEARCH,
            ann_rescore: DEFAULT_ANN_RESCORE,
            ann_auto_build: DEFAULT_ANN_AUTO_BUILD,
        }
    }
}

impl RetrievalConfig {
    /// Always scan on the calling thread, whatever the store size.
    pub const SEQUENTIAL: RetrievalConfig = RetrievalConfig {
        threads: 1,
        topk_crossover: usize::MAX,
        ann_ef_search: DEFAULT_ANN_EF_SEARCH,
        ann_rescore: DEFAULT_ANN_RESCORE,
        ann_auto_build: DEFAULT_ANN_AUTO_BUILD,
    };

    /// Config with an explicit thread count (`0` = auto) and the default
    /// crossover.
    pub fn with_threads(threads: usize) -> Self {
        RetrievalConfig {
            threads,
            ..RetrievalConfig::default()
        }
    }

    /// Number of workers a scan over `n` candidates should use, after
    /// applying the crossover threshold, auto-detection, and the obvious
    /// `1 ≤ workers ≤ n` clamp.
    pub fn effective_threads(&self, n: usize) -> usize {
        if n < self.topk_crossover.max(2) {
            return 1;
        }
        let requested = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        requested.clamp(1, n)
    }
}

/// Which index answers the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RetrievalStrategy {
    /// Cosine similarity over embeddings (exact flat search).
    Vector,
    /// Approximate vector search through IVF partitions.
    VectorApprox,
    /// Approximate vector search through the HNSW graph index (falls back
    /// to the exact flat scan until the index is built).
    VectorAnn,
    /// BM25 over the inverted index.
    Keyword,
    /// Entity-graph expansion.
    Graph,
    /// Reciprocal-rank fusion of Vector + Keyword + Graph.
    Hybrid,
}

impl RetrievalStrategy {
    /// All strategies, for sweeps in benchmarks.
    pub const ALL: &'static [RetrievalStrategy] = &[
        RetrievalStrategy::Vector,
        RetrievalStrategy::VectorApprox,
        RetrievalStrategy::VectorAnn,
        RetrievalStrategy::Keyword,
        RetrievalStrategy::Graph,
        RetrievalStrategy::Hybrid,
    ];

    /// Short display name (benchmark tables).
    pub fn name(&self) -> &'static str {
        match self {
            RetrievalStrategy::Vector => "vector",
            RetrievalStrategy::VectorApprox => "vector-ivf",
            RetrievalStrategy::VectorAnn => "vector-hnsw",
            RetrievalStrategy::Keyword => "keyword",
            RetrievalStrategy::Graph => "graph",
            RetrievalStrategy::Hybrid => "hybrid",
        }
    }
}

/// Fuse several rankings (each a list of ids, best first) with RRF.
/// Returns `(id, fused score)` sorted best-first, ties by id.
pub fn reciprocal_rank_fusion(rankings: &[Vec<usize>], k: usize) -> Vec<(usize, f64)> {
    use std::collections::HashMap;
    let mut scores: HashMap<usize, f64> = HashMap::new();
    for ranking in rankings {
        for (rank, &id) in ranking.iter().enumerate() {
            *scores.entry(id).or_insert(0.0) += 1.0 / (RRF_K + rank as f64 + 1.0);
        }
    }
    let mut top = TopK::new(k);
    for (id, score) in scores {
        top.push(id, score);
    }
    top.into_sorted_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        use std::collections::HashSet;
        let names: HashSet<&str> = RetrievalStrategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), RetrievalStrategy::ALL.len());
    }

    #[test]
    fn rrf_prefers_items_ranked_high_everywhere() {
        let rankings = vec![vec![1, 2, 3], vec![1, 3, 2], vec![2, 1, 3]];
        let fused = reciprocal_rank_fusion(&rankings, 3);
        assert_eq!(fused[0].0, 1);
    }

    #[test]
    fn rrf_consensus_beats_single_top() {
        // Item 9 is #1 in one list; item 5 is #2 in all three.
        let rankings = vec![vec![9, 5], vec![7, 5], vec![8, 5]];
        let fused = reciprocal_rank_fusion(&rankings, 4);
        assert_eq!(fused[0].0, 5);
    }

    #[test]
    fn rrf_truncates_and_breaks_ties_by_id() {
        let rankings = vec![vec![4], vec![2]];
        let fused = reciprocal_rank_fusion(&rankings, 5);
        assert_eq!(fused.len(), 2);
        assert_eq!(fused[0].0, 2); // same score; lower id first
    }

    #[test]
    fn rrf_empty_input() {
        assert!(reciprocal_rank_fusion(&[], 5).is_empty());
        assert!(reciprocal_rank_fusion(&[vec![]], 5).is_empty());
    }

    #[test]
    fn strategy_serde() {
        let s = RetrievalStrategy::Hybrid;
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<RetrievalStrategy>(&json).unwrap(), s);
    }

    #[test]
    fn config_defaults_and_serde() {
        let c = RetrievalConfig::default();
        assert_eq!(c.threads, 0);
        assert!(c.topk_crossover > 0);
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<RetrievalConfig>(&json).unwrap(), c);
    }

    #[test]
    fn effective_threads_respects_crossover_and_clamp() {
        let seq = RetrievalConfig::SEQUENTIAL;
        assert_eq!(seq.effective_threads(1_000_000), 1);

        let four = RetrievalConfig {
            threads: 4,
            topk_crossover: 100,
            ..RetrievalConfig::default()
        };
        assert_eq!(four.effective_threads(50), 1, "below crossover");
        assert_eq!(four.effective_threads(500), 4, "above crossover");
        assert_eq!(
            RetrievalConfig {
                threads: 64,
                topk_crossover: 0,
                ..RetrievalConfig::default()
            }
            .effective_threads(3),
            3,
            "never more workers than candidates"
        );

        // Auto detection always lands on something usable.
        let auto = RetrievalConfig::with_threads(0);
        let t = auto.effective_threads(1_000_000);
        assert!(t >= 1);
    }
}
