//! Knowledge retrieval stage: strategy selection and rank fusion.
//!
//! "DB-GPT employs diverse retrieval strategies for prioritizing relevant
//! documents" (§2.3). Four strategies are exposed; `Hybrid` fuses the
//! other three with reciprocal-rank fusion (RRF), the standard way to
//! combine rankings whose raw scores are not comparable.

use serde::{Deserialize, Serialize};

/// RRF smoothing constant (the conventional value).
const RRF_K: f64 = 60.0;

/// Which index answers the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RetrievalStrategy {
    /// Cosine similarity over embeddings (exact flat search).
    Vector,
    /// Approximate vector search through IVF partitions.
    VectorApprox,
    /// BM25 over the inverted index.
    Keyword,
    /// Entity-graph expansion.
    Graph,
    /// Reciprocal-rank fusion of Vector + Keyword + Graph.
    Hybrid,
}

impl RetrievalStrategy {
    /// All strategies, for sweeps in benchmarks.
    pub const ALL: &'static [RetrievalStrategy] = &[
        RetrievalStrategy::Vector,
        RetrievalStrategy::VectorApprox,
        RetrievalStrategy::Keyword,
        RetrievalStrategy::Graph,
        RetrievalStrategy::Hybrid,
    ];

    /// Short display name (benchmark tables).
    pub fn name(&self) -> &'static str {
        match self {
            RetrievalStrategy::Vector => "vector",
            RetrievalStrategy::VectorApprox => "vector-ivf",
            RetrievalStrategy::Keyword => "keyword",
            RetrievalStrategy::Graph => "graph",
            RetrievalStrategy::Hybrid => "hybrid",
        }
    }
}

/// Fuse several rankings (each a list of ids, best first) with RRF.
/// Returns `(id, fused score)` sorted best-first, ties by id.
pub fn reciprocal_rank_fusion(rankings: &[Vec<usize>], k: usize) -> Vec<(usize, f64)> {
    use std::collections::HashMap;
    let mut scores: HashMap<usize, f64> = HashMap::new();
    for ranking in rankings {
        for (rank, &id) in ranking.iter().enumerate() {
            *scores.entry(id).or_insert(0.0) += 1.0 / (RRF_K + rank as f64 + 1.0);
        }
    }
    let mut fused: Vec<(usize, f64)> = scores.into_iter().collect();
    fused.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    fused.truncate(k);
    fused
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        use std::collections::HashSet;
        let names: HashSet<&str> = RetrievalStrategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), RetrievalStrategy::ALL.len());
    }

    #[test]
    fn rrf_prefers_items_ranked_high_everywhere() {
        let rankings = vec![vec![1, 2, 3], vec![1, 3, 2], vec![2, 1, 3]];
        let fused = reciprocal_rank_fusion(&rankings, 3);
        assert_eq!(fused[0].0, 1);
    }

    #[test]
    fn rrf_consensus_beats_single_top() {
        // Item 9 is #1 in one list; item 5 is #2 in all three.
        let rankings = vec![vec![9, 5], vec![7, 5], vec![8, 5]];
        let fused = reciprocal_rank_fusion(&rankings, 4);
        assert_eq!(fused[0].0, 5);
    }

    #[test]
    fn rrf_truncates_and_breaks_ties_by_id() {
        let rankings = vec![vec![4], vec![2]];
        let fused = reciprocal_rank_fusion(&rankings, 5);
        assert_eq!(fused.len(), 2);
        assert_eq!(fused[0].0, 2); // same score; lower id first
    }

    #[test]
    fn rrf_empty_input() {
        assert!(reciprocal_rank_fusion(&[], 5).is_empty());
        assert!(reciprocal_rank_fusion(&[vec![]], 5).is_empty());
    }

    #[test]
    fn strategy_serde() {
        let s = RetrievalStrategy::Hybrid;
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<RetrievalStrategy>(&json).unwrap(), s);
    }
}
