//! Property/regression tests for the ANN layer (ISSUE 8 satellite):
//! deterministic construction, full-beam exactness, bounded quantization
//! error, and a recall@10 floor across seeded corpora.

use proptest::prelude::*;
use std::sync::Arc;

use dbgpt_rag::hnsw::HnswConfig;
use dbgpt_rag::{
    dot, AnnBuildConfig, AnnStorage, Chunker, ChunkingStrategy, Embedder, Embedding, HashEmbedder,
    KnowledgeBase, QuantizedStore, RetrievalConfig, RetrievalStrategy, VectorStore,
};

/// Seeded synthetic corpus: same shape as the bench generator (topic
/// words + entity anchors) without depending on the bench crate.
fn corpus_texts(n: usize, seed: u64) -> Vec<String> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let topics = ["storage", "query", "serving", "agents", "retrieval"];
    let words = [
        "btree", "compaction", "optimizer", "join", "replica", "routing", "planner", "workflow",
        "embedding", "recall", "checkpoint", "latency", "cardinality", "operator", "ranking",
    ];
    (0..n)
        .map(|i| {
            let t = topics[i % topics.len()];
            let w1 = words[(next() % words.len() as u64) as usize];
            let w2 = words[(next() % words.len() as u64) as usize];
            let e1 = next() % 60;
            format!(
                "Incident {i} from team t{e1} in the {t} subsystem: \
                 {w1} interacts with {w2} under load. The {t} design \
                 tunes {w1} against {w2}."
            )
        })
        .collect()
}

fn store_over(texts: &[String]) -> (VectorStore, HashEmbedder) {
    let e = HashEmbedder::new();
    let mut s = VectorStore::new();
    for t in texts {
        s.add(e.embed(t));
    }
    (s, e)
}

/// Same seed ⇒ byte-identical graph (fingerprint covers levels, entry
/// point and every adjacency list) and identical search results; a
/// different seed reshuffles the level draw and (on any realistic
/// corpus) the structure.
#[test]
fn same_seed_construction_is_byte_identical() {
    let texts = corpus_texts(400, 11);
    for storage in [AnnStorage::F32, AnnStorage::Quantized] {
        let cfg = AnnBuildConfig {
            storage,
            ..AnnBuildConfig::default()
        };
        let (mut a, e) = store_over(&texts);
        let (mut b, _) = store_over(&texts);
        a.build_hnsw(cfg);
        b.build_hnsw(cfg);
        assert_eq!(
            a.hnsw_fingerprint(),
            b.hnsw_fingerprint(),
            "{storage:?}: same seed must build byte-identical indexes"
        );
        let q = e.embed("team t7 incident in the query subsystem");
        assert_eq!(a.search_hnsw(&q, 10), b.search_hnsw(&q, 10));
    }

    let (mut other_seed, _) = store_over(&texts);
    other_seed.build_hnsw(AnnBuildConfig {
        hnsw: HnswConfig {
            seed: 0xDEAD_BEEF,
            ..HnswConfig::default()
        },
        ..AnnBuildConfig::default()
    });
    let (mut base, _) = store_over(&texts);
    base.build_hnsw(AnnBuildConfig::default());
    assert_ne!(base.hnsw_fingerprint(), other_seed.hnsw_fingerprint());
}

/// With the beam opened to the full corpus, layer-0 search visits every
/// reachable node; on these seeded corpora the graph is fully connected,
/// so the ANN result equals the exact flat scan bit for bit (same ids,
/// same f32 scores — both paths are the same dot products).
#[test]
fn full_beam_search_equals_flat_scan() {
    for seed in [3u64, 17, 29] {
        let texts = corpus_texts(250, seed);
        let (mut s, e) = store_over(&texts);
        s.build_hnsw(AnnBuildConfig::default());
        let cfg = RetrievalConfig {
            ann_ef_search: texts.len(),
            ..RetrievalConfig::default()
        };
        for probe in ["btree compaction under load", "team t3 serving replica routing"] {
            let q = e.embed(probe);
            assert_eq!(
                s.search_hnsw_with(&q, 10, &cfg),
                s.search_flat_with(&q, 10, &cfg),
                "seed {seed}, probe {probe:?}"
            );
        }
    }
}

/// recall@10 ≥ 0.95 against the exact flat scan across three seeded
/// corpora, on both storage backends (quantized with exact rescore).
#[test]
fn recall_at_10_floor_across_seeded_corpora() {
    for seed in [5u64, 23, 71] {
        let texts = corpus_texts(800, seed);
        for storage in [AnnStorage::F32, AnnStorage::Quantized] {
            let (mut s, e) = store_over(&texts);
            s.build_hnsw(AnnBuildConfig {
                storage,
                ..AnnBuildConfig::default()
            });
            let cfg = RetrievalConfig::default();
            let mut overlap = 0usize;
            let mut total = 0usize;
            for i in 0..25 {
                let q = e.embed(&format!(
                    "what did team t{} report about the {} subsystem?",
                    i * 2,
                    ["storage", "query", "serving"][i % 3]
                ));
                let exact: Vec<usize> =
                    s.search_flat_with(&q, 10, &cfg).into_iter().map(|(id, _)| id).collect();
                let ann: Vec<usize> =
                    s.search_hnsw_with(&q, 10, &cfg).into_iter().map(|(id, _)| id).collect();
                overlap += ann.iter().filter(|id| exact.contains(id)).count();
                total += exact.len();
            }
            let recall = overlap as f64 / total as f64;
            assert!(
                recall >= 0.95,
                "seed {seed} {storage:?}: recall@10 = {recall:.3} < 0.95"
            );
        }
    }
}

/// The knowledge-base fingerprint must not see ANN index state, whatever
/// the ingest order or index timing (satellite: replicas converge when
/// one built an index and the other did not).
#[test]
fn kb_fingerprint_is_index_blind() {
    let texts = corpus_texts(30, 9);
    let build = |index_at: Option<usize>| {
        let mut kb = KnowledgeBase::new(
            Chunker::new(ChunkingStrategy::Paragraph { max_tokens: 64 }),
            Arc::new(HashEmbedder::new()),
        );
        for (i, t) in texts.iter().enumerate() {
            kb.add_text(&format!("doc-{i}"), t);
            if index_at == Some(i) {
                kb.build_hnsw_index(AnnBuildConfig::default());
                kb.build_ann_index();
            }
        }
        kb
    };
    let never = build(None);
    let early = build(Some(4));
    let late = build(Some(29));
    assert_eq!(never.fingerprint(), early.fingerprint());
    assert_eq!(never.fingerprint(), late.fingerprint());
    assert!(early.has_hnsw_index() && !never.has_hnsw_index());
    // VectorAnn answers on all three (index or flat fallback).
    for kb in [&never, &early, &late] {
        assert!(!kb
            .retrieve("incident in the storage subsystem", 3, RetrievalStrategy::VectorAnn)
            .is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Quantize → dequantize error is bounded by half a grid step per
    /// dimension, for arbitrary finite vectors.
    #[test]
    fn quantization_error_is_bounded(
        rows in proptest::collection::vec(
            proptest::collection::vec(-100.0f32..100.0, 16), 2..20)
    ) {
        let vectors: Vec<Embedding> = rows.into_iter().map(Embedding).collect();
        let q = QuantizedStore::fit(&vectors);
        for (i, v) in vectors.iter().enumerate() {
            let back = q.decode(i).expect("in range");
            for (d, (&a, &b)) in v.0.iter().zip(&back.0).enumerate() {
                prop_assert!(
                    (a - b).abs() <= q.max_error(d) + 1e-4,
                    "vector {} dim {}: {} vs {} (max err {})",
                    i, d, a, b, q.max_error(d)
                );
            }
        }
    }

    /// The LUT scorer equals the dot product against the dequantized
    /// vector (the LUT is exactly that sum, precomputed per dimension).
    #[test]
    fn lut_scores_match_dequantized_dot(
        rows in proptest::collection::vec(
            proptest::collection::vec(-10.0f32..10.0, 8), 2..12),
        probe in proptest::collection::vec(-10.0f32..10.0, 8)
    ) {
        let vectors: Vec<Embedding> = rows.into_iter().map(Embedding).collect();
        let q = QuantizedStore::fit(&vectors);
        let query = Embedding(probe).unit();
        let lut = q.lut(&query);
        for i in 0..q.len() {
            let fast = q.score(&lut, i);
            let slow = dot(&query, &q.decode(i).expect("in range"));
            prop_assert!((fast - slow).abs() < 1e-3, "vector {}: {} vs {}", i, fast, slow);
        }
    }
}
