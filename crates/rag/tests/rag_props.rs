//! Property tests for the RAG stack's structural invariants.

use proptest::prelude::*;
use std::sync::Arc;

use dbgpt_rag::{
    cosine_similarity, Chunker, ChunkingStrategy, Document, Embedding, HashEmbedder,
    InvertedIndex, KnowledgeBase, RetrievalConfig, RetrievalStrategy, VectorStore,
};

fn text_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z]{1,8}", 1..60).prop_map(|words| {
        // Group into sentences of ~6 words.
        words
            .chunks(6)
            .map(|c| c.join(" ") + ".")
            .collect::<Vec<_>>()
            .join(" ")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every chunk's text is a substring of the source document, chunks
    /// are non-empty, and indices are sequential.
    #[test]
    fn paragraph_chunks_are_faithful(text in text_strategy(), max_tokens in 8usize..40) {
        let doc = Document::from_text("d", &text);
        let chunks = Chunker::new(ChunkingStrategy::Paragraph { max_tokens }).chunk(&doc);
        for (i, c) in chunks.iter().enumerate() {
            prop_assert_eq!(c.index, i);
            prop_assert!(!c.text.trim().is_empty());
            prop_assert!(text.contains(c.text.trim()), "chunk not in source: {:?}", c.text);
        }
    }

    /// Window chunking covers the whole document: every word of the source
    /// appears in at least one chunk.
    #[test]
    fn window_chunks_cover_everything(text in text_strategy(), size in 6usize..30, overlap in 0usize..5) {
        let doc = Document::from_text("d", &text);
        let chunks = Chunker::new(ChunkingStrategy::Window { size, overlap }).chunk(&doc);
        let all: String = chunks.iter().map(|c| c.text.as_str()).collect::<Vec<_>>().join(" ");
        for word in text.split_whitespace() {
            let w = word.trim_matches('.');
            if !w.is_empty() {
                prop_assert!(all.contains(w), "word {w:?} missing from windows");
            }
        }
    }

    /// BM25 self-retrieval: querying with a document's own text ranks that
    /// document first.
    #[test]
    fn bm25_self_retrieval(texts in proptest::collection::vec(text_strategy(), 2..8), pick in 0usize..8) {
        let mut idx = InvertedIndex::new();
        for t in &texts {
            idx.add(t);
        }
        let target = pick % texts.len();
        // Skip degenerate cases where the target is a subset of another doc.
        let hits = idx.search(&texts[target], texts.len());
        prop_assert!(!hits.is_empty());
        // The target must appear among the hits with a positive score.
        prop_assert!(hits.iter().any(|(i, s)| *i == target && *s > 0.0));
    }

    /// Knowledge-base retrieval never returns more than k results, never
    /// duplicates a chunk, and every strategy is total.
    #[test]
    fn retrieval_is_bounded_and_unique(
        texts in proptest::collection::vec(text_strategy(), 1..6),
        query in text_strategy(),
        k in 1usize..6,
    ) {
        let mut kb = KnowledgeBase::new(
            Chunker::new(ChunkingStrategy::Paragraph { max_tokens: 32 }),
            Arc::new(HashEmbedder::new()),
        );
        for (i, t) in texts.iter().enumerate() {
            kb.add_text(&format!("d{i}"), t);
        }
        kb.build_ann_index();
        for &strategy in RetrievalStrategy::ALL {
            let hits = kb.retrieve(&query, k, strategy);
            prop_assert!(hits.len() <= k, "{}", strategy.name());
            let mut keys: Vec<(String, usize)> = hits
                .iter()
                .map(|h| (h.chunk.document_id.clone(), h.chunk.index))
                .collect();
            keys.sort();
            keys.dedup();
            prop_assert_eq!(keys.len(), hits.len(), "duplicates from {}", strategy.name());
        }
        // Reranked retrieval obeys the same bound.
        let hits = kb.retrieve_reranked(&query, k, RetrievalStrategy::Hybrid);
        prop_assert!(hits.len() <= k);
    }

    /// The parallel sharded top-k scan returns *exactly* the hit list of
    /// the sequential scan, for any store, query, k and thread count —
    /// the invariant that lets `RetrievalConfig` change wall-clock
    /// without changing results.
    #[test]
    fn parallel_topk_equals_sequential(
        vectors in proptest::collection::vec(
            proptest::collection::vec(-1.0f32..1.0, 12), 1..80),
        query in proptest::collection::vec(-1.0f32..1.0, 12),
        k in 1usize..12,
        threads in 2usize..9,
    ) {
        let mut store = VectorStore::new();
        for v in &vectors {
            store.add(Embedding(v.clone()));
        }
        let q = Embedding(query);
        let sequential = store.search_flat_with(&q, k, &RetrievalConfig::SEQUENTIAL);
        let parallel = store.search_flat_with(
            &q,
            k,
            &RetrievalConfig { threads, topk_crossover: 0, ..RetrievalConfig::default() },
        );
        prop_assert_eq!(sequential, parallel, "threads={}", threads);
    }

    /// The normalized-vector kernel (unit vectors + bare dot product)
    /// scores every candidate within 1e-5 of the reference
    /// `cosine_similarity` formula on the raw vectors.
    #[test]
    fn normalized_kernel_matches_cosine(
        vectors in proptest::collection::vec(
            proptest::collection::vec(-5.0f32..5.0, 10), 1..40),
        query in proptest::collection::vec(-5.0f32..5.0, 10),
    ) {
        let mut store = VectorStore::new();
        for v in &vectors {
            store.add(Embedding(v.clone()));
        }
        let q = Embedding(query);
        // k = n: every stored vector comes back scored.
        let hits = store.search_flat_with(&q, vectors.len(), &RetrievalConfig::SEQUENTIAL);
        prop_assert_eq!(hits.len(), vectors.len());
        for (id, score) in hits {
            let reference = cosine_similarity(&q, &Embedding(vectors[id].clone()));
            prop_assert!(
                (score - reference).abs() < 1e-5,
                "id {}: kernel {} vs cosine {}",
                id, score, reference
            );
        }
    }
}
