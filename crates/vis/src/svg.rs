//! SVG chart rendering — the web front-end's format.

use std::f64::consts::PI;

use crate::chart::{ChartSpec, ChartType};

/// Canvas size.
const W: f64 = 400.0;
const H: f64 = 300.0;
/// Categorical palette (cycled).
const PALETTE: &[&str] = &[
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
];

/// Render a spec as a standalone SVG document.
pub fn render(spec: &ChartSpec) -> String {
    let mut out = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\" \
         viewBox=\"0 0 {W} {H}\">\n<title>{}</title>\n",
        escape(&spec.title)
    );
    out.push_str(&format!(
        "<text x=\"{}\" y=\"18\" text-anchor=\"middle\" font-size=\"14\">{}</text>\n",
        W / 2.0,
        escape(&spec.title)
    ));
    if spec.is_empty() {
        out.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">no data</text>\n",
            W / 2.0,
            H / 2.0
        ));
        out.push_str("</svg>\n");
        return out;
    }
    match spec.chart_type {
        ChartType::Donut => out.push_str(&render_ring(spec, 0.55)),
        ChartType::Pie => out.push_str(&render_ring(spec, 0.0)),
        ChartType::Bar => out.push_str(&render_bars(spec)),
        ChartType::Area => out.push_str(&render_path(spec, true)),
        ChartType::Line | ChartType::Scatter => out.push_str(&render_path(spec, false)),
        ChartType::Table => out.push_str(&render_text_table(spec)),
    }
    out.push_str("</svg>\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

fn color(i: usize) -> &'static str {
    PALETTE[i % PALETTE.len()]
}

/// Pie/donut as arc path segments; `inner` is the hole ratio (0 = pie).
fn render_ring(spec: &ChartSpec, inner: f64) -> String {
    let cx = W / 2.0;
    let cy = H / 2.0 + 10.0;
    let r = 100.0;
    let total = spec.total().max(f64::MIN_POSITIVE);
    let mut out = String::new();
    let mut angle = -PI / 2.0;
    for (i, p) in spec.points.iter().enumerate() {
        // A full-circle slice would collapse the arc (start == end); cap
        // just under 2π so a single-slice donut still draws.
        let sweep = ((p.value / total) * 2.0 * PI).min(2.0 * PI - 1e-4);
        let a0 = angle;
        let a1 = angle + sweep;
        angle = a1;
        let (x0, y0) = (cx + r * a0.cos(), cy + r * a0.sin());
        let (x1, y1) = (cx + r * a1.cos(), cy + r * a1.sin());
        let large = if sweep > PI { 1 } else { 0 };
        if inner > 0.0 {
            let ri = r * inner;
            let (ix0, iy0) = (cx + ri * a0.cos(), cy + ri * a0.sin());
            let (ix1, iy1) = (cx + ri * a1.cos(), cy + ri * a1.sin());
            out.push_str(&format!(
                "<path d=\"M {x0:.2} {y0:.2} A {r} {r} 0 {large} 1 {x1:.2} {y1:.2} \
                 L {ix1:.2} {iy1:.2} A {ri} {ri} 0 {large} 0 {ix0:.2} {iy0:.2} Z\" \
                 fill=\"{}\"><title>{}: {}</title></path>\n",
                color(i),
                escape(&p.label),
                p.value
            ));
        } else {
            out.push_str(&format!(
                "<path d=\"M {cx} {cy} L {x0:.2} {y0:.2} A {r} {r} 0 {large} 1 {x1:.2} {y1:.2} Z\" \
                 fill=\"{}\"><title>{}: {}</title></path>\n",
                color(i),
                escape(&p.label),
                p.value
            ));
        }
    }
    // Legend.
    for (i, p) in spec.points.iter().enumerate() {
        let y = 40.0 + i as f64 * 16.0;
        out.push_str(&format!(
            "<rect x=\"8\" y=\"{}\" width=\"10\" height=\"10\" fill=\"{}\"/>\
             <text x=\"22\" y=\"{}\" font-size=\"10\">{}</text>\n",
            y - 9.0,
            color(i),
            y,
            escape(&p.label)
        ));
    }
    out
}

fn render_bars(spec: &ChartSpec) -> String {
    let max = spec.max_value().max(f64::MIN_POSITIVE);
    let n = spec.points.len() as f64;
    let plot_h = H - 80.0;
    let bar_w = (W - 60.0) / n * 0.7;
    let gap = (W - 60.0) / n;
    let mut out = String::new();
    for (i, p) in spec.points.iter().enumerate() {
        let h = (p.value / max) * plot_h;
        let x = 40.0 + i as f64 * gap + gap * 0.15;
        let y = 40.0 + (plot_h - h);
        out.push_str(&format!(
            "<rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{bar_w:.2}\" height=\"{h:.2}\" \
             fill=\"{}\"><title>{}: {}</title></rect>\n",
            color(i),
            escape(&p.label),
            p.value
        ));
        out.push_str(&format!(
            "<text x=\"{:.2}\" y=\"{}\" text-anchor=\"middle\" font-size=\"10\">{}</text>\n",
            x + bar_w / 2.0,
            H - 24.0,
            escape(&p.label)
        ));
    }
    out
}

fn render_path(spec: &ChartSpec, filled: bool) -> String {
    let max = spec.max_value().max(f64::MIN_POSITIVE);
    let n = spec.points.len();
    let plot_h = H - 80.0;
    let step = if n > 1 { (W - 80.0) / (n - 1) as f64 } else { 0.0 };
    let coords: Vec<(f64, f64)> = spec
        .points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let x = 40.0 + i as f64 * step;
            let y = 40.0 + plot_h * (1.0 - p.value / max);
            (x, y)
        })
        .collect();
    let mut out = String::new();
    if spec.chart_type == ChartType::Scatter {
        for (i, &(x, y)) in coords.iter().enumerate() {
            out.push_str(&format!(
                "<circle cx=\"{x:.2}\" cy=\"{y:.2}\" r=\"4\" fill=\"{}\"/>\n",
                color(i)
            ));
        }
    } else {
        let mut d = String::new();
        for (i, &(x, y)) in coords.iter().enumerate() {
            d.push_str(&format!("{}{x:.2} {y:.2} ", if i == 0 { "M " } else { "L " }));
        }
        if filled {
            let base = 40.0 + plot_h;
            d.push_str(&format!(
                "L {:.2} {base:.2} L {:.2} {base:.2} Z",
                coords.last().unwrap().0,
                coords[0].0
            ));
            out.push_str(&format!(
                "<path d=\"{d}\" fill=\"{}\" fill-opacity=\"0.5\" stroke=\"{}\"/>\n",
                color(0),
                color(0)
            ));
        } else {
            out.push_str(&format!(
                "<path d=\"{d}\" fill=\"none\" stroke=\"{}\" stroke-width=\"2\"/>\n",
                color(0)
            ));
        }
    }
    // X labels.
    for (p, &(x, _)) in spec.points.iter().zip(&coords) {
        out.push_str(&format!(
            "<text x=\"{x:.2}\" y=\"{}\" text-anchor=\"middle\" font-size=\"10\">{}</text>\n",
            H - 24.0,
            escape(&p.label)
        ));
    }
    out
}

fn render_text_table(spec: &ChartSpec) -> String {
    let mut out = String::new();
    for (i, p) in spec.points.iter().enumerate() {
        out.push_str(&format!(
            "<text x=\"40\" y=\"{}\" font-size=\"12\">{}: {}</text>\n",
            50 + i * 18,
            escape(&p.label),
            p.value
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::ChartSpec;

    fn spec(t: ChartType) -> ChartSpec {
        ChartSpec::new(t, "Sales & <charts>")
            .with_point("books", 25.0)
            .with_point("tech", 75.0)
            .with_point("food", 50.0)
    }

    #[test]
    fn document_shape() {
        let s = render(&spec(ChartType::Bar));
        assert!(s.starts_with("<svg xmlns="));
        assert!(s.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn title_is_escaped() {
        let s = render(&spec(ChartType::Bar));
        assert!(s.contains("Sales &amp; &lt;charts&gt;"));
        assert!(!s.contains("<charts>"));
    }

    #[test]
    fn donut_has_ring_paths_and_legend() {
        let s = render(&spec(ChartType::Donut));
        assert_eq!(s.matches("<path").count(), 3);
        assert!(s.contains("A 55")); // inner radius arcs (100 * 0.55)
        assert_eq!(s.matches("<rect").count(), 3); // legend swatches
    }

    #[test]
    fn pie_paths_reach_center() {
        let s = render(&spec(ChartType::Pie));
        assert!(s.contains(&format!("M {} {}", W / 2.0, H / 2.0 + 10.0)));
    }

    #[test]
    fn bars_one_rect_per_point_plus_labels() {
        let s = render(&spec(ChartType::Bar));
        assert_eq!(s.matches("<rect").count(), 3);
        assert!(s.contains(">books</text>"));
    }

    #[test]
    fn area_is_closed_and_filled() {
        let s = render(&spec(ChartType::Area));
        assert!(s.contains("Z\" fill="));
        assert!(s.contains("fill-opacity"));
    }

    #[test]
    fn line_is_open_stroke() {
        let s = render(&spec(ChartType::Line));
        assert!(s.contains("fill=\"none\""));
        assert!(s.contains("stroke-width=\"2\""));
    }

    #[test]
    fn scatter_uses_circles() {
        let s = render(&spec(ChartType::Scatter));
        assert_eq!(s.matches("<circle").count(), 3);
    }

    #[test]
    fn table_renders_rows_as_text() {
        let s = render(&spec(ChartType::Table));
        assert!(s.contains("books: 25"));
    }

    #[test]
    fn empty_spec_says_no_data() {
        let s = render(&ChartSpec::new(ChartType::Donut, "t"));
        assert!(s.contains("no data"));
    }

    #[test]
    fn tooltips_carry_values() {
        let s = render(&spec(ChartType::Bar));
        assert!(s.contains("<title>tech: 75</title>"));
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::chart::{ChartSpec, ChartType};

    #[test]
    fn single_slice_donut_still_draws_an_arc() {
        let spec = ChartSpec::new(ChartType::Donut, "one").with_point("all", 10.0);
        let s = render(&spec);
        // The path must span the circle, not collapse to a point.
        assert_eq!(s.matches("<path").count(), 1);
        let d_start = s.find("d=\"M ").unwrap();
        let d = &s[d_start..s[d_start..].find('>').unwrap() + d_start];
        assert!(d.contains("A 100"), "{d}");
        // Start and end points differ.
        let coords: Vec<&str> = d.split_whitespace().collect();
        assert!(coords.len() > 8);
    }

    #[test]
    fn zero_valued_points_render_without_panic() {
        let spec = ChartSpec::new(ChartType::Pie, "zeros")
            .with_point("a", 0.0)
            .with_point("b", 0.0);
        let s = render(&spec);
        assert!(s.contains("</svg>"));
        let bar = spec.switch_type(ChartType::Bar);
        assert!(render(&bar).contains("</svg>"));
        let area = spec.switch_type(ChartType::Area);
        assert!(render(&area).contains("</svg>"));
    }

    #[test]
    fn single_point_line_and_area_render() {
        for t in [ChartType::Line, ChartType::Area, ChartType::Scatter] {
            let spec = ChartSpec::new(t, "single").with_point("only", 5.0);
            let s = render(&spec);
            assert!(s.contains("</svg>"), "{t:?}");
        }
    }
}
