//! Terminal chart rendering.
//!
//! The CLI demo's "front-end": bar/area/line charts as text, donut/pie as
//! a share breakdown with a unicode gauge. Deterministic layout, so tests
//! can assert on output.

use crate::chart::{ChartSpec, ChartType};

/// Width of the plot area in characters.
const PLOT_WIDTH: usize = 40;
/// Height of the area/line plot grid.
const PLOT_HEIGHT: usize = 8;

/// Render a spec as terminal text.
pub fn render(spec: &ChartSpec) -> String {
    let mut out = format!("== {} [{}] ==\n", spec.title, spec.chart_type.name());
    if spec.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    match spec.chart_type {
        ChartType::Donut | ChartType::Pie => out.push_str(&render_share(spec)),
        ChartType::Bar => out.push_str(&render_bars(spec)),
        ChartType::Area | ChartType::Line | ChartType::Scatter => out.push_str(&render_plot(spec)),
        ChartType::Table => out.push_str(&render_table(spec)),
    }
    out
}

fn label_width(spec: &ChartSpec) -> usize {
    spec.points
        .iter()
        .map(|p| p.label.chars().count())
        .max()
        .unwrap_or(0)
}

/// Donut/pie: per-slice share with a filled gauge.
fn render_share(spec: &ChartSpec) -> String {
    let total = spec.total();
    let w = label_width(spec);
    let mut out = String::new();
    for p in &spec.points {
        let share = if total > 0.0 { p.value / total } else { 0.0 };
        let filled = (share * 20.0).round() as usize;
        out.push_str(&format!(
            "{:<w$}  {:>6.1}%  [{}{}] {}\n",
            p.label,
            share * 100.0,
            "●".repeat(filled),
            "○".repeat(20usize.saturating_sub(filled)),
            p.value,
            w = w,
        ));
    }
    out
}

/// Horizontal bars scaled to the max value.
fn render_bars(spec: &ChartSpec) -> String {
    let max = spec.max_value().max(f64::MIN_POSITIVE);
    let w = label_width(spec);
    let mut out = String::new();
    for p in &spec.points {
        let len = ((p.value / max) * PLOT_WIDTH as f64).round().max(0.0) as usize;
        out.push_str(&format!(
            "{:<w$} |{} {}\n",
            p.label,
            "█".repeat(len),
            p.value,
            w = w,
        ));
    }
    out
}

/// A column-per-point plot grid for area/line/scatter.
fn render_plot(spec: &ChartSpec) -> String {
    let max = spec.max_value().max(f64::MIN_POSITIVE);
    let n = spec.points.len();
    let col_w = 3usize;
    let mut grid = vec![vec![' '; n * col_w]; PLOT_HEIGHT];
    for (i, p) in spec.points.iter().enumerate() {
        let h = ((p.value / max) * PLOT_HEIGHT as f64).round() as usize;
        let h = h.min(PLOT_HEIGHT);
        let x = i * col_w + 1;
        for y in 0..h {
            let row = PLOT_HEIGHT - 1 - y;
            let filled = matches!(spec.chart_type, ChartType::Area);
            if filled || y == h.saturating_sub(1) {
                grid[row][x] = if filled { '▒' } else { '•' };
            }
        }
        if h > 0 && matches!(spec.chart_type, ChartType::Area) {
            grid[PLOT_HEIGHT - h][x] = '▄';
        }
    }
    let mut out = String::new();
    for row in grid {
        out.push('|');
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(n * col_w));
    out.push('\n');
    // X labels (first 2 chars each).
    out.push(' ');
    for p in &spec.points {
        let short: String = p.label.chars().take(col_w - 1).collect();
        out.push_str(&format!("{short:<col_w$}"));
    }
    out.push('\n');
    out
}

/// Plain two-column table.
fn render_table(spec: &ChartSpec) -> String {
    let w = label_width(spec).max(5);
    let mut out = format!("{:<w$} | {}\n", "label", spec.value_label, w = w);
    out.push_str(&format!("{}-+------\n", "-".repeat(w)));
    for p in &spec.points {
        out.push_str(&format!("{:<w$} | {}\n", p.label, p.value, w = w));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::ChartSpec;

    fn spec(t: ChartType) -> ChartSpec {
        ChartSpec::new(t, "Sales by category")
            .with_point("books", 25.0)
            .with_point("tech", 75.0)
    }

    #[test]
    fn header_names_type_and_title() {
        let s = render(&spec(ChartType::Bar));
        assert!(s.starts_with("== Sales by category [bar] =="));
    }

    #[test]
    fn donut_shows_percentages() {
        let s = render(&spec(ChartType::Donut));
        assert!(s.contains("25.0%"), "{s}");
        assert!(s.contains("75.0%"), "{s}");
        assert!(s.contains('●'));
    }

    #[test]
    fn bars_scale_to_max() {
        let s = render(&spec(ChartType::Bar));
        let books_line = s.lines().find(|l| l.starts_with("books")).unwrap();
        let tech_line = s.lines().find(|l| l.starts_with("tech")).unwrap();
        let count = |l: &str| l.chars().filter(|&c| c == '█').count();
        assert!(count(tech_line) > count(books_line) * 2);
        assert_eq!(count(tech_line), 40); // max fills the plot width
    }

    #[test]
    fn area_plot_has_axis_and_labels() {
        let s = render(&spec(ChartType::Area));
        assert!(s.contains('+'));
        assert!(s.contains("bo")); // truncated label
        assert!(s.contains('▒'));
    }

    #[test]
    fn line_plot_marks_points() {
        let s = render(&spec(ChartType::Line));
        assert!(s.contains('•'));
        assert!(!s.contains('▒'));
    }

    #[test]
    fn table_lists_values() {
        let s = render(&spec(ChartType::Table));
        assert!(s.contains("books | 25"));
    }

    #[test]
    fn empty_spec_renders_placeholder() {
        let s = render(&ChartSpec::new(ChartType::Bar, "t"));
        assert!(s.contains("(no data)"));
    }

    #[test]
    fn deterministic() {
        assert_eq!(render(&spec(ChartType::Donut)), render(&spec(ChartType::Donut)));
    }
}
