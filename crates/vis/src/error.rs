//! Error type for the visualization layer.

use std::fmt;

/// Errors building chart specs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VisError {
    /// The query result has no rows to chart.
    EmptyResult,
    /// No numeric column could be found for values.
    NoValueColumn,
    /// An explicitly named column does not exist in the result.
    ColumnNotFound(String),
}

impl fmt::Display for VisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VisError::EmptyResult => write!(f, "query result has no rows to chart"),
            VisError::NoValueColumn => write!(f, "no numeric column available for chart values"),
            VisError::ColumnNotFound(c) => write!(f, "column not found in result: {c}"),
        }
    }
}

impl std::error::Error for VisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(VisError::EmptyResult.to_string().contains("no rows"));
        assert!(VisError::ColumnNotFound("x".into()).to_string().contains('x'));
    }
}
