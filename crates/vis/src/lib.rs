#![warn(missing_docs)]

//! # dbgpt-vis — the visualization layer
//!
//! "The visualization layer aims to display the answers returned by DB-GPT
//! to the users with elegance. … When the tasks necessitate the generation
//! of charts, DB-GPT renders these charts within its front-end,
//! facilitating user interaction with the displayed charts" (paper §2.5).
//!
//! - [`chart`] — the [`ChartSpec`] contract between chart-generating
//!   agents and any front-end: chart type, title, labelled numeric series.
//!   Specs are JSON-serializable and support *chart-type switching* (demo
//!   area ⑥ of Fig. 3).
//! - [`transform`] — build a spec from a SQL [`dbgpt_sqlengine::QueryResult`]
//!   (label column + value column inference).
//! - [`ascii`] — terminal renderers (the "front-end" of a CLI demo).
//! - [`svg`] — SVG renderers for the donut/pie, bar, area and line forms.
//!
//! ## Quickstart
//!
//! ```
//! use dbgpt_vis::{ChartSpec, ChartType};
//!
//! let spec = ChartSpec::new(ChartType::Donut, "Sales by category")
//!     .with_point("books", 40.0)
//!     .with_point("tech", 60.0);
//! let svg = dbgpt_vis::svg::render(&spec);
//! assert!(svg.starts_with("<svg"));
//! let text = dbgpt_vis::ascii::render(&spec);
//! assert!(text.contains("books"));
//! ```

pub mod ascii;
pub mod chart;
pub mod error;
pub mod svg;
pub mod transform;

pub use chart::{ChartSpec, ChartType, DataPoint};
pub use error::VisError;
pub use transform::spec_from_result;
