//! Query results → chart specs.
//!
//! Chart-generating agents run SQL and chart the result. The default
//! inference: the first TEXT column provides labels, the first numeric
//! column (preferring one that is not an id) provides values.

use dbgpt_sqlengine::{DataType, QueryResult, Value};

use crate::chart::{ChartSpec, ChartType};
use crate::error::VisError;

/// Build a spec from a query result with inferred columns.
pub fn spec_from_result(
    result: &QueryResult,
    chart_type: ChartType,
    title: &str,
) -> Result<ChartSpec, VisError> {
    if result.rows.is_empty() {
        return Err(VisError::EmptyResult);
    }
    let cols = result.schema.columns();
    // Label column: first TEXT column, else synthesize row numbers.
    let label_idx = cols.iter().position(|c| c.data_type == DataType::Text);
    // Value column: first numeric, preferring non-id names.
    let numeric = |i: &usize| {
        matches!(
            cols[*i].data_type,
            DataType::Int | DataType::Float
        )
    };
    // A column is an id only when named exactly `id` or suffixed `_id` —
    // a bare `ends_with("id")` would disqualify `paid`, `humid`, `valid`.
    let is_id = |i: &usize| {
        let name = &cols[*i].name;
        name == "id" || name.ends_with("_id")
    };
    let value_idx = (0..cols.len())
        .filter(numeric)
        .find(|i| !is_id(i))
        .or_else(|| (0..cols.len()).find(numeric))
        .ok_or(VisError::NoValueColumn)?;

    let mut spec = ChartSpec::new(chart_type, title).with_value_label(cols[value_idx].name.clone());
    for (ri, row) in result.rows.iter().enumerate() {
        // A NULL value is unknown, not zero: charting it as 0.0 invents a
        // data point. Skip the row instead.
        let Some(value) = row[value_idx].as_f64() else {
            continue;
        };
        let label = match label_idx {
            Some(li) => match &row[li] {
                Value::Null => "unknown".to_string(),
                other => other.to_string(),
            },
            None => format!("#{}", ri + 1),
        };
        spec.points.push(crate::chart::DataPoint { label, value });
    }
    Ok(spec)
}

/// Build a spec from explicitly named label/value columns.
pub fn spec_from_columns(
    result: &QueryResult,
    chart_type: ChartType,
    title: &str,
    label_col: &str,
    value_col: &str,
) -> Result<ChartSpec, VisError> {
    if result.rows.is_empty() {
        return Err(VisError::EmptyResult);
    }
    let find = |name: &str| {
        result
            .schema
            .columns()
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| VisError::ColumnNotFound(name.to_string()))
    };
    let li = find(label_col)?;
    let vi = find(value_col)?;
    let mut spec = ChartSpec::new(chart_type, title).with_value_label(value_col);
    for row in &result.rows {
        spec.points.push(crate::chart::DataPoint {
            label: row[li].to_string(),
            value: row[vi].as_f64().unwrap_or(0.0),
        });
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgpt_sqlengine::Engine;

    fn result() -> QueryResult {
        let mut e = Engine::new();
        e.execute("CREATE TABLE s (id INT, category TEXT, total FLOAT)").unwrap();
        e.execute("INSERT INTO s VALUES (1, 'books', 40.0), (2, 'tech', 60.0)").unwrap();
        e.execute("SELECT id, category, total FROM s ORDER BY id").unwrap()
    }

    #[test]
    fn infers_label_and_value_columns() {
        let spec = spec_from_result(&result(), ChartType::Donut, "Sales").unwrap();
        assert_eq!(spec.points.len(), 2);
        assert_eq!(spec.points[0].label, "books");
        assert_eq!(spec.points[1].value, 60.0);
        // Skipped the id column even though it is numeric and first.
        assert_eq!(spec.value_label, "total");
    }

    #[test]
    fn numeric_only_result_gets_row_labels() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE n (v INT)").unwrap();
        e.execute("INSERT INTO n VALUES (5), (9)").unwrap();
        let r = e.execute("SELECT v FROM n").unwrap();
        let spec = spec_from_result(&r, ChartType::Bar, "t").unwrap();
        assert_eq!(spec.points[0].label, "#1");
        assert_eq!(spec.points[1].value, 9.0);
    }

    #[test]
    fn empty_result_rejected() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE x (a INT)").unwrap();
        let r = e.execute("SELECT a FROM x").unwrap();
        assert_eq!(
            spec_from_result(&r, ChartType::Bar, "t"),
            Err(VisError::EmptyResult)
        );
    }

    #[test]
    fn no_numeric_column_rejected() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (name TEXT)").unwrap();
        e.execute("INSERT INTO t VALUES ('a')").unwrap();
        let r = e.execute("SELECT name FROM t").unwrap();
        assert_eq!(
            spec_from_result(&r, ChartType::Bar, "t"),
            Err(VisError::NoValueColumn)
        );
    }

    #[test]
    fn explicit_columns() {
        let spec =
            spec_from_columns(&result(), ChartType::Bar, "t", "category", "id").unwrap();
        assert_eq!(spec.points[0].value, 1.0);
        assert!(matches!(
            spec_from_columns(&result(), ChartType::Bar, "t", "ghost", "id"),
            Err(VisError::ColumnNotFound(_))
        ));
    }

    #[test]
    fn value_column_merely_ending_in_id_is_not_an_id() {
        // `paid` ends with "id" but is a real value column; only exact `id`
        // or an `_id` suffix mark id columns.
        let mut e = Engine::new();
        e.execute("CREATE TABLE inv (id INT, vendor TEXT, paid FLOAT)").unwrap();
        e.execute("INSERT INTO inv VALUES (1, 'acme', 120.5), (2, 'zeta', 80.0)").unwrap();
        let r = e.execute("SELECT id, vendor, paid FROM inv ORDER BY id").unwrap();
        let spec = spec_from_result(&r, ChartType::Bar, "t").unwrap();
        assert_eq!(spec.value_label, "paid");
        assert_eq!(spec.points[0].value, 120.5);
    }

    #[test]
    fn underscore_id_suffix_still_skipped() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE o (vendor_id INT, total FLOAT)").unwrap();
        e.execute("INSERT INTO o VALUES (7, 10.0)").unwrap();
        let r = e.execute("SELECT vendor_id, total FROM o").unwrap();
        let spec = spec_from_result(&r, ChartType::Bar, "t").unwrap();
        assert_eq!(spec.value_label, "total");
    }

    #[test]
    fn null_values_are_skipped_not_charted_as_zero() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (c TEXT, v INT)").unwrap();
        e.execute("INSERT INTO t VALUES ('a', 3), ('b', NULL), ('c', 5)").unwrap();
        let r = e.execute("SELECT c, v FROM t").unwrap();
        let spec = spec_from_result(&r, ChartType::Bar, "t").unwrap();
        let labels: Vec<&str> = spec.points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, ["a", "c"], "NULL row dropped, not zeroed");
        assert!(spec.points.iter().all(|p| p.value != 0.0));
    }

    #[test]
    fn null_labels_become_unknown() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (c TEXT, v INT)").unwrap();
        e.execute("INSERT INTO t VALUES (NULL, 3)").unwrap();
        let r = e.execute("SELECT c, v FROM t").unwrap();
        let spec = spec_from_result(&r, ChartType::Bar, "t").unwrap();
        assert_eq!(spec.points[0].label, "unknown");
    }
}
