//! Chart specifications — the agent ⇄ front-end contract.

use serde::{Deserialize, Serialize};

/// Chart families. The demo's plan assigns `Donut`, `Bar` and `Area` to
/// the three sales-report dimensions (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChartType {
    /// Ring chart (share of total).
    Donut,
    /// Filled circle chart.
    Pie,
    /// Vertical/horizontal bars per category.
    Bar,
    /// Filled line chart over an ordered axis.
    Area,
    /// Plain line chart.
    Line,
    /// Point cloud.
    Scatter,
    /// Fall back to a tabular rendering.
    Table,
}

impl ChartType {
    /// Parse a lowercase chart-type name (as planners emit it).
    pub fn parse(name: &str) -> Option<ChartType> {
        match name.to_lowercase().as_str() {
            "donut" | "doughnut" | "ring" => Some(ChartType::Donut),
            "pie" => Some(ChartType::Pie),
            "bar" | "column" => Some(ChartType::Bar),
            "area" => Some(ChartType::Area),
            "line" => Some(ChartType::Line),
            "scatter" | "point" => Some(ChartType::Scatter),
            "table" | "grid" => Some(ChartType::Table),
            _ => None,
        }
    }

    /// Lowercase display name.
    pub fn name(&self) -> &'static str {
        match self {
            ChartType::Donut => "donut",
            ChartType::Pie => "pie",
            ChartType::Bar => "bar",
            ChartType::Area => "area",
            ChartType::Line => "line",
            ChartType::Scatter => "scatter",
            ChartType::Table => "table",
        }
    }
}

/// One labelled value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataPoint {
    /// Category / x label.
    pub label: String,
    /// Value.
    pub value: f64,
}

/// A complete chart description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChartSpec {
    /// Chart family.
    pub chart_type: ChartType,
    /// Title shown above the chart.
    pub title: String,
    /// The data, in display order.
    pub points: Vec<DataPoint>,
    /// Axis/series label for values (e.g. "sales").
    pub value_label: String,
}

impl ChartSpec {
    /// Empty spec.
    pub fn new(chart_type: ChartType, title: impl Into<String>) -> Self {
        ChartSpec {
            chart_type,
            title: title.into(),
            points: Vec::new(),
            value_label: "value".into(),
        }
    }

    /// Append a point, builder style.
    pub fn with_point(mut self, label: impl Into<String>, value: f64) -> Self {
        self.points.push(DataPoint {
            label: label.into(),
            value,
        });
        self
    }

    /// Set the value label, builder style.
    pub fn with_value_label(mut self, label: impl Into<String>) -> Self {
        self.value_label = label.into();
        self
    }

    /// Demo area ⑥: the user switches the chart type; data is untouched.
    pub fn switch_type(&self, to: ChartType) -> ChartSpec {
        let mut s = self.clone();
        s.chart_type = to;
        s
    }

    /// Sum of all values.
    pub fn total(&self) -> f64 {
        self.points.iter().map(|p| p.value).sum()
    }

    /// Largest value (0 when empty).
    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|p| p.value).fold(0.0, f64::max)
    }

    /// Is there anything to draw?
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ChartSpec {
        ChartSpec::new(ChartType::Donut, "Sales")
            .with_point("books", 40.0)
            .with_point("tech", 60.0)
            .with_value_label("sales")
    }

    #[test]
    fn parse_names() {
        assert_eq!(ChartType::parse("donut"), Some(ChartType::Donut));
        assert_eq!(ChartType::parse("DOUGHNUT"), Some(ChartType::Donut));
        assert_eq!(ChartType::parse("bar"), Some(ChartType::Bar));
        assert_eq!(ChartType::parse("area"), Some(ChartType::Area));
        assert_eq!(ChartType::parse("hologram"), None);
    }

    #[test]
    fn name_roundtrip() {
        for t in [
            ChartType::Donut,
            ChartType::Pie,
            ChartType::Bar,
            ChartType::Area,
            ChartType::Line,
            ChartType::Scatter,
            ChartType::Table,
        ] {
            assert_eq!(ChartType::parse(t.name()), Some(t));
        }
    }

    #[test]
    fn builder_and_stats() {
        let s = spec();
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.total(), 100.0);
        assert_eq!(s.max_value(), 60.0);
        assert!(!s.is_empty());
        assert_eq!(s.value_label, "sales");
    }

    #[test]
    fn switch_type_preserves_data() {
        let s = spec();
        let bar = s.switch_type(ChartType::Bar);
        assert_eq!(bar.chart_type, ChartType::Bar);
        assert_eq!(bar.points, s.points);
        assert_eq!(bar.title, s.title);
        // Original unchanged.
        assert_eq!(s.chart_type, ChartType::Donut);
    }

    #[test]
    fn serde_roundtrip() {
        let s = spec();
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<ChartSpec>(&json).unwrap(), s);
    }

    #[test]
    fn empty_spec_stats() {
        let s = ChartSpec::new(ChartType::Bar, "t");
        assert!(s.is_empty());
        assert_eq!(s.total(), 0.0);
        assert_eq!(s.max_value(), 0.0);
    }
}
