//! Error type for Text-to-SQL.

use std::fmt;

/// Errors from linking, generation and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Text2SqlError {
    /// No table in the schema matches the question.
    NoTableMatch(String),
    /// A needed column could not be linked.
    NoColumnMatch(String),
    /// The question shape is not covered by the grammar.
    UnsupportedQuestion(String),
    /// The supplied schema DDL could not be parsed.
    SchemaParse(String),
    /// SQL could not be parsed (SQL-to-Text direction).
    SqlParse(String),
}

impl fmt::Display for Text2SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Text2SqlError::NoTableMatch(q) => write!(f, "no table matches question: {q}"),
            Text2SqlError::NoColumnMatch(w) => write!(f, "cannot link column for: {w}"),
            Text2SqlError::UnsupportedQuestion(q) => {
                write!(f, "question shape not supported: {q}")
            }
            Text2SqlError::SchemaParse(m) => write!(f, "cannot parse schema: {m}"),
            Text2SqlError::SqlParse(m) => write!(f, "cannot parse SQL: {m}"),
        }
    }
}

impl std::error::Error for Text2SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(Text2SqlError::NoTableMatch("q?".into()).to_string().contains("q?"));
        assert!(Text2SqlError::SchemaParse("x".into()).to_string().contains('x'));
    }
}
