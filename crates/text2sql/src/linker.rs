//! Schema linking: connecting question vocabulary to schema elements.
//!
//! The first half of any Text-to-SQL system. A [`SchemaIndex`] is built
//! from DDL; a [`SchemaLinker`] scores tables/columns against question
//! tokens using exact matches, plural stripping, substring containment and
//! — crucially — a [`Lexicon`] of learned synonyms. The lexicon is the
//! fine-tunable parameter store: the base model's lexicon is empty, and
//! [`crate::FineTuner`] populates it from training pairs.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dbgpt_sqlengine::parser::{parse, Statement};

use crate::error::Text2SqlError;

/// A table with its columns, as linked against.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableInfo {
    /// Table name (lowercase).
    pub name: String,
    /// Column names (lowercase, in DDL order).
    pub columns: Vec<String>,
    /// Column type names (parallel to `columns`).
    pub types: Vec<String>,
}

/// Parsed schema ready for linking.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SchemaIndex {
    /// All tables.
    pub tables: Vec<TableInfo>,
}

impl SchemaIndex {
    /// Build from `CREATE TABLE …;` DDL text (one statement per line or
    /// `;`-separated).
    pub fn from_ddl(ddl: &str) -> Result<SchemaIndex, Text2SqlError> {
        let mut tables = Vec::new();
        for stmt_text in ddl.split(';') {
            let stmt_text = stmt_text.trim();
            if stmt_text.is_empty() {
                continue;
            }
            let stmt = parse(stmt_text).map_err(|e| Text2SqlError::SchemaParse(e.to_string()))?;
            if let Statement::CreateTable { name, columns, .. } = stmt {
                tables.push(TableInfo {
                    name,
                    columns: columns.iter().map(|(n, _)| n.clone()).collect(),
                    types: columns.iter().map(|(_, t)| t.to_string()).collect(),
                });
            }
        }
        if tables.is_empty() {
            return Err(Text2SqlError::SchemaParse("no CREATE TABLE found".into()));
        }
        Ok(SchemaIndex { tables })
    }

    /// Find a table by name.
    pub fn table(&self, name: &str) -> Option<&TableInfo> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Is `column` numeric in `table`?
    pub fn is_numeric(&self, table: &str, column: &str) -> bool {
        self.table(table)
            .and_then(|t| {
                t.columns
                    .iter()
                    .position(|c| c == column)
                    .map(|i| matches!(t.types[i].as_str(), "INT" | "FLOAT"))
            })
            .unwrap_or(false)
    }
}

/// Learned question-word → schema-term weights. The fine-tunable store.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Lexicon {
    /// `(question word → (schema term → weight))`.
    entries: HashMap<String, HashMap<String, f64>>,
}

impl Lexicon {
    /// Empty lexicon (the base model).
    pub fn new() -> Self {
        Lexicon::default()
    }

    /// Strengthen the association `word → term`.
    pub fn learn(&mut self, word: &str, term: &str, weight: f64) {
        *self
            .entries
            .entry(word.to_lowercase())
            .or_default()
            .entry(term.to_lowercase())
            .or_insert(0.0) += weight;
    }

    /// The learned weight of `word → term` (0 when unknown).
    pub fn weight(&self, word: &str, term: &str) -> f64 {
        self.entries
            .get(&word.to_lowercase())
            .and_then(|m| m.get(&term.to_lowercase()))
            .copied()
            .unwrap_or(0.0)
    }

    /// The best term for `word`, if any association exists.
    pub fn best(&self, word: &str) -> Option<(&str, f64)> {
        self.entries.get(&word.to_lowercase()).and_then(|m| {
            m.iter()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(a.0)))
                .map(|(t, w)| (t.as_str(), *w))
        })
    }

    /// Iterate `(word, term, weight)` triples (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, f64)> {
        self.entries.iter().flat_map(|(w, terms)| {
            terms.iter().map(move |(t, weight)| (w.as_str(), t.as_str(), *weight))
        })
    }

    /// Number of known question words.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the lexicon empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Strip a plural suffix: `orders` → `order`, `categories` → `category`.
pub fn singular(word: &str) -> String {
    if let Some(stem) = word.strip_suffix("ies") {
        return format!("{stem}y");
    }
    if let Some(stem) = word.strip_suffix("es") {
        // boxes → box, but names → name is handled by the 's' rule below;
        // only use the 'es' rule for sibilant stems.
        if stem.ends_with('x') || stem.ends_with("ch") || stem.ends_with("sh") || stem.ends_with('s')
        {
            return stem.to_string();
        }
    }
    word.strip_suffix('s').map(str::to_string).unwrap_or_else(|| word.to_string())
}

/// Scores schema elements against question words.
#[derive(Debug, Clone, Default)]
pub struct SchemaLinker {
    lexicon: Lexicon,
}

impl SchemaLinker {
    /// Linker with an empty lexicon (the base model).
    pub fn new() -> Self {
        SchemaLinker::default()
    }

    /// Linker with a learned lexicon (the fine-tuned model).
    pub fn with_lexicon(lexicon: Lexicon) -> Self {
        SchemaLinker { lexicon }
    }

    /// The lexicon.
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// Similarity of a question word to a schema term.
    pub fn word_score(&self, word: &str, term: &str) -> f64 {
        let word = word.to_lowercase();
        let term_l = term.to_lowercase();
        if word == term_l {
            return 1.0;
        }
        if singular(&word) == singular(&term_l) {
            return 0.9;
        }
        // Compound column names: `user_id` matches `user`.
        if term_l.split('_').any(|part| part == word || singular(&word) == singular(part)) {
            return 0.7;
        }
        // Learned synonym (capped so exact evidence still dominates).
        let learned = self.lexicon.weight(&word, &term_l);
        if learned > 0.0 {
            return 0.85_f64.min(0.3 + learned * 0.15);
        }
        0.0
    }

    /// Score a table against the question: best word-score against the
    /// table name plus a small bonus per column mentioned.
    pub fn table_score(&self, words: &[String], table: &TableInfo) -> f64 {
        let name_score = words
            .iter()
            .map(|w| self.word_score(w, &table.name))
            .fold(0.0, f64::max);
        let mut column_bonus = 0.0;
        for c in &table.columns {
            let best = words.iter().map(|w| self.word_score(w, c)).fold(0.0, f64::max);
            column_bonus += best * 0.2;
        }
        name_score + column_bonus
    }

    /// The best-matching table for the question words.
    pub fn link_table<'a>(
        &self,
        words: &[String],
        schema: &'a SchemaIndex,
    ) -> Option<(&'a TableInfo, f64)> {
        schema
            .tables
            .iter()
            .map(|t| (t, self.table_score(words, t)))
            .filter(|(_, s)| *s > 0.0)
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.name.cmp(&a.0.name)))
    }

    /// The best-matching column of `table` for one question word.
    pub fn link_column<'a>(&self, word: &str, table: &'a TableInfo) -> Option<(&'a str, f64)> {
        table
            .columns
            .iter()
            .map(|c| (c.as_str(), self.word_score(word, c)))
            .filter(|(_, s)| *s > 0.0)
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(a.0)))
    }

    /// The best column of `table` for any of several words (e.g. a noun
    /// phrase); ties go to the earliest word.
    pub fn link_column_multi<'a>(
        &self,
        words: &[String],
        table: &'a TableInfo,
    ) -> Option<(&'a str, f64)> {
        let mut best: Option<(&str, f64)> = None;
        for w in words {
            if let Some((c, s)) = self.link_column(w, table) {
                if best.map(|(_, bs)| s > bs).unwrap_or(true) {
                    best = Some((c, s));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DDL: &str = "CREATE TABLE orders (id INT, user_id INT, amount FLOAT, category TEXT);\n\
                       CREATE TABLE users (id INT, name TEXT, city TEXT);";

    fn schema() -> SchemaIndex {
        SchemaIndex::from_ddl(DDL).unwrap()
    }

    fn words(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_lowercase).collect()
    }

    #[test]
    fn ddl_parses_into_index() {
        let s = schema();
        assert_eq!(s.tables.len(), 2);
        assert_eq!(s.table("orders").unwrap().columns.len(), 4);
        assert!(s.is_numeric("orders", "amount"));
        assert!(!s.is_numeric("orders", "category"));
        assert!(!s.is_numeric("ghost", "x"));
    }

    #[test]
    fn bad_ddl_rejected() {
        assert!(SchemaIndex::from_ddl("SELECT 1").is_err());
        assert!(SchemaIndex::from_ddl("").is_err());
    }

    #[test]
    fn singular_rules() {
        assert_eq!(singular("orders"), "order");
        assert_eq!(singular("categories"), "category");
        assert_eq!(singular("boxes"), "box");
        assert_eq!(singular("amount"), "amount");
        assert_eq!(singular("classes"), "class");
    }

    #[test]
    fn exact_and_plural_scores() {
        let l = SchemaLinker::new();
        assert_eq!(l.word_score("amount", "amount"), 1.0);
        assert_eq!(l.word_score("orders", "order"), 0.9);
        assert_eq!(l.word_score("user", "user_id"), 0.7);
        assert_eq!(l.word_score("banana", "amount"), 0.0);
    }

    #[test]
    fn link_table_picks_best() {
        let l = SchemaLinker::new();
        let s = schema();
        let (t, _) = l.link_table(&words("how many orders are there"), &s).unwrap();
        assert_eq!(t.name, "orders");
        let (t, _) = l.link_table(&words("list all users"), &s).unwrap();
        assert_eq!(t.name, "users");
        assert!(l.link_table(&words("quantum flux"), &s).is_none());
    }

    #[test]
    fn column_mentions_boost_table_score() {
        let l = SchemaLinker::new();
        let s = schema();
        // "city" only exists on users.
        let (t, _) = l.link_table(&words("which city"), &s).unwrap();
        assert_eq!(t.name, "users");
    }

    #[test]
    fn link_column_works() {
        let l = SchemaLinker::new();
        let s = schema();
        let t = s.table("orders").unwrap();
        assert_eq!(l.link_column("amount", t).unwrap().0, "amount");
        assert_eq!(l.link_column("amounts", t).unwrap().0, "amount");
        assert!(l.link_column("banana", t).is_none());
    }

    #[test]
    fn lexicon_learning_enables_synonyms() {
        let mut lex = Lexicon::new();
        assert!(lex.is_empty());
        // Base linker cannot link "revenue".
        let base = SchemaLinker::new();
        let s = schema();
        assert!(base.link_column("revenue", s.table("orders").unwrap()).is_none());
        // Fine-tuned lexicon links it.
        lex.learn("revenue", "amount", 3.0);
        assert_eq!(lex.len(), 1);
        assert_eq!(lex.best("revenue").unwrap().0, "amount");
        let tuned = SchemaLinker::with_lexicon(lex);
        let (c, score) = tuned.link_column("revenue", s.table("orders").unwrap()).unwrap();
        assert_eq!(c, "amount");
        assert!(score > 0.0 && score <= 0.85);
    }

    #[test]
    fn learned_weight_never_beats_exact() {
        let mut lex = Lexicon::new();
        lex.learn("amount", "category", 100.0);
        let l = SchemaLinker::with_lexicon(lex);
        let s = schema();
        let (c, _) = l.link_column("amount", s.table("orders").unwrap()).unwrap();
        assert_eq!(c, "amount", "exact match must dominate learned synonym");
    }

    #[test]
    fn link_column_multi_prefers_strongest() {
        let l = SchemaLinker::new();
        let s = schema();
        let t = s.table("orders").unwrap();
        let (c, _) = l
            .link_column_multi(&words("total amount of things"), t)
            .unwrap();
        assert_eq!(c, "amount");
    }

    #[test]
    fn lexicon_serde_roundtrip() {
        let mut lex = Lexicon::new();
        lex.learn("revenue", "amount", 2.0);
        let json = serde_json::to_string(&lex).unwrap();
        let back: Lexicon = serde_json::from_str(&json).unwrap();
        assert_eq!(back.weight("revenue", "amount"), 2.0);
    }
}
