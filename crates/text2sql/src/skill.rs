//! Serving Text-to-SQL models through the LLM substrate.
//!
//! DB-GPT-Hub's output is a *model*: "our SMMF framework accords users the
//! flexibility to employ their fine-tuned LLMs in a localized manner"
//! (§2.5). [`Text2SqlSkill`] wraps a [`Text2SqlModel`] as a
//! [`dbgpt_llm::PromptSkill`], and [`sql_model`] packages it into a
//! deployable [`dbgpt_llm::SimLlm`] — so the application layer can address
//! a fine-tuned SQL model exactly like any chat model, through SMMF.
//!
//! Prompt convention:
//!
//! ```text
//! ### Task: text2sql
//! ### Schema:
//! CREATE TABLE …;
//! ### Input:
//! how many orders are there?
//! ```

use std::sync::Arc;

use dbgpt_llm::skill::{PromptSkill, SkillContext, StructuredPrompt};
use dbgpt_llm::{SharedModel, SimLlm};

use crate::model::Text2SqlModel;

/// The prompt skill (see module docs).
pub struct Text2SqlSkill {
    model: Text2SqlModel,
}

impl Text2SqlSkill {
    /// Wrap a model.
    pub fn new(model: Text2SqlModel) -> Self {
        Text2SqlSkill { model }
    }
}

impl PromptSkill for Text2SqlSkill {
    fn name(&self) -> &str {
        "text2sql"
    }

    fn matches(&self, prompt: &StructuredPrompt, _raw: &str) -> bool {
        matches!(prompt.task.as_deref(), Some("text2sql") | Some("sql"))
    }

    fn complete(
        &self,
        prompt: &StructuredPrompt,
        _raw: &str,
        _ctx: &SkillContext,
    ) -> Option<String> {
        let schema = prompt.section("schema")?;
        let question = prompt.input();
        match self.model.generate_sql(schema, question) {
            Ok(sql) => Some(sql),
            // Real Text-to-SQL models emit *something*; surface failures as
            // a SQL comment so downstream parsing fails loudly but safely.
            Err(e) => Some(format!("-- error: {e}")),
        }
    }
}

/// Package a Text-to-SQL model as a deployable simulated LLM (based on the
/// `sim-coder` serving profile, with this skill at top priority).
pub fn sql_model(model: Text2SqlModel) -> SharedModel {
    let mut spec = dbgpt_llm::catalog::builtin_spec("sim-coder").expect("sim-coder exists");
    spec.id = dbgpt_llm::ModelId::new(model.name());
    let mut llm = SimLlm::with_default_skills(spec);
    llm.register_skill(Arc::new(Text2SqlSkill::new(model)));
    Arc::new(llm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgpt_llm::GenerationParams;

    const DDL: &str = "CREATE TABLE orders (id INT, user_id INT, amount FLOAT, category TEXT);";

    fn prompt(q: &str) -> String {
        format!("### Task: text2sql\n### Schema:\n{DDL}\n### Input:\n{q}")
    }

    #[test]
    fn skill_generates_sql_through_model_interface() {
        let m = sql_model(Text2SqlModel::base());
        let out = m
            .generate(&prompt("how many orders are there?"), &GenerationParams::default())
            .unwrap();
        assert_eq!(out.text, "SELECT COUNT(*) FROM orders;");
        assert_eq!(out.model, "t2s-base");
    }

    #[test]
    fn skill_reports_failures_as_sql_comment() {
        let m = sql_model(Text2SqlModel::base());
        let out = m
            .generate(&prompt("how many quasars exist?"), &GenerationParams::default())
            .unwrap();
        assert!(out.text.starts_with("-- error:"), "{}", out.text);
    }

    #[test]
    fn non_sql_prompts_fall_through_to_chat() {
        let m = sql_model(Text2SqlModel::base());
        let out = m
            .generate("tell me about databases", &GenerationParams::default())
            .unwrap();
        assert!(!out.text.starts_with("SELECT"));
    }

    #[test]
    fn deployable_via_smmf() {
        // Deployed through SMMF like any other model.
        let mut server = dbgpt_smmf::ApiServer::new(dbgpt_smmf::DeploymentMode::Local);
        server.deploy_model(sql_model(Text2SqlModel::base()), 2).unwrap();
        let out = server
            .chat("t2s-base", &prompt("list all orders"), &GenerationParams::default())
            .unwrap();
        assert_eq!(out.text, "SELECT * FROM orders;");
    }
}
