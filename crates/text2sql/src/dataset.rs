//! A deterministic Spider-style Text-to-SQL benchmark.
//!
//! Three domains (sales, HR, library), each with a populated database and
//! question/SQL pairs generated from templates. Test questions use
//! *paraphrased* vocabulary ("revenue" for `amount`, "staff" for
//! `employees`) with a fixed probability — which is precisely why
//! fine-tuning on in-domain pairs helps (experiment E1): the base model's
//! linker has never seen the paraphrases, the fine-tuned one has.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use dbgpt_sqlengine::Engine;

/// One benchmark database.
#[derive(Debug, Clone)]
pub struct BenchmarkDb {
    /// Domain name.
    pub name: String,
    /// `CREATE TABLE` DDL.
    ddl: String,
    /// `INSERT` statements populating the tables.
    inserts: Vec<String>,
}

impl BenchmarkDb {
    /// The schema DDL (the prompt context for Text-to-SQL).
    pub fn schema_ddl(&self) -> String {
        self.ddl.clone()
    }

    /// Materialise a fresh engine loaded with this database.
    pub fn build_engine(&self) -> Engine {
        let mut e = Engine::new();
        for stmt in self.ddl.split(';') {
            let stmt = stmt.trim();
            if !stmt.is_empty() {
                e.execute(stmt).expect("benchmark DDL is valid");
            }
        }
        for ins in &self.inserts {
            e.execute(ins).expect("benchmark inserts are valid");
        }
        e
    }
}

/// One question/SQL pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Example {
    /// Index into [`Benchmark::databases`].
    pub db: usize,
    /// The natural-language question.
    pub question: String,
    /// The canonical gold SQL.
    pub gold_sql: String,
    /// Whether the question uses paraphrased vocabulary.
    pub paraphrased: bool,
}

/// The full benchmark: databases + train/test splits.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// The databases.
    pub databases: Vec<BenchmarkDb>,
    /// Training pairs (for the fine-tuner).
    pub train: Vec<Example>,
    /// Held-out evaluation pairs.
    pub test: Vec<Example>,
}

/// A paraphrase entry: canonical noun → paraphrase, plus the schema term
/// it stands for.
struct Paraphrase {
    canonical: &'static str,
    alias: &'static str,
}

/// Template slots per domain.
struct Domain {
    name: &'static str,
    ddl: &'static str,
    /// Primary fact table with `(table noun, numeric col, group col, text value samples)`.
    table: &'static str,
    numeric_col: &'static str,
    group_col: &'static str,
    group_values: &'static [&'static str],
    /// Secondary entity table with a label column and a numeric column.
    entity_table: &'static str,
    entity_numeric: &'static str,
    paraphrases: &'static [Paraphrase],
}

const DOMAINS: &[Domain] = &[
    Domain {
        name: "sales",
        ddl: "CREATE TABLE orders (id INT, user_id INT, amount FLOAT, category TEXT, month TEXT);\n\
              CREATE TABLE products (id INT, name TEXT, price FLOAT, stock INT);",
        table: "orders",
        numeric_col: "amount",
        group_col: "category",
        group_values: &["books", "tech", "food"],
        entity_table: "products",
        entity_numeric: "price",
        paraphrases: &[
            Paraphrase { canonical: "amount", alias: "revenue" },
            Paraphrase { canonical: "orders", alias: "purchases" },
            Paraphrase { canonical: "category", alias: "segment" },
        ],
    },
    Domain {
        name: "hr",
        ddl: "CREATE TABLE employees (id INT, name TEXT, salary FLOAT, department TEXT, age INT);\n\
              CREATE TABLE projects (id INT, name TEXT, budget FLOAT, headcount INT);",
        table: "employees",
        numeric_col: "salary",
        group_col: "department",
        group_values: &["engineering", "sales", "finance"],
        entity_table: "projects",
        entity_numeric: "budget",
        paraphrases: &[
            Paraphrase { canonical: "salary", alias: "pay" },
            Paraphrase { canonical: "employees", alias: "staff" },
            Paraphrase { canonical: "department", alias: "division" },
        ],
    },
    Domain {
        name: "library",
        ddl: "CREATE TABLE loans (id INT, book_id INT, days INT, genre TEXT, branch TEXT);\n\
              CREATE TABLE books (id INT, name TEXT, pages INT, year INT);",
        table: "loans",
        numeric_col: "days",
        group_col: "genre",
        group_values: &["fiction", "history", "science"],
        entity_table: "books",
        entity_numeric: "pages",
        paraphrases: &[
            Paraphrase { canonical: "days", alias: "duration" },
            Paraphrase { canonical: "loans", alias: "checkouts" },
            Paraphrase { canonical: "genre", alias: "style" },
        ],
    },
];

/// Fraction of examples that use paraphrased vocabulary.
const PARAPHRASE_RATE: f64 = 0.6;
/// Training examples per domain.
const TRAIN_PER_DOMAIN: usize = 60;
/// Test examples per domain.
const TEST_PER_DOMAIN: usize = 30;

/// Generate the benchmark with a seed (same seed, same benchmark).
pub fn spider_like(seed: u64) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut databases = Vec::new();
    let mut train = Vec::new();
    let mut test = Vec::new();

    for (di, d) in DOMAINS.iter().enumerate() {
        databases.push(build_db(d, &mut rng));
        for _ in 0..TRAIN_PER_DOMAIN {
            train.push(make_example(di, d, &mut rng));
        }
        for _ in 0..TEST_PER_DOMAIN {
            test.push(make_example(di, d, &mut rng));
        }
    }
    Benchmark {
        databases,
        train,
        test,
    }
}

fn build_db(d: &Domain, rng: &mut StdRng) -> BenchmarkDb {
    let mut inserts = Vec::new();
    // Fact table rows.
    let mut rows = Vec::new();
    for i in 0..40 {
        let numeric = (rng.gen_range(5..500) as f64) + 0.5;
        let group = d.group_values[rng.gen_range(0..d.group_values.len())];
        let month = ["jan", "feb", "mar"][rng.gen_range(0..3)];
        // Columns differ per domain: render generically by schema shape.
        let row = match d.name {
            "sales" => format!("({}, {}, {}, '{}', '{}')", i, rng.gen_range(1..10), numeric, group, month),
            "hr" => format!("({}, 'emp{}', {}, '{}', {})", i, i, numeric, group, rng.gen_range(21..65)),
            _ => format!("({}, {}, {}, '{}', 'main')", i, rng.gen_range(1..20), numeric as i64, group),
        };
        rows.push(row);
    }
    inserts.push(format!("INSERT INTO {} VALUES {}", d.table, rows.join(", ")));
    // Entity table rows.
    let mut rows = Vec::new();
    for i in 0..15 {
        let numeric = rng.gen_range(10..900);
        let row = match d.name {
            "sales" => format!("({}, 'product{}', {}.0, {})", i, i, numeric, rng.gen_range(0..50)),
            "hr" => format!("({}, 'project{}', {}.0, {})", i, i, numeric, rng.gen_range(1..30)),
            _ => format!("({}, 'book{}', {}, {})", i, i, numeric, rng.gen_range(1950..2024)),
        };
        rows.push(row);
    }
    inserts.push(format!("INSERT INTO {} VALUES {}", d.entity_table, rows.join(", ")));
    BenchmarkDb {
        name: d.name.to_string(),
        ddl: d.ddl.to_string(),
        inserts,
    }
}

/// Substitute paraphrases into a question when `paraphrased`.
fn voice(word: &str, d: &Domain, paraphrased: bool) -> String {
    if paraphrased {
        for p in d.paraphrases {
            if p.canonical == word {
                return p.alias.to_string();
            }
        }
    }
    word.to_string()
}

fn make_example(di: usize, d: &Domain, rng: &mut StdRng) -> Example {
    let paraphrased = rng.gen_bool(PARAPHRASE_RATE);
    let v = |w: &str| voice(w, d, paraphrased);
    let template = rng.gen_range(0..11u8);
    let (question, gold_sql) = match template {
        0 => (
            format!("How many {} are there?", v(d.table)),
            format!("SELECT COUNT(*) FROM {};", d.table),
        ),
        1 => (
            format!("What is the total {} of {}?", v(d.numeric_col), v(d.table)),
            format!("SELECT SUM({}) FROM {};", d.numeric_col, d.table),
        ),
        2 => (
            format!("What is the average {} of {}?", v(d.numeric_col), v(d.table)),
            format!("SELECT AVG({}) FROM {};", d.numeric_col, d.table),
        ),
        3 => (
            format!(
                "What is the total {} per {} of {}?",
                v(d.numeric_col),
                v(d.group_col),
                v(d.table)
            ),
            format!(
                "SELECT {}, SUM({}) FROM {} GROUP BY {};",
                d.group_col, d.numeric_col, d.table, d.group_col
            ),
        ),
        4 => (
            format!("How many {} per {}?", v(d.table), v(d.group_col)),
            format!(
                "SELECT {}, COUNT(*) FROM {} GROUP BY {};",
                d.group_col, d.table, d.group_col
            ),
        ),
        5 => {
            let threshold = rng.gen_range(50..300);
            (
                format!(
                    "List {} with {} greater than {}",
                    v(d.table),
                    v(d.numeric_col),
                    threshold
                ),
                format!(
                    "SELECT * FROM {} WHERE {} > {};",
                    d.table, d.numeric_col, threshold
                ),
            )
        }
        6 => {
            let val = d.group_values[rng.gen_range(0..d.group_values.len())];
            (
                format!(
                    "List {} whose {} is '{}'",
                    v(d.table),
                    v(d.group_col),
                    val
                ),
                format!("SELECT * FROM {} WHERE {} = '{}';", d.table, d.group_col, val),
            )
        }
        8 => {
            let (a, b) = (rng.gen_range(20..120), rng.gen_range(150..400));
            (
                format!(
                    "List {} with {} between {} and {}",
                    v(d.table),
                    v(d.numeric_col),
                    a,
                    b
                ),
                format!(
                    "SELECT * FROM {} WHERE {} BETWEEN {} AND {};",
                    d.table, d.numeric_col, a, b
                ),
            )
        }
        9 => {
            let val = d.group_values[rng.gen_range(0..d.group_values.len())];
            (
                format!(
                    "List {} whose {} is not '{}'",
                    v(d.table),
                    v(d.group_col),
                    val
                ),
                format!(
                    "SELECT * FROM {} WHERE {} <> '{}';",
                    d.table, d.group_col, val
                ),
            )
        }
        10 => (
            format!(
                "How many distinct {} of {} are there?",
                v(d.group_col),
                v(d.table)
            ),
            format!("SELECT COUNT(DISTINCT {}) FROM {};", d.group_col, d.table),
        ),
        _ => {
            let k = rng.gen_range(2..6);
            (
                format!(
                    "Show the top {} {} by {}",
                    k,
                    d.entity_table,
                    d.entity_numeric
                ),
                format!(
                    "SELECT name FROM {} ORDER BY {} DESC LIMIT {};",
                    d.entity_table, d.entity_numeric, k
                ),
            )
        }
    };
    Example {
        db: di,
        question,
        gold_sql,
        paraphrased,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = spider_like(7);
        let b = spider_like(7);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
        let c = spider_like(8);
        assert_ne!(a.test, c.test);
    }

    #[test]
    fn sizes_match_spec() {
        let b = spider_like(1);
        assert_eq!(b.databases.len(), 3);
        assert_eq!(b.train.len(), 3 * TRAIN_PER_DOMAIN);
        assert_eq!(b.test.len(), 3 * TEST_PER_DOMAIN);
    }

    #[test]
    fn databases_build_and_populate() {
        let b = spider_like(2);
        for db in &b.databases {
            let mut e = db.build_engine();
            let names = e.database().table_names().len();
            assert_eq!(names, 2, "{} should have 2 tables", db.name);
            // Fact table has 40 rows.
            let fact = e
                .execute(&format!(
                    "SELECT COUNT(*) FROM {}",
                    e.database().table_names()[0]
                ))
                .unwrap();
            assert!(fact.rows[0][0].as_i64().unwrap() > 0);
        }
    }

    #[test]
    fn gold_sql_is_valid_and_executes() {
        let b = spider_like(3);
        let mut engines: Vec<Engine> = b.databases.iter().map(|d| d.build_engine()).collect();
        for ex in b.train.iter().chain(&b.test) {
            let r = engines[ex.db].execute(&ex.gold_sql);
            assert!(r.is_ok(), "gold fails: {} → {:?}", ex.gold_sql, r.err());
        }
    }

    #[test]
    fn paraphrase_rate_is_roughly_honoured() {
        let b = spider_like(4);
        let n = b.test.iter().filter(|e| e.paraphrased).count();
        let rate = n as f64 / b.test.len() as f64;
        assert!((0.4..=0.8).contains(&rate), "rate {rate}");
    }

    #[test]
    fn paraphrased_questions_use_alias_vocabulary() {
        let b = spider_like(5);
        let para = b
            .test
            .iter()
            .find(|e| e.paraphrased && e.db == 0 && e.question.contains("total"))
            .expect("some paraphrased sales sum question exists");
        assert!(
            para.question.contains("revenue") || para.question.contains("purchases"),
            "{}",
            para.question
        );
        // Gold stays canonical.
        assert!(para.gold_sql.contains("amount") || para.gold_sql.contains("orders"));
    }
}
