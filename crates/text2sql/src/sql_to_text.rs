//! SQL-to-Text: explain a SQL statement in natural language.
//!
//! Table 1 lists "Text-to-SQL / SQL-to-Text" as one capability; this is
//! the reverse direction, used by Chat2DB to explain queries back to the
//! user. The statement is parsed with the real engine parser — the
//! explanation can never drift from what would actually execute.

use dbgpt_sqlengine::parser::{parse, JoinKind, SelectItem, Statement};

use crate::error::Text2SqlError;

/// Describe one SQL statement in English.
pub fn sql_to_text(sql: &str) -> Result<String, Text2SqlError> {
    let stmt = parse(sql).map_err(|e| Text2SqlError::SqlParse(e.to_string()))?;
    Ok(match stmt {
        Statement::Select(s) => {
            let mut out = String::from("Retrieve ");
            if s.distinct {
                out.push_str("distinct ");
            }
            let projections: Vec<String> = s
                .projections
                .iter()
                .map(|p| match p {
                    SelectItem::Wildcard => "all columns".to_string(),
                    SelectItem::QualifiedWildcard(t) => format!("all columns of {t}"),
                    SelectItem::Expr { expr, alias } => match alias {
                        Some(a) => format!("{expr} (as {a})"),
                        None => expr.to_string(),
                    },
                })
                .collect();
            out.push_str(&projections.join(", "));
            if let Some(from) = &s.from {
                out.push_str(&format!(" from the {} table", from.name));
            }
            for j in &s.joins {
                let kind = match j.kind {
                    JoinKind::Inner => "joined with",
                    JoinKind::Left => "left-joined with",
                };
                out.push_str(&format!(" {kind} {} on {}", j.table.name, j.on));
            }
            if let Some(f) = &s.filter {
                out.push_str(&format!(", keeping rows where {f}"));
            }
            if !s.group_by.is_empty() {
                let groups: Vec<String> = s.group_by.iter().map(|g| g.to_string()).collect();
                out.push_str(&format!(", grouped by {}", groups.join(", ")));
            }
            if let Some(h) = &s.having {
                out.push_str(&format!(", for groups where {h}"));
            }
            if !s.order_by.is_empty() {
                let keys: Vec<String> = s
                    .order_by
                    .iter()
                    .map(|(e, desc)| {
                        format!("{e} ({})", if *desc { "descending" } else { "ascending" })
                    })
                    .collect();
                out.push_str(&format!(", ordered by {}", keys.join(", ")));
            }
            if let Some(n) = s.limit {
                out.push_str(&format!(", limited to {n} row(s)"));
            }
            out.push('.');
            out
        }
        Statement::Insert { table, rows, .. } => {
            format!("Insert {} row(s) into the {table} table.", rows.len())
        }
        Statement::Update {
            table,
            assignments,
            filter,
        } => {
            let cols: Vec<&str> = assignments.iter().map(|(c, _)| c.as_str()).collect();
            let mut out = format!("Update column(s) {} of the {table} table", cols.join(", "));
            if let Some(f) = filter {
                out.push_str(&format!(" where {f}"));
            }
            out.push('.');
            out
        }
        Statement::Delete { table, filter } => match filter {
            Some(f) => format!("Delete rows from the {table} table where {f}."),
            None => format!("Delete all rows from the {table} table."),
        },
        Statement::CreateTable { name, columns, .. } => {
            format!("Create the {name} table with {} column(s).", columns.len())
        }
        Statement::DropTable { name, .. } => format!("Drop the {name} table."),
        Statement::CreateIndex {
            name,
            table,
            column,
        } => format!("Create index {name} on column {column} of the {table} table."),
        Statement::DropIndex { name, table } => {
            format!("Drop index {name} from the {table} table.")
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describes_simple_select() {
        let t = sql_to_text("SELECT name FROM users WHERE id > 3").unwrap();
        assert_eq!(
            t,
            "Retrieve name from the users table, keeping rows where (id > 3)."
        );
    }

    #[test]
    fn describes_full_select() {
        let t = sql_to_text(
            "SELECT category, SUM(amount) AS total FROM orders \
             WHERE amount > 10 GROUP BY category HAVING SUM(amount) > 100 \
             ORDER BY total DESC LIMIT 5",
        )
        .unwrap();
        assert!(t.contains("SUM(amount) (as total)"));
        assert!(t.contains("grouped by category"));
        assert!(t.contains("for groups where"));
        assert!(t.contains("ordered by total (descending)"));
        assert!(t.contains("limited to 5 row(s)"));
    }

    #[test]
    fn describes_join() {
        let t = sql_to_text(
            "SELECT o.id FROM orders o LEFT JOIN users u ON o.user_id = u.id",
        )
        .unwrap();
        assert!(t.contains("left-joined with users"));
    }

    #[test]
    fn describes_wildcard_and_distinct() {
        let t = sql_to_text("SELECT DISTINCT * FROM t").unwrap();
        assert!(t.starts_with("Retrieve distinct all columns"));
    }

    #[test]
    fn describes_dml_and_ddl() {
        assert_eq!(
            sql_to_text("INSERT INTO t VALUES (1), (2)").unwrap(),
            "Insert 2 row(s) into the t table."
        );
        assert!(sql_to_text("UPDATE t SET a = 1 WHERE b = 2")
            .unwrap()
            .contains("Update column(s) a"));
        assert_eq!(
            sql_to_text("DELETE FROM t").unwrap(),
            "Delete all rows from the t table."
        );
        assert!(sql_to_text("CREATE TABLE t (a INT, b TEXT)")
            .unwrap()
            .contains("2 column(s)"));
        assert_eq!(sql_to_text("DROP TABLE t").unwrap(), "Drop the t table.");
    }

    #[test]
    fn invalid_sql_errors() {
        assert!(matches!(
            sql_to_text("SELEC oops"),
            Err(Text2SqlError::SqlParse(_))
        ));
    }
}

#[cfg(test)]
mod index_text_tests {
    use super::*;

    #[test]
    fn describes_index_ddl() {
        assert_eq!(
            sql_to_text("CREATE INDEX idx ON t (a)").unwrap(),
            "Create index idx on column a of the t table."
        );
        assert_eq!(
            sql_to_text("DROP INDEX idx ON t").unwrap(),
            "Drop index idx from the t table."
        );
    }
}
