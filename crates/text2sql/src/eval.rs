//! Evaluation: exact-match and execution accuracy (experiment E1).
//!
//! Standard Text-to-SQL metrics:
//!
//! - **Exact match** — predicted SQL equals the gold after whitespace/case
//!   normalisation.
//! - **Execution accuracy** — both queries run on the benchmark database
//!   and return the same result multiset (order-insensitive, unless the
//!   gold carries an ORDER BY).

use dbgpt_sqlengine::Engine;

use crate::dataset::Benchmark;
use crate::model::Text2SqlModel;

/// Aggregated evaluation results.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Model evaluated.
    pub model: String,
    /// Examples evaluated.
    pub total: usize,
    /// Predictions equal to gold (normalised).
    pub exact_match: usize,
    /// Predictions whose execution result equals gold's.
    pub execution_match: usize,
    /// Questions where the model failed to produce SQL at all.
    pub generation_errors: usize,
    /// Breakdown: `(canonical EM, canonical total)`.
    pub canonical: (usize, usize),
    /// Breakdown: `(paraphrased EM, paraphrased total)`.
    pub paraphrased: (usize, usize),
}

impl EvalReport {
    /// Exact-match accuracy in `[0, 1]`.
    pub fn em_accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.exact_match as f64 / self.total as f64
        }
    }

    /// Execution accuracy in `[0, 1]`.
    pub fn exec_accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.execution_match as f64 / self.total as f64
        }
    }
}

/// Normalise SQL for exact-match comparison.
pub fn normalize_sql(sql: &str) -> String {
    sql.replace(';', " ")
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
        .to_lowercase()
}

/// Execute and render a result as a sorted multiset fingerprint.
fn execution_fingerprint(engine: &mut Engine, sql: &str) -> Option<Vec<String>> {
    let result = engine.execute(sql).ok()?;
    let mut rows: Vec<String> = result
        .rows
        .iter()
        .map(|r| {
            r.values()
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    Some(rows)
}

/// Evaluate a model on the benchmark's test split.
pub fn evaluate(model: &Text2SqlModel, benchmark: &Benchmark) -> EvalReport {
    let mut engines: Vec<Engine> = benchmark.databases.iter().map(|d| d.build_engine()).collect();
    let schemas: Vec<String> = benchmark
        .databases
        .iter()
        .map(|d| d.schema_ddl())
        .collect();

    let mut report = EvalReport {
        model: model.name().to_string(),
        total: benchmark.test.len(),
        exact_match: 0,
        execution_match: 0,
        generation_errors: 0,
        canonical: (0, 0),
        paraphrased: (0, 0),
    };

    for ex in &benchmark.test {
        let bucket = if ex.paraphrased {
            &mut report.paraphrased
        } else {
            &mut report.canonical
        };
        bucket.1 += 1;
        let predicted = match model.generate_sql(&schemas[ex.db], &ex.question) {
            Ok(sql) => sql,
            Err(_) => {
                report.generation_errors += 1;
                continue;
            }
        };
        let em = normalize_sql(&predicted) == normalize_sql(&ex.gold_sql);
        if em {
            report.exact_match += 1;
            if ex.paraphrased {
                report.paraphrased.0 += 1;
            } else {
                report.canonical.0 += 1;
            }
        }
        let engine = &mut engines[ex.db];
        let gold_fp = execution_fingerprint(engine, &ex.gold_sql);
        let pred_fp = execution_fingerprint(engine, &predicted);
        if gold_fp.is_some() && gold_fp == pred_fp {
            report.execution_match += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::spider_like;
    use crate::model::FineTuner;

    #[test]
    fn normalisation_rules() {
        assert_eq!(
            normalize_sql("SELECT  *\nFROM t ;"),
            normalize_sql("select * from t;")
        );
        assert_ne!(normalize_sql("SELECT a FROM t"), normalize_sql("SELECT b FROM t"));
    }

    #[test]
    fn base_vs_fine_tuned_accuracy_gap() {
        let b = spider_like(21);
        let base = Text2SqlModel::base();
        let tuned =
            Text2SqlModel::fine_tuned("t2s-tuned", FineTuner::new().fit(&b.databases, &b.train));
        let base_report = evaluate(&base, &b);
        let tuned_report = evaluate(&tuned, &b);

        // Shape of the paper's fine-tuning claim: tuned wins, materially.
        assert!(
            tuned_report.em_accuracy() > base_report.em_accuracy() + 0.2,
            "tuned {} vs base {}",
            tuned_report.em_accuracy(),
            base_report.em_accuracy()
        );
        // Base handles canonical phrasing well…
        assert!(
            base_report.canonical.0 as f64 / base_report.canonical.1.max(1) as f64 > 0.8,
            "canonical {:?}",
            base_report.canonical
        );
        // …but collapses on paraphrases; the tuned model does not.
        assert!(base_report.paraphrased.0 < base_report.paraphrased.1 / 2);
        assert!(
            tuned_report.paraphrased.0 as f64 / tuned_report.paraphrased.1.max(1) as f64 > 0.7,
            "tuned paraphrased {:?}",
            tuned_report.paraphrased
        );
    }

    #[test]
    fn execution_accuracy_at_least_exact_match() {
        let b = spider_like(22);
        let tuned =
            Text2SqlModel::fine_tuned("t", FineTuner::new().fit(&b.databases, &b.train));
        let r = evaluate(&tuned, &b);
        assert!(r.execution_match >= r.exact_match);
        assert!(r.exec_accuracy() <= 1.0);
        assert_eq!(r.total, b.test.len());
    }

    #[test]
    fn errors_counted() {
        let b = spider_like(23);
        let base = Text2SqlModel::base();
        let r = evaluate(&base, &b);
        assert!(r.generation_errors > 0, "base must fail on some paraphrases");
        assert!(r.generation_errors + r.exact_match <= r.total);
    }

    #[test]
    fn empty_report_accuracy_is_zero() {
        let r = EvalReport {
            model: "m".into(),
            total: 0,
            exact_match: 0,
            execution_match: 0,
            generation_errors: 0,
            canonical: (0, 0),
            paraphrased: (0, 0),
        };
        assert_eq!(r.em_accuracy(), 0.0);
        assert_eq!(r.exec_accuracy(), 0.0);
    }
}
