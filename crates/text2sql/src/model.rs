//! The Text-to-SQL model and the fine-tuning hub (DB-GPT-Hub analog).
//!
//! A [`Text2SqlModel`] is the generation grammar plus a linker lexicon.
//! `base()` has an empty lexicon; [`FineTuner::fit`] learns one from
//! training pairs by aligning unexplained question words with the schema
//! terms of the gold SQL — the same *workflow* as LoRA fine-tuning on
//! question/SQL pairs (train on pairs → better model → deploy via SMMF),
//! with the learned parameters being lexicon weights instead of adapter
//! matrices.

use std::collections::HashSet;

use dbgpt_obs::Span;

use crate::dataset::{BenchmarkDb, Example};
use crate::error::Text2SqlError;
use crate::generator::SqlGenerator;
use crate::linker::{Lexicon, SchemaIndex, SchemaLinker};

/// A deployable Text-to-SQL model.
#[derive(Debug, Clone)]
pub struct Text2SqlModel {
    name: String,
    generator: SqlGenerator,
}

impl Text2SqlModel {
    /// The base (un-tuned) model.
    pub fn base() -> Self {
        Text2SqlModel {
            name: "t2s-base".into(),
            generator: SqlGenerator::new(),
        }
    }

    /// A fine-tuned model carrying a learned lexicon.
    pub fn fine_tuned(name: impl Into<String>, lexicon: Lexicon) -> Self {
        Text2SqlModel {
            name: name.into(),
            generator: SqlGenerator::with_linker(SchemaLinker::with_lexicon(lexicon)),
        }
    }

    /// Model name (used as the SMMF deployment name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The learned lexicon.
    pub fn lexicon(&self) -> &Lexicon {
        self.generator.linker().lexicon()
    }

    /// Generate SQL for a question given schema DDL.
    pub fn generate_sql(&self, ddl: &str, question: &str) -> Result<String, Text2SqlError> {
        let schema = SchemaIndex::from_ddl(ddl)?;
        self.generator.generate(&schema, question)
    }

    /// Traced variant of [`Text2SqlModel::generate_sql`]: records a
    /// `t2s.generate` span (with `t2s.schema` / `t2s.link_generate` stage
    /// children and `t2s.requests` / `t2s.errors` counters) as a child of
    /// `parent`. Falls back to the untraced path — byte-identically — when
    /// the parent is not recording.
    pub fn generate_sql_traced(
        &self,
        ddl: &str,
        question: &str,
        parent: &Span,
    ) -> Result<String, Text2SqlError> {
        if !parent.is_recording() {
            return self.generate_sql(ddl, question);
        }
        let obs = parent.handle();
        let span = parent.child("t2s.generate", parent.tick());
        span.attr("model", &self.name);
        obs.counter("t2s.requests", 1);
        let stage = span.child("t2s.schema", span.tick());
        let schema = match SchemaIndex::from_ddl(ddl) {
            Ok(schema) => {
                stage.end(span.tick());
                schema
            }
            Err(e) => {
                stage.attr("outcome", "error");
                stage.end(span.tick());
                span.attr("outcome", "error");
                obs.counter("t2s.errors", 1);
                span.end(span.tick());
                return Err(e);
            }
        };
        let stage = span.child("t2s.link_generate", span.tick());
        let res = self.generator.generate(&schema, question);
        stage.end(span.tick());
        match &res {
            Ok(_) => span.attr("outcome", "ok"),
            Err(_) => {
                span.attr("outcome", "error");
                obs.counter("t2s.errors", 1);
            }
        }
        span.end(span.tick());
        res
    }

    /// Generate against a pre-parsed schema (hot path for evaluation).
    pub fn generate_with_schema(
        &self,
        schema: &SchemaIndex,
        question: &str,
    ) -> Result<String, Text2SqlError> {
        self.generator.generate(schema, question)
    }
}

/// Words that carry intent, not content — never aligned by the tuner.
const INTENT_WORDS: &[&str] = &[
    "how", "many", "what", "which", "total", "sum", "average", "mean", "list", "show", "display",
    "top", "highest", "lowest", "per", "each", "with", "whose", "where", "greater", "less",
    "than", "is", "are", "there", "the", "a", "an", "of", "all", "by", "for", "in", "and",
    "distinct", "different", "unique", "not", "between",
];

/// The fine-tuner (see module docs).
#[derive(Debug, Clone, Default)]
pub struct FineTuner;

impl FineTuner {
    /// Create a tuner.
    pub fn new() -> Self {
        FineTuner
    }

    /// Learn a lexicon from training pairs.
    ///
    /// Alignment is IBM-Model-1 flavoured expectation maximisation over
    /// three passes: pass 1 distributes each unexplained question word
    /// uniformly over the gold SQL's unexplained schema terms; later
    /// passes first *consume* word/term pairs the previous lexicon already
    /// explains dominantly (e.g. "staff"→`employees`, pinned by COUNT
    /// questions whose gold mentions only the table), so residual words
    /// concentrate on residual terms ("pay"→`salary`).
    pub fn fit(&self, databases: &[BenchmarkDb], train: &[Example]) -> Lexicon {
        let base = SchemaLinker::new();
        // Pre-parse schemas and pre-extract per-example alignment inputs.
        let schemas: Vec<Option<SchemaIndex>> = databases
            .iter()
            .map(|d| SchemaIndex::from_ddl(&d.schema_ddl()).ok())
            .collect();
        let mut cases: Vec<(Vec<String>, Vec<String>)> = Vec::new();
        for ex in train {
            let Some(Some(schema)) = schemas.get(ex.db) else {
                continue;
            };
            let schema_terms: HashSet<String> = schema
                .tables
                .iter()
                .flat_map(|t| std::iter::once(t.name.clone()).chain(t.columns.iter().cloned()))
                .collect();
            let gold_terms: Vec<String> = sql_identifiers(&ex.gold_sql)
                .into_iter()
                .filter(|t| schema_terms.contains(t))
                .collect();
            if gold_terms.is_empty() {
                continue;
            }
            let q_words: Vec<String> = ex
                .question
                .split(|c: char| !c.is_alphanumeric() && c != '_')
                .filter(|w| !w.is_empty())
                .map(|w| w.to_lowercase())
                .filter(|w| !INTENT_WORDS.contains(&w.as_str()))
                .filter(|w| w.parse::<f64>().is_err())
                .collect();
            let words: Vec<String> = q_words
                .iter()
                .filter(|w| gold_terms.iter().all(|t| base.word_score(w, t) == 0.0))
                .cloned()
                .collect();
            let terms: Vec<String> = gold_terms
                .iter()
                .filter(|t| q_words.iter().all(|w| base.word_score(w, t) == 0.0))
                .cloned()
                .collect();
            if !words.is_empty() && !terms.is_empty() {
                cases.push((words, terms));
            }
        }

        let mut lexicon = Lexicon::new();
        for _pass in 0..3 {
            let mut next = Lexicon::new();
            for (words, terms) in &cases {
                // Consume pairs the previous pass explains dominantly.
                let mut remaining_terms: Vec<&String> = terms.iter().collect();
                let mut remaining_words: Vec<&String> = Vec::new();
                for w in words {
                    match dominant(&lexicon, w) {
                        Some(t) if remaining_terms.iter().any(|rt| **rt == t) => {
                            remaining_terms.retain(|rt| **rt != t);
                            next.learn(w, &t, 1.0);
                        }
                        _ => remaining_words.push(w),
                    }
                }
                if remaining_words.is_empty() || remaining_terms.is_empty() {
                    continue;
                }
                let weight = 1.0 / remaining_terms.len() as f64;
                for w in &remaining_words {
                    for t in &remaining_terms {
                        next.learn(w, t, weight);
                    }
                }
            }
            lexicon = next;
        }
        self.prune(lexicon)
    }

    /// Keep only each word's dominant association(s): entries within 60% of
    /// the word's best weight. Cuts the co-occurrence noise that uniform
    /// alignment introduces.
    fn prune(&self, lexicon: Lexicon) -> Lexicon {
        use std::collections::HashMap;
        let mut best_per_word: HashMap<&str, f64> = HashMap::new();
        for (word, _, weight) in lexicon.iter() {
            let e = best_per_word.entry(word).or_insert(0.0);
            if weight > *e {
                *e = weight;
            }
        }
        let mut pruned = Lexicon::new();
        for (word, term, weight) in lexicon.iter() {
            if weight >= best_per_word[word] * 0.6 {
                pruned.learn(word, term, weight);
            }
        }
        pruned
    }
}

/// The dominant association of `word` in `lexicon`: its best term, when
/// clearly ahead of the runner-up (ratio test).
fn dominant(lexicon: &Lexicon, word: &str) -> Option<String> {
    let mut weights: Vec<(&str, f64)> = lexicon
        .iter()
        .filter(|(w, _, _)| *w == word)
        .map(|(_, t, wgt)| (t, wgt))
        .collect();
    weights.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(b.0)));
    match weights.as_slice() {
        [] => None,
        [(t, _)] => Some(t.to_string()),
        [(t1, w1), (_, w2), ..] => (*w1 > 1.25 * w2).then(|| t1.to_string()),
    }
}

/// Lowercase identifiers appearing in a SQL string.
fn sql_identifiers(sql: &str) -> Vec<String> {
    sql.split(|c: char| !c.is_alphanumeric() && c != '_')
        .filter(|w| !w.is_empty())
        .map(|w| w.to_lowercase())
        .filter(|w| {
            !matches!(
                w.as_str(),
                "select" | "from" | "where" | "group" | "by" | "order" | "limit" | "sum"
                    | "avg" | "count" | "min" | "max" | "desc" | "asc" | "and" | "or"
            )
        })
        .filter(|w| w.parse::<f64>().is_err())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::spider_like;

    #[test]
    fn base_model_handles_canonical_questions() {
        let b = spider_like(11);
        let base = Text2SqlModel::base();
        let sql = base
            .generate_sql(&b.databases[0].schema_ddl(), "How many orders are there?")
            .unwrap();
        assert_eq!(sql, "SELECT COUNT(*) FROM orders;");
    }

    #[test]
    fn base_model_fails_on_paraphrases() {
        let b = spider_like(11);
        let base = Text2SqlModel::base();
        assert!(base
            .generate_sql(&b.databases[0].schema_ddl(), "How many purchases are there?")
            .is_err());
    }

    #[test]
    fn fine_tuner_learns_paraphrase_alignments() {
        let b = spider_like(11);
        let lexicon = FineTuner::new().fit(&b.databases, &b.train);
        assert!(!lexicon.is_empty());
        // The headline alignments must be dominant.
        assert_eq!(lexicon.best("revenue").unwrap().0, "amount");
        assert_eq!(lexicon.best("purchases").unwrap().0, "orders");
        assert_eq!(lexicon.best("staff").unwrap().0, "employees");
        assert_eq!(lexicon.best("pay").unwrap().0, "salary");
        assert_eq!(lexicon.best("checkouts").unwrap().0, "loans");
    }

    #[test]
    fn fine_tuned_model_resolves_paraphrases() {
        let b = spider_like(11);
        let lexicon = FineTuner::new().fit(&b.databases, &b.train);
        let tuned = Text2SqlModel::fine_tuned("t2s-tuned", lexicon);
        let ddl = b.databases[0].schema_ddl();
        assert_eq!(
            tuned.generate_sql(&ddl, "How many purchases are there?").unwrap(),
            "SELECT COUNT(*) FROM orders;"
        );
        assert_eq!(
            tuned
                .generate_sql(&ddl, "What is the total revenue of purchases?")
                .unwrap(),
            "SELECT SUM(amount) FROM orders;"
        );
    }

    #[test]
    fn tuned_model_does_not_regress_canonical() {
        let b = spider_like(11);
        let lexicon = FineTuner::new().fit(&b.databases, &b.train);
        let tuned = Text2SqlModel::fine_tuned("t2s-tuned", lexicon);
        let base = Text2SqlModel::base();
        let ddl = b.databases[0].schema_ddl();
        for q in [
            "How many orders are there?",
            "What is the total amount of orders?",
            "What is the total amount per category of orders?",
        ] {
            assert_eq!(
                base.generate_sql(&ddl, q).unwrap(),
                tuned.generate_sql(&ddl, q).unwrap(),
                "regression on: {q}"
            );
        }
    }

    #[test]
    fn sql_identifiers_extraction() {
        let ids = sql_identifiers("SELECT category, SUM(amount) FROM orders GROUP BY category;");
        assert!(ids.contains(&"category".to_string()));
        assert!(ids.contains(&"amount".to_string()));
        assert!(ids.contains(&"orders".to_string()));
        assert!(!ids.contains(&"select".to_string()));
        assert!(!ids.contains(&"sum".to_string()));
    }

    #[test]
    fn model_names() {
        assert_eq!(Text2SqlModel::base().name(), "t2s-base");
        assert_eq!(
            Text2SqlModel::fine_tuned("custom", Lexicon::new()).name(),
            "custom"
        );
    }
}
