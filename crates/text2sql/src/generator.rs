//! Grammar-guided SQL generation.
//!
//! The generation half of the Text-to-SQL model: a question is parsed into
//! an intent frame (aggregation, projection, filter, grouping, ordering,
//! limit), the frame's slots are filled by schema linking, and the frame is
//! rendered as canonical SQL. Grammar-guided decoding mirrors how
//! production Text-to-SQL models constrain generation to valid SQL — and
//! guarantees that everything this module emits parses on
//! `dbgpt-sqlengine`.

use crate::error::Text2SqlError;
use crate::linker::{SchemaIndex, SchemaLinker, TableInfo};

/// Aggregation intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Agg {
    Count,
    CountDistinct,
    Sum,
    Avg,
}

/// Comparison operator in a filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmpOp {
    Gt,
    Lt,
    Ge,
    Le,
    Eq,
    Neq,
    Between,
}

impl CmpOp {
    fn sql(&self) -> &'static str {
        match self {
            CmpOp::Gt => ">",
            CmpOp::Lt => "<",
            CmpOp::Ge => ">=",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Neq => "<>",
            CmpOp::Between => "BETWEEN",
        }
    }
}

/// A filter slot: column words, operator, raw value (plus the upper bound
/// for BETWEEN).
#[derive(Debug, Clone)]
struct Filter {
    col_words: Vec<String>,
    op: CmpOp,
    value: String,
    value2: Option<String>,
    value_is_text: bool,
}

/// The parsed intent frame.
#[derive(Debug, Clone, Default)]
struct Frame {
    agg: Option<Agg>,
    agg_target: Vec<String>,
    projection: Vec<String>,
    group: Option<String>,
    filter: Option<Filter>,
    limit: Option<usize>,
    order_words: Vec<String>,
    order_desc: bool,
    superlative: bool,
}

/// The generator: linker + grammar.
#[derive(Debug, Clone, Default)]
pub struct SqlGenerator {
    linker: SchemaLinker,
}

impl SqlGenerator {
    /// Generator with a base (empty-lexicon) linker.
    pub fn new() -> Self {
        SqlGenerator::default()
    }

    /// Generator with a fine-tuned linker.
    pub fn with_linker(linker: SchemaLinker) -> Self {
        SqlGenerator { linker }
    }

    /// The linker in use.
    pub fn linker(&self) -> &SchemaLinker {
        &self.linker
    }

    /// Generate canonical SQL for `question` against `schema`.
    pub fn generate(
        &self,
        schema: &SchemaIndex,
        question: &str,
    ) -> Result<String, Text2SqlError> {
        let tokens = tokenize(question);
        if tokens.is_empty() {
            return Err(Text2SqlError::UnsupportedQuestion(question.into()));
        }
        let frame = parse_frame(&tokens);

        // Link the table from every token (table nouns can be anywhere).
        let all_words: Vec<String> = tokens.iter().map(|t| t.word.clone()).collect();
        let (table, _) = self
            .linker
            .link_table(&all_words, schema)
            .ok_or_else(|| Text2SqlError::NoTableMatch(question.into()))?;

        self.render(schema, table, &frame, question)
    }

    fn render(
        &self,
        schema: &SchemaIndex,
        table: &TableInfo,
        frame: &Frame,
        question: &str,
    ) -> Result<String, Text2SqlError> {
        // WHERE clause.
        let where_clause = match &frame.filter {
            Some(f) => {
                let (col, _) = self
                    .linker
                    .link_column_multi(&f.col_words, table)
                    .ok_or_else(|| Text2SqlError::NoColumnMatch(f.col_words.join(" ")))?;
                let value = if f.value_is_text {
                    format!("'{}'", f.value.replace('\'', "''"))
                } else {
                    f.value.clone()
                };
                match (&f.op, &f.value2) {
                    (CmpOp::Between, Some(hi)) => {
                        Some(format!("{col} BETWEEN {value} AND {hi}"))
                    }
                    _ => Some(format!("{col} {} {value}", f.op.sql())),
                }
            }
            None => None,
        };

        // GROUP BY column.
        let group_col = match &frame.group {
            Some(g) => Some(
                self.linker
                    .link_column(g, table)
                    .map(|(c, _)| c.to_string())
                    .ok_or_else(|| Text2SqlError::NoColumnMatch(g.clone()))?,
            ),
            None => None,
        };

        // Aggregation expression.
        let agg_expr = match frame.agg {
            Some(Agg::Count) => Some("COUNT(*)".to_string()),
            Some(Agg::CountDistinct) => {
                let (col, _) = self
                    .linker
                    .link_column_multi(&frame.agg_target, table)
                    .ok_or_else(|| Text2SqlError::NoColumnMatch(frame.agg_target.join(" ")))?;
                Some(format!("COUNT(DISTINCT {col})"))
            }
            Some(agg) => {
                let linked = self
                    .linker
                    .link_column_multi(&frame.agg_target, table)
                    .map(|(c, _)| c.to_string());
                // "total of orders" names no column at all: default to the
                // table's first non-id numeric column. (A *named but
                // unlinkable* column is still an error — that failure mode
                // is what fine-tuning fixes.)
                let col = match (linked, frame.agg_target.is_empty()) {
                    (Some(c), _) => c,
                    (None, true) => first_numeric_column(schema, table).ok_or_else(|| {
                        Text2SqlError::NoColumnMatch("aggregate target".into())
                    })?,
                    (None, false) => {
                        return Err(Text2SqlError::NoColumnMatch(frame.agg_target.join(" ")))
                    }
                };
                let f = match agg {
                    Agg::Sum => "SUM",
                    Agg::Avg => "AVG",
                    Agg::Count | Agg::CountDistinct => unreachable!(),
                };
                Some(format!("{f}({col})"))
            }
            None => None,
        };

        let mut sql = String::from("SELECT ");
        if let Some(agg) = &agg_expr {
            match &group_col {
                Some(g) => sql.push_str(&format!("{g}, {agg}")),
                None => sql.push_str(agg),
            }
        } else if frame.superlative || frame.limit.is_some() {
            // Ranked entity queries project the label column(s).
            if !frame.projection.is_empty() {
                let (col, _) = self
                    .linker
                    .link_column_multi(&frame.projection, table)
                    .ok_or_else(|| Text2SqlError::NoColumnMatch(frame.projection.join(" ")))?;
                sql.push_str(col);
            } else {
                sql.push_str(label_column(table));
            }
        } else if !frame.projection.is_empty() {
            let (col, _) = self
                .linker
                .link_column_multi(&frame.projection, table)
                .ok_or_else(|| Text2SqlError::NoColumnMatch(frame.projection.join(" ")))?;
            sql.push_str(col);
        } else {
            sql.push('*');
        }
        sql.push_str(&format!(" FROM {}", table.name));
        if let Some(w) = where_clause {
            sql.push_str(&format!(" WHERE {w}"));
        }
        if let Some(g) = &group_col {
            sql.push_str(&format!(" GROUP BY {g}"));
        }

        // ORDER BY for superlatives / top-k.
        if frame.superlative || frame.limit.is_some() {
            let order_col = self
                .linker
                .link_column_multi(&frame.order_words, table)
                .map(|(c, _)| c.to_string())
                // "most expensive" carries no column word: fall back to the
                // table's first non-id numeric column.
                .or_else(|| first_numeric_column(schema, table))
                .ok_or_else(|| {
                    Text2SqlError::NoColumnMatch(format!("order column in: {question}"))
                })?;
            sql.push_str(&format!(
                " ORDER BY {order_col} {}",
                if frame.order_desc { "DESC" } else { "ASC" }
            ));
            sql.push_str(&format!(" LIMIT {}", frame.limit.unwrap_or(1)));
        }
        sql.push(';');
        Ok(sql)
    }
}

/// The label column of a table: `name` if present, else the first TEXT
/// column, else the first column.
fn label_column(table: &TableInfo) -> &str {
    if table.columns.iter().any(|c| c == "name") {
        return "name";
    }
    for (c, t) in table.columns.iter().zip(&table.types) {
        if t == "TEXT" {
            return c;
        }
    }
    &table.columns[0]
}

/// First INT/FLOAT column that is not an id.
fn first_numeric_column(schema: &SchemaIndex, table: &TableInfo) -> Option<String> {
    table
        .columns
        .iter()
        .find(|c| !c.ends_with("id") && schema.is_numeric(&table.name, c))
        .cloned()
}

/// A question token: the lowercased word, plus literal flags.
#[derive(Debug, Clone)]
struct QToken {
    word: String,
    is_number: bool,
    is_quoted: bool,
}

/// Tokenize, keeping quoted spans as single literal tokens.
fn tokenize(question: &str) -> Vec<QToken> {
    let mut out = Vec::new();
    let mut chars = question.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\'' || c == '"' {
            let quote = c;
            let mut lit = String::new();
            for nc in chars.by_ref() {
                if nc == quote {
                    break;
                }
                lit.push(nc);
            }
            out.push(QToken {
                word: lit,
                is_number: false,
                is_quoted: true,
            });
        } else if c.is_alphanumeric() || c == '_' || c == '.' || c == '-' {
            let mut w = String::new();
            w.push(c);
            while let Some(&nc) = chars.peek() {
                if nc.is_alphanumeric() || nc == '_' || nc == '.' {
                    w.push(nc);
                    chars.next();
                } else {
                    break;
                }
            }
            // Trailing sentence punctuation is not part of the word
            // ('.' is only kept for decimals like 5.5).
            while w.ends_with('.') {
                w.pop();
            }
            if w.is_empty() {
                continue;
            }
            let is_number = w.parse::<f64>().is_ok();
            out.push(QToken {
                word: w.to_lowercase(),
                is_number,
                is_quoted: false,
            });
        }
        // punctuation/whitespace: skip
    }
    out
}

/// Words spelled as numbers, for "top five products".
fn number_word(w: &str) -> Option<usize> {
    match w {
        "one" => Some(1),
        "two" => Some(2),
        "three" => Some(3),
        "four" => Some(4),
        "five" => Some(5),
        "six" => Some(6),
        "seven" => Some(7),
        "eight" => Some(8),
        "nine" => Some(9),
        "ten" => Some(10),
        _ => None,
    }
}

/// Noise words that never carry linkable content.
const NOISE: &[&str] = &[
    "the", "a", "an", "of", "all", "are", "is", "there", "what", "which", "who", "show", "list",
    "display", "give", "me", "find", "get", "their", "that", "have", "has", "do", "does", "each",
    "in", "on", "and", "please", "how", "many", "much",
];

fn content_words(tokens: &[QToken]) -> Vec<String> {
    tokens
        .iter()
        .filter(|t| !t.is_number && !t.is_quoted && !NOISE.contains(&t.word.as_str()))
        .map(|t| t.word.clone())
        .collect()
}

/// Parse the intent frame out of the token stream.
fn parse_frame(tokens: &[QToken]) -> Frame {
    let mut frame = Frame::default();
    let words: Vec<&str> = tokens.iter().map(|t| t.word.as_str()).collect();

    // ---- filter clause: with/whose/where … <op> <value> ----
    let mut main_end = tokens.len();
    if let Some(i) = words
        .iter()
        .position(|w| matches!(*w, "with" | "whose" | "where"))
    {
        let clause = &tokens[i + 1..];
        if let Some(f) = parse_filter(clause) {
            frame.filter = Some(f);
            main_end = i;
        }
    }
    let main = &tokens[..main_end];
    let mwords: Vec<&str> = main.iter().map(|t| t.word.as_str()).collect();

    // ---- grouping: per X / for each X / in each X ----
    let mut group_consumed: Option<usize> = None;
    for (i, w) in mwords.iter().enumerate() {
        if *w == "per" && i + 1 < main.len() {
            frame.group = Some(main[i + 1].word.clone());
            group_consumed = Some(i);
            break;
        }
        if *w == "each" && i + 1 < main.len() && i > 0 && matches!(mwords[i - 1], "for" | "in") {
            frame.group = Some(main[i + 1].word.clone());
            group_consumed = Some(i - 1);
            break;
        }
    }
    let main: Vec<QToken> = match group_consumed {
        Some(i) => main[..i].to_vec(),
        None => main.to_vec(),
    };
    let mwords: Vec<&str> = main.iter().map(|t| t.word.as_str()).collect();

    // ---- top-k: "top K Xs by C" ----
    if let Some(i) = mwords.iter().position(|w| *w == "top") {
        if i + 1 < main.len() {
            let k = if main[i + 1].is_number {
                main[i + 1].word.parse::<usize>().ok()
            } else {
                number_word(&main[i + 1].word)
            };
            if let Some(k) = k {
                frame.limit = Some(k);
                frame.order_desc = true;
                frame.superlative = true;
                // "by <col>" after the noun.
                if let Some(j) = mwords[i..].iter().position(|w| *w == "by") {
                    frame.order_words = content_words(&main[i + j + 1..]);
                }
            }
        }
    }

    // ---- superlatives ----
    for (i, w) in mwords.iter().enumerate() {
        if matches!(*w, "highest" | "largest" | "biggest" | "most" | "maximum") {
            frame.superlative = true;
            frame.order_desc = true;
            frame.order_words = content_words(&main[i + 1..]);
        }
        if matches!(*w, "lowest" | "smallest" | "minimum" | "least" | "cheapest") {
            frame.superlative = true;
            frame.order_desc = false;
            frame.order_words = content_words(&main[i + 1..]);
        }
    }

    // ---- aggregation ----
    if mwords.windows(2).any(|w| w == ["how", "many"]) {
        // "how many different/distinct/unique Xs" → COUNT(DISTINCT x).
        if let Some(i) = mwords
            .iter()
            .position(|w| matches!(*w, "different" | "distinct" | "unique"))
        {
            frame.agg = Some(Agg::CountDistinct);
            frame.agg_target = agg_target_words(&main[i + 1..]);
        } else {
            frame.agg = Some(Agg::Count);
        }
    } else if let Some(i) = mwords.iter().position(|w| matches!(*w, "total" | "sum")) {
        frame.agg = Some(Agg::Sum);
        frame.agg_target = agg_target_words(&main[i + 1..]);
    } else if let Some(i) = mwords.iter().position(|w| matches!(*w, "average" | "mean")) {
        frame.agg = Some(Agg::Avg);
        frame.agg_target = agg_target_words(&main[i + 1..]);
    }

    // ---- projection: "show/list the C of X" ----
    if frame.agg.is_none() {
        if let Some(i) = mwords
            .iter()
            .position(|w| matches!(*w, "show" | "list" | "display" | "what" | "give"))
        {
            // words between the verb and "of" form a candidate projection.
            if let Some(j) = mwords[i..].iter().position(|w| *w == "of") {
                let words = content_words(&main[i + 1..i + j]);
                if !words.is_empty() {
                    frame.projection = words;
                }
            }
        }
    }

    frame
}

/// Target words of an aggregate: everything up to a boundary keyword.
fn agg_target_words(tokens: &[QToken]) -> Vec<String> {
    let mut out = Vec::new();
    for t in tokens {
        if matches!(
            t.word.as_str(),
            "of" | "per" | "for" | "in" | "with" | "whose" | "where" | "by"
        ) {
            if !out.is_empty() {
                break;
            }
            continue;
        }
        if NOISE.contains(&t.word.as_str()) || t.is_number || t.is_quoted {
            continue;
        }
        out.push(t.word.clone());
        if out.len() >= 3 {
            break;
        }
    }
    out
}

/// Parse the filter tail: `<col words> <op words> <value>`.
fn parse_filter(tokens: &[QToken]) -> Option<Filter> {
    // Locate the operator.
    let words: Vec<&str> = tokens.iter().map(|t| t.word.as_str()).collect();
    let mut op: Option<(usize, usize, CmpOp)> = None; // (start, len, op)
    for i in 0..words.len() {
        let found = match words[i] {
            "greater" | "more" | "bigger" | "larger" => Some((2.min(words.len() - i), CmpOp::Gt)),
            "over" | "above" | "exceeding" => Some((1, CmpOp::Gt)),
            "less" | "fewer" | "smaller" => Some((2.min(words.len() - i), CmpOp::Lt)),
            "under" | "below" => Some((1, CmpOp::Lt)),
            "at" if words.get(i + 1) == Some(&"least") => Some((2, CmpOp::Ge)),
            "at" if words.get(i + 1) == Some(&"most") => Some((2, CmpOp::Le)),
            "between" => Some((1, CmpOp::Between)),
            "is" if words.get(i + 1) == Some(&"not") => Some((2, CmpOp::Neq)),
            "not" => Some((1, CmpOp::Neq)),
            "is" | "equals" | "equal" | "being" => Some((1, CmpOp::Eq)),
            _ => None,
        };
        if let Some((len, op_kind)) = found {
            // Swallow the second word of two-word operators ("greater
            // than", "at least", "is not", …).
            let mut l = 1;
            if len == 2
                && matches!(
                    words.get(i + 1),
                    Some(&"than") | Some(&"least") | Some(&"most") | Some(&"to") | Some(&"not")
                )
            {
                l = 2;
            }
            op = Some((i, l, op_kind));
            break;
        }
    }
    let (op_start, op_len, op_kind) = op?;
    let col_words: Vec<String> = content_words(&tokens[..op_start]);
    if col_words.is_empty() {
        return None;
    }
    // Value: the first number/quoted token after the operator, else the
    // remaining words joined (unquoted text value).
    let tail = &tokens[op_start + op_len..];
    if op_kind == CmpOp::Between {
        // Two numeric bounds: "between 10 and 50".
        let nums: Vec<&QToken> = tail.iter().filter(|t| t.is_number).take(2).collect();
        let [lo, hi] = nums.as_slice() else {
            return None;
        };
        return Some(Filter {
            col_words,
            op: CmpOp::Between,
            value: lo.word.clone(),
            value2: Some(hi.word.clone()),
            value_is_text: false,
        });
    }
    let value_tok = tail.iter().find(|t| t.is_number || t.is_quoted);
    let (value, value_is_text) = match value_tok {
        Some(t) => (t.word.clone(), t.is_quoted),
        None => {
            let rest: Vec<String> = tail
                .iter()
                .filter(|t| !NOISE.contains(&t.word.as_str()))
                .map(|t| t.word.clone())
                .collect();
            if rest.is_empty() {
                return None;
            }
            (rest.join(" "), true)
        }
    };
    Some(Filter {
        col_words,
        op: op_kind,
        value,
        value2: None,
        value_is_text,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DDL: &str = "CREATE TABLE orders (id INT, user_id INT, amount FLOAT, category TEXT, month TEXT);\n\
                       CREATE TABLE products (id INT, name TEXT, price FLOAT, stock INT);";

    fn gen(question: &str) -> String {
        let schema = SchemaIndex::from_ddl(DDL).unwrap();
        SqlGenerator::new().generate(&schema, question).unwrap()
    }

    #[test]
    fn count_star() {
        assert_eq!(gen("How many orders are there?"), "SELECT COUNT(*) FROM orders;");
    }

    #[test]
    fn sum_column() {
        assert_eq!(
            gen("What is the total amount of orders?"),
            "SELECT SUM(amount) FROM orders;"
        );
    }

    #[test]
    fn avg_column() {
        assert_eq!(
            gen("What is the average price of products?"),
            "SELECT AVG(price) FROM products;"
        );
    }

    #[test]
    fn list_all() {
        assert_eq!(gen("List all products."), "SELECT * FROM products;");
    }

    #[test]
    fn numeric_filter() {
        assert_eq!(
            gen("List orders with amount greater than 100"),
            "SELECT * FROM orders WHERE amount > 100;"
        );
        assert_eq!(
            gen("List products with price less than 5.5"),
            "SELECT * FROM products WHERE price < 5.5;"
        );
        assert_eq!(
            gen("List products with stock at least 3"),
            "SELECT * FROM products WHERE stock >= 3;"
        );
    }

    #[test]
    fn count_distinct_question() {
        assert_eq!(
            gen("How many distinct categories of orders are there?"),
            "SELECT COUNT(DISTINCT category) FROM orders;"
        );
        assert_eq!(
            gen("How many different months are there in orders?"),
            "SELECT COUNT(DISTINCT month) FROM orders;"
        );
    }

    #[test]
    fn between_filter() {
        assert_eq!(
            gen("List orders with amount between 50 and 200"),
            "SELECT * FROM orders WHERE amount BETWEEN 50 AND 200;"
        );
    }

    #[test]
    fn negated_equality_filter() {
        assert_eq!(
            gen("List orders whose category is not 'books'"),
            "SELECT * FROM orders WHERE category <> 'books';"
        );
        assert_eq!(
            gen("List orders whose category is not books"),
            "SELECT * FROM orders WHERE category <> 'books';"
        );
    }

    #[test]
    fn text_filter_quoted_and_bare() {
        assert_eq!(
            gen("List orders whose category is 'books'"),
            "SELECT * FROM orders WHERE category = 'books';"
        );
        assert_eq!(
            gen("List orders whose category is books"),
            "SELECT * FROM orders WHERE category = 'books';"
        );
    }

    #[test]
    fn group_by_sum() {
        assert_eq!(
            gen("What is the total amount per category of orders?"),
            "SELECT category, SUM(amount) FROM orders GROUP BY category;"
        );
    }

    #[test]
    fn group_by_count() {
        assert_eq!(
            gen("How many orders per month?"),
            "SELECT month, COUNT(*) FROM orders GROUP BY month;"
        );
        assert_eq!(
            gen("How many orders for each month?"),
            "SELECT month, COUNT(*) FROM orders GROUP BY month;"
        );
    }

    #[test]
    fn superlative() {
        assert_eq!(
            gen("Which product has the highest price?"),
            "SELECT name FROM products ORDER BY price DESC LIMIT 1;"
        );
        assert_eq!(
            gen("Which product has the lowest stock?"),
            "SELECT name FROM products ORDER BY stock ASC LIMIT 1;"
        );
    }

    #[test]
    fn top_k() {
        assert_eq!(
            gen("Show the top 3 products by price"),
            "SELECT name FROM products ORDER BY price DESC LIMIT 3;"
        );
        assert_eq!(
            gen("Show the top five products by stock"),
            "SELECT name FROM products ORDER BY stock DESC LIMIT 5;"
        );
    }

    #[test]
    fn projection_with_filter() {
        assert_eq!(
            gen("Show the price of products with stock greater than 10"),
            "SELECT price FROM products WHERE stock > 10;"
        );
    }

    #[test]
    fn superlative_defaults_to_first_numeric_non_id() {
        // "most expensive" has no direct column word; falls to price.
        assert_eq!(
            gen("Which product is the most expensive one?"),
            "SELECT name FROM products ORDER BY price DESC LIMIT 1;"
        );
    }

    #[test]
    fn unknown_table_errors() {
        let schema = SchemaIndex::from_ddl(DDL).unwrap();
        let e = SqlGenerator::new()
            .generate(&schema, "how many quasars are there?")
            .unwrap_err();
        assert!(matches!(e, Text2SqlError::NoTableMatch(_)));
    }

    #[test]
    fn unlinkable_column_errors() {
        let schema = SchemaIndex::from_ddl(DDL).unwrap();
        let e = SqlGenerator::new()
            .generate(&schema, "what is the total revenue of orders?")
            .unwrap_err();
        assert!(matches!(e, Text2SqlError::NoColumnMatch(_)));
    }

    #[test]
    fn generated_sql_parses_on_engine() {
        let sqls = [
            gen("How many orders are there?"),
            gen("What is the total amount per category of orders?"),
            gen("Show the top 3 products by price"),
            gen("List orders with amount greater than 100"),
        ];
        for sql in sqls {
            assert!(
                dbgpt_sqlengine::parser::parse(&sql).is_ok(),
                "does not parse: {sql}"
            );
        }
    }

    #[test]
    fn fine_tuned_linker_resolves_paraphrase() {
        use crate::linker::Lexicon;
        let schema = SchemaIndex::from_ddl(DDL).unwrap();
        let mut lex = Lexicon::new();
        lex.learn("revenue", "amount", 3.0);
        let tuned = SqlGenerator::with_linker(SchemaLinker::with_lexicon(lex));
        assert_eq!(
            tuned.generate(&schema, "what is the total revenue of orders?").unwrap(),
            "SELECT SUM(amount) FROM orders;"
        );
    }
}
