#![warn(missing_docs)]

//! # dbgpt-text2sql — Text-to-SQL, SQL-to-Text, and the fine-tuning hub
//!
//! DB-GPT ships "specialized fine-tuning of Text-to-SQL Large Language
//! Models" through its DB-GPT-Hub component (paper §2.5): users refine a
//! base model on their own Text-to-SQL pairs and deploy the result locally
//! through SMMF. This crate reproduces that whole workflow:
//!
//! - [`linker`] — schema linking: match question tokens to tables/columns,
//!   with a *learnable lexicon* (the fine-tunable part).
//! - [`generator`] — grammar-guided SQL generation: aggregation detection,
//!   filters, GROUP BY, ORDER BY/LIMIT, assembled into SQL that
//!   `dbgpt-sqlengine` executes.
//! - [`model`] — [`Text2SqlModel`]: base vs fine-tuned variants, plus
//!   [`model::FineTuner`], which learns question-word → schema-term
//!   alignments from training pairs (the offline stand-in for LoRA
//!   fine-tuning: same workflow, measurable accuracy gain).
//! - [`skill`] — exposes a model as a [`dbgpt_llm::PromptSkill`] so it can
//!   be served through SMMF like any other LLM.
//! - [`sql_to_text`](mod@sql_to_text) — the reverse direction (Table 1's "SQL-to-Text").
//! - [`dataset`] — a deterministic Spider-style benchmark over three
//!   domains with paraphrased test questions (why fine-tuning helps).
//! - [`eval`] — exact-match and execution accuracy (experiment E1).
//!
//! ## Quickstart
//!
//! ```
//! use dbgpt_text2sql::{dataset, Text2SqlModel};
//!
//! let bench = dataset::spider_like(7);
//! let base = Text2SqlModel::base();
//! let sql = base.generate_sql(&bench.databases[0].schema_ddl(),
//!                             "How many orders are there?").unwrap();
//! assert_eq!(sql, "SELECT COUNT(*) FROM orders;");
//! ```

pub mod dataset;
pub mod error;
pub mod eval;
pub mod generator;
pub mod linker;
pub mod model;
pub mod skill;
pub mod sql_to_text;

pub use dataset::{Benchmark, BenchmarkDb, Example};
pub use error::Text2SqlError;
pub use eval::{evaluate, EvalReport};
pub use linker::{Lexicon, SchemaIndex, SchemaLinker};
pub use model::{FineTuner, Text2SqlModel};
pub use skill::Text2SqlSkill;
pub use sql_to_text::sql_to_text;
