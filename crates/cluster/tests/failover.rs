//! Failover tests (ISSUE satellite): a primary crash mid-run loses no
//! acknowledged write, the recovered cluster's state matches an
//! unfaulted run, and report generation is byte-identical across runs.

use dbgpt_smmf::{NodeFault, NodeFaultEvent, NodeSchedule};

use dbgpt_cluster::scenario::{run_cluster_scenario, ClusterScenario};
use dbgpt_cluster::{ClusterConfig, TrafficConfig};

fn scn(name: &str, schedule: NodeSchedule, failover: bool) -> ClusterScenario {
    ClusterScenario {
        name: name.into(),
        traffic: TrafficConfig::standard(400, 8, 1234),
        cluster: ClusterConfig {
            failover,
            ..ClusterConfig::replicated(5, 3, 1234)
        },
        schedule,
        snapshot_every_us: 2_000_000,
        slo_us: 200_000,
        profile_requests: 0,
    }
}

/// Crash node 1 a third of the way in, restart it at two thirds. The
/// arrival schedule for 400 requests at ~50ms mean spans ~20s.
fn crash_schedule() -> NodeSchedule {
    NodeSchedule::crash_restart(1, 7_000_000, 14_000_000)
}

#[test]
fn primary_crash_loses_no_acked_write() {
    let r = run_cluster_scenario(&scn("crash", crash_schedule(), true));
    // Every arrival acked (failover skips the dead node, R=3 keeps
    // quorum), and every tenant's full acked log survived on a serving
    // replica without end-of-run repair.
    assert_eq!(r.report.failed, 0, "failover must mask the crash");
    assert_eq!(r.report.ok, r.report.requests);
    assert_eq!(r.report.durable_tenants, r.report.tenants);
    assert_eq!(r.report.divergent_replicas, 0);
    assert_eq!(r.report.acked_ops, r.report.ok);
    // The restarted node replayed what it missed.
    assert!(r.report.catchup_ops > 0, "restart must trigger catch-up");
    assert!(r.report.failovers > 0, "crash must trigger an election");
}

#[test]
fn recovered_state_matches_unfaulted_run() {
    let faulted = run_cluster_scenario(&scn("crash", crash_schedule(), true));
    let clean = run_cluster_scenario(&scn("crash", NodeSchedule::healthy(), true));
    // Same arrivals, zero failures on both sides → identical acked op
    // logs → identical converged shard state, fault or no fault.
    assert_eq!(faulted.report.acked_ops, clean.report.acked_ops);
    assert_eq!(
        faulted.report.state_fingerprint, clean.report.state_fingerprint,
        "recovered state must equal the unfaulted run's state"
    );
}

#[test]
fn without_failover_the_same_schedule_degrades() {
    let with = run_cluster_scenario(&scn("crash", crash_schedule(), true));
    let without = run_cluster_scenario(&scn("crash", crash_schedule(), false));
    assert_eq!(with.report.failed, 0);
    assert!(
        without.report.failed > 0,
        "requests to the dead primary must fail without failover"
    );
    assert!(without.report.availability < with.report.availability);
}

#[test]
fn reports_are_byte_identical_across_runs() {
    let a = run_cluster_scenario(&scn("crash", crash_schedule(), true));
    let b = run_cluster_scenario(&scn("crash", crash_schedule(), true));
    assert_eq!(a.report.to_json(), b.report.to_json());
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.folded, b.folded);
}

#[test]
fn partition_heals_without_divergence() {
    // One node partitioned away for a window: its shards keep quorum
    // (2 of 3), the minority node misses ops, then catches up on heal.
    let schedule = NodeSchedule::partition(vec![2], 5_000_000, 12_000_000);
    let r = run_cluster_scenario(&scn("partition", schedule, true));
    assert_eq!(r.report.failed, 0, "majority side must keep serving");
    assert_eq!(r.report.divergent_replicas, 0);
    assert_eq!(r.report.durable_tenants, r.report.tenants);
    assert!(r.report.catchup_ops > 0, "minority must replay missed ops");
}

#[test]
fn combined_chaos_stays_consistent() {
    // The smmf combined schedule overlaps a crash with a partition —
    // quorum is lost for shards touching both nodes, so some requests
    // fail even with failover; consistency must still hold.
    let schedule = NodeSchedule::combined(1, 2, 3, 4_000_000);
    let r = run_cluster_scenario(&scn("combined", schedule, true));
    assert_eq!(r.report.divergent_replicas, 0);
    assert_eq!(r.report.durable_tenants, r.report.tenants);
    let failed_frac = r.report.failed as f64 / r.report.requests as f64;
    assert!(
        failed_frac < 0.5,
        "failover should mask most of the chaos ({failed_frac})"
    );
}

#[test]
fn acked_loss_is_zero_even_when_the_crash_is_permanent() {
    // Crash with no restart: the surviving replicas must already hold
    // every acked op (quorum ack), no catch-up from the victim needed.
    let schedule = NodeSchedule {
        name: "permacrash",
        events: vec![NodeFaultEvent {
            at_us: 7_000_000,
            fault: NodeFault::CrashNode { node: 1 },
        }],
    };
    let r = run_cluster_scenario(&scn("permacrash", schedule, true));
    assert_eq!(r.report.failed, 0);
    assert_eq!(r.report.durable_tenants, r.report.tenants);
    assert_eq!(r.report.divergent_replicas, 0);
}
