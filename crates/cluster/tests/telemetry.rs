//! End-to-end gates for the cluster-wide telemetry pipeline: disabled
//! telemetry is byte-free, enabled telemetry yields one cross-node trace
//! tree per request, tail sampling honors its budget while retaining
//! every error trace, and the SQL store answers exactly like the
//! in-memory aggregator.

use std::collections::BTreeMap;

use dbgpt_cluster::telemetry::{
    run_telemetry_scenario, store_matches_oracle, TelemetryScenario,
};
use dbgpt_cluster::{
    generate, materialize_store, Cluster, ClusterConfig, Outcome, TelemetryConfig, TrafficConfig,
};
use dbgpt_obs::SamplePolicy;
use proptest::prelude::*;

fn traced_cluster(requests: usize, seed: u64) -> (Cluster, Vec<dbgpt_cluster::RequestOutcome>) {
    let cfg = ClusterConfig::replicated(3, 2, seed);
    let mut cluster = Cluster::with_telemetry(cfg, TelemetryConfig::enabled(seed));
    let arrivals = generate(&TrafficConfig::standard(requests, 4, seed));
    let outcomes = arrivals.iter().map(|a| cluster.handle(a, None)).collect();
    (cluster, outcomes)
}

#[test]
fn disabled_telemetry_is_outcome_identical_and_span_free() {
    let cfg = ClusterConfig::replicated(3, 2, 77);
    let arrivals = generate(&TrafficConfig::standard(60, 4, 77));

    let mut plain = Cluster::new(cfg.clone());
    let mut explicit = Cluster::with_telemetry(cfg, TelemetryConfig::disabled());
    for a in &arrivals {
        assert_eq!(plain.handle(a, None), explicit.handle(a, None));
    }
    let t = explicit.collect(&SamplePolicy::keep_all(), &[]);
    assert_eq!(t.spans_total, 0, "disabled tracers record nothing");
    assert_eq!(explicit.usage().tenant_count(), 0, "no metering either");
    assert_eq!(
        plain.verify_consistency().fingerprint,
        explicit.verify_consistency().fingerprint
    );
}

#[test]
fn every_ok_request_is_one_cross_node_trace_tree() {
    let (cluster, outcomes) = traced_cluster(40, 11);
    let ok = outcomes
        .iter()
        .filter(|o| matches!(o.outcome, Outcome::Ok { .. }))
        .count() as u64;
    let t = cluster.collect(&SamplePolicy::keep_all(), &[]);

    assert_eq!(t.traces_total, outcomes.len() as u64, "one trace per request");
    // Every acked request's trace spans gateway + primary + one replica.
    let ok_traces: Vec<_> = t
        .summaries
        .iter()
        .filter(|s| s.root_name == "gateway.request" && !s.error)
        .collect();
    assert_eq!(ok_traces.len() as u64, ok);
    for s in &ok_traces {
        assert!(
            s.node_count >= 3,
            "trace {:016x} spans only {} dumps",
            s.trace,
            s.node_count
        );
        assert!(!s.tenant.is_empty(), "trace carries its tenant");
        // gateway.request + node.serve + smmf.chat subtree + sql spans
        // + replicate hop + replica apply.
        assert!(s.span_count >= 6, "rich tree, got {}", s.span_count);
    }

    // The tree is properly parented: every kept non-root span's parent
    // exists in the same trace.
    let mut ids: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for ts in &t.spans {
        ids.entry(ts.span.trace).or_default().push(ts.span.id);
    }
    for ts in &t.spans {
        if let Some(p) = ts.span.parent {
            assert!(
                ids.get(&ts.span.trace).is_some_and(|v| v.contains(&p)),
                "span {:016x} orphaned from parent {:016x}",
                ts.span.id,
                p
            );
        }
    }
}

#[test]
fn node_spans_land_on_their_own_tracers() {
    let (cluster, _) = traced_cluster(20, 5);
    let t = cluster.collect(&SamplePolicy::keep_all(), &[]);
    let mut by_node: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for ts in &t.spans {
        by_node.entry(ts.node.as_str()).or_default().push(ts.span.name.as_str());
    }
    assert!(by_node["gateway"].iter().all(|n| *n == "gateway.request"));
    let node_names: Vec<&str> = by_node
        .iter()
        .filter(|(k, _)| k.starts_with("node-"))
        .flat_map(|(_, v)| v.iter().copied())
        .collect();
    assert!(node_names.contains(&"node.serve"));
    assert!(node_names.contains(&"node.apply"), "replica apply traced");
    assert!(node_names.contains(&"smmf.chat"), "real chat span joined");
    assert!(node_names.contains(&"sql.execute"), "audit INSERT traced");
    assert!(!node_names.contains(&"gateway.request"));
}

#[test]
fn budget_holds_and_errors_always_survive() {
    // Crash node 1 mid-run: shards replicated on it lose quorum.
    let mut scn = TelemetryScenario::faulted(120, 4, 13);
    scn.policy = SamplePolicy::budgeted(400, 8, 100, 13);
    let run = run_telemetry_scenario(&scn);
    let r = &run.report;

    assert!(r.failed > 0, "the fault must produce real failures");
    assert!(r.error_traces > 0);
    assert_eq!(
        r.error_traces, r.error_traces_kept,
        "100% error-trace retention"
    );
    assert!(r.spans_kept <= 400 || r.kept_error == r.traces_kept,
        "only error overflow may pass the budget");
    assert!(r.traces_kept < r.traces_total, "sampling actually dropped");
    assert_eq!(
        r.dropped_by_budget + r.dropped_by_sampling,
        r.traces_total - r.traces_kept,
        "every drop is accounted"
    );
    assert!(run.tenant_view.contains("tenant-000"));
}

#[test]
fn sql_store_matches_in_memory_aggregator() {
    let (cluster, _) = traced_cluster(50, 29);
    let t = cluster.collect(&SamplePolicy::keep_all(), &[]);
    let usage = cluster.usage().clone();
    let mut engine = materialize_store(&t, &usage);
    for name in ["node.serve", "smmf.chat", "sql.execute", "gateway.request"] {
        assert!(
            store_matches_oracle(&mut engine, &t, name, 5),
            "SQL disagrees with oracle for {name}"
        );
    }
}

#[test]
fn telemetry_report_is_deterministic() {
    let scn = TelemetryScenario::faulted(80, 3, 41);
    let a = run_telemetry_scenario(&scn);
    let b = run_telemetry_scenario(&scn);
    assert_eq!(a.report.to_json(), b.report.to_json());
    assert_eq!(a.tenant_view, b.tenant_view);
    assert_eq!(a.alert_windows, b.alert_windows);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Telemetry-off must be invisible: for any small traffic shape the
    /// outcome stream equals the plain cluster's, request for request.
    #[test]
    fn disabled_path_identical_for_any_traffic(
        requests in 5usize..40,
        tenants in 1usize..6,
        seed in 0u64..1000,
    ) {
        let cfg = ClusterConfig::replicated(3, 2, seed);
        let arrivals = generate(&TrafficConfig::standard(requests, tenants, seed));
        let mut plain = Cluster::new(cfg.clone());
        let mut gated = Cluster::with_telemetry(cfg, TelemetryConfig::disabled());
        for a in &arrivals {
            prop_assert_eq!(plain.handle(a, None), gated.handle(a, None));
        }
        prop_assert_eq!(
            plain.metrics.snapshot().to_json(),
            gated.metrics.snapshot().to_json()
        );
    }
}
