//! Identity gate (ISSUE acceptance criterion): a healthy 1-node cluster
//! with replication and admission disabled must produce results
//! identical to the single-server path — the cluster layer costs
//! nothing until its features are turned on.

use dbgpt_smmf::NodeSchedule;

use dbgpt_cluster::scenario::{
    run_cluster_scenario, run_single_server_baseline, ClusterScenario,
};
use dbgpt_cluster::{ClusterConfig, Outcome, TrafficConfig};

fn identity_scenario(requests: usize, tenants: usize, seed: u64) -> ClusterScenario {
    ClusterScenario {
        name: "single-node-identity".into(),
        traffic: TrafficConfig::standard(requests, tenants, seed),
        cluster: ClusterConfig::single_node(seed),
        schedule: NodeSchedule::healthy(),
        snapshot_every_us: 0,
        slo_us: 200_000,
        profile_requests: 0,
    }
}

#[test]
fn single_node_cluster_matches_single_server_byte_for_byte() {
    for seed in [7u64, 42, 20240808] {
        let scn = identity_scenario(300, 6, seed);
        let cluster = run_cluster_scenario(&scn);
        let baseline = run_single_server_baseline(&scn.traffic, seed);
        assert_eq!(
            cluster.outcomes, baseline,
            "seed {seed}: cluster path diverged from the single-server path"
        );
    }
}

#[test]
fn identity_holds_per_request_not_just_in_aggregate() {
    let scn = identity_scenario(200, 4, 99);
    let cluster = run_cluster_scenario(&scn);
    let baseline = run_single_server_baseline(&scn.traffic, 99);
    for (c, b) in cluster.outcomes.iter().zip(&baseline) {
        assert_eq!(c.seq, b.seq);
        assert_eq!(c.at_us, b.at_us);
        assert_eq!(c.tenant, b.tenant);
        assert_eq!(c.node, b.node);
        assert_eq!(c.outcome, b.outcome, "request {} diverged", c.seq);
    }
    // And the run itself is clean: every request acked at base latency.
    assert!(cluster
        .outcomes
        .iter()
        .all(|o| matches!(o.outcome, Outcome::Ok { .. })));
}

#[test]
fn identity_report_is_reproducible() {
    let a = run_cluster_scenario(&identity_scenario(150, 4, 5));
    let b = run_cluster_scenario(&identity_scenario(150, 4, 5));
    assert_eq!(a.report.to_json(), b.report.to_json());
}

#[test]
fn turning_features_on_departs_from_the_baseline_visibly() {
    // Sanity check that the identity above is not vacuous: replication
    // adds its ack overhead, so latencies must differ once R > 1.
    let scn = identity_scenario(100, 4, 3);
    let mut replicated = scn.clone();
    replicated.cluster = ClusterConfig::replicated(3, 3, 3);
    let base = run_single_server_baseline(&scn.traffic, 3);
    let repl = run_cluster_scenario(&replicated);
    assert_ne!(repl.outcomes, base, "replication overhead must be visible");
}
