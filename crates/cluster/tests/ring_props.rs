//! Property tests for the consistent-hash ring (ISSUE satellite):
//! deterministic lookups, bounded key movement on membership change,
//! and duplicate-free replica sets.

use dbgpt_cluster::ring::HashRing;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same membership + same key → same replica set, always.
    #[test]
    fn lookups_deterministic(nodes in 1usize..12, vnodes in 1usize..128, key in "t[a-z0-9]{1,12}") {
        let a = HashRing::with_nodes(nodes, vnodes);
        let b = HashRing::with_nodes(nodes, vnodes);
        prop_assert_eq!(a.replicas(&key, 3), b.replicas(&key, 3));
        prop_assert_eq!(a.primary(&key), b.primary(&key));
    }

    /// Replica sets never contain a node twice and are capped by the
    /// membership size.
    #[test]
    fn replicas_distinct(nodes in 1usize..10, r in 1usize..6, key in "k[a-z0-9]{1,10}") {
        let ring = HashRing::with_nodes(nodes, 48);
        let reps = ring.replicas(&key, r);
        prop_assert_eq!(reps.len(), r.min(nodes));
        let uniq: std::collections::BTreeSet<_> = reps.iter().collect();
        prop_assert_eq!(uniq.len(), reps.len(), "duplicates in {:?}", reps);
    }

    /// Adding node N to an N-node ring moves roughly K/(N+1) of K keys,
    /// and every moved key moves TO the new node (bounded movement).
    #[test]
    fn bounded_movement_on_add(nodes in 2usize..9, salt in 0u64..1000) {
        let keys: Vec<String> = (0..600).map(|k| format!("tenant-{salt}-{k}")).collect();
        let mut ring = HashRing::with_nodes(nodes, 64);
        let before: Vec<_> = keys.iter().map(|k| ring.primary(k).unwrap()).collect();
        ring.add_node(nodes);
        let after: Vec<_> = keys.iter().map(|k| ring.primary(k).unwrap()).collect();
        let moved = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        let ideal = keys.len() / (nodes + 1);
        // Allow 3× vnode variance over the ideal share, but never a
        // wholesale reshuffle.
        prop_assert!(moved <= ideal * 3 + 20, "moved {} of {}, ideal {}", moved, keys.len(), ideal);
        for (i, (a, b)) in before.iter().zip(&after).enumerate() {
            if a != b {
                prop_assert_eq!(*b, nodes, "key {} moved to an old node {}->{}", i, a, b);
            }
        }
    }

    /// Removing a node only reassigns that node's keys.
    #[test]
    fn removal_moves_only_owned_keys(nodes in 3usize..9, victim_salt in 0u64..100) {
        let mut ring = HashRing::with_nodes(nodes, 64);
        let victim = (victim_salt as usize) % nodes;
        let keys: Vec<String> = (0..400).map(|k| format!("s{victim_salt}-{k}")).collect();
        let before: Vec<_> = keys.iter().map(|k| ring.primary(k).unwrap()).collect();
        ring.remove_node(victim);
        let after: Vec<_> = keys.iter().map(|k| ring.primary(k).unwrap()).collect();
        for (i, (a, b)) in before.iter().zip(&after).enumerate() {
            if *a != victim {
                prop_assert_eq!(a, b, "key {} moved although its owner survived", i);
            } else {
                prop_assert!(*b != victim, "key {} still on removed node", i);
            }
        }
    }

    /// The first replica is the primary, and growing r only appends.
    #[test]
    fn replica_prefix_stability(nodes in 2usize..8, key in "p[a-z0-9]{1,8}") {
        let ring = HashRing::with_nodes(nodes, 32);
        let r1 = ring.replicas(&key, 1);
        let r2 = ring.replicas(&key, 2);
        prop_assert_eq!(Some(r1[0]), ring.primary(&key));
        prop_assert_eq!(&r2[..1], &r1[..]);
    }
}
