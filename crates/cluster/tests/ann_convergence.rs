//! Regression test (ISSUE 8 satellite): ANN index state is derived data.
//!
//! A replica that built an HNSW index over its knowledge-base shard and a
//! replica that never did must report the same state fingerprint after
//! applying the same op log — otherwise the cluster layer's convergence
//! checks (and failover repair) would flag healthy replicas as divergent
//! just because index build timing differed across nodes.

use dbgpt_cluster::state::{StateOp, TenantState};

fn op(seq: u64, tenant: &str) -> StateOp {
    StateOp {
        seq,
        tenant: tenant.to_string(),
        prompt: format!("how is shard {seq} of {tenant} doing?"),
        latency_us: 52_000 + seq * 7,
    }
}

/// Replay the same 80-op log (→ 10 KB documents) on three replicas: one
/// never indexes, one indexes mid-stream, one indexes at the end.
#[test]
fn replicas_converge_despite_divergent_ann_index_state() {
    let tenant = "tenant-007";
    let mut never = TenantState::new(tenant);
    let mut mid = TenantState::new(tenant);
    let mut late = TenantState::new(tenant);
    for seq in 0..80 {
        let o = op(seq, tenant);
        never.apply(&o);
        mid.apply(&o);
        late.apply(&o);
        if seq == 40 {
            mid.build_ann_index();
        }
    }
    late.build_ann_index();

    assert!(mid.has_hnsw_index());
    assert!(late.has_hnsw_index());
    assert!(!never.has_hnsw_index());

    let f = never.fingerprint();
    assert_eq!(f, mid.fingerprint(), "mid-stream index build must not diverge");
    assert_eq!(f, late.fingerprint(), "post-hoc index build must not diverge");

    // Ingest continuing *after* the builds (incremental HNSW insert on
    // one replica, plain append on the other) still converges.
    for seq in 80..96 {
        let o = op(seq, tenant);
        never.apply(&o);
        mid.apply(&o);
    }
    assert_eq!(never.fingerprint(), mid.fingerprint());
    assert!(mid.has_hnsw_index(), "incremental ingest keeps the index");
}

/// The fingerprint still detects real divergence (different ops), so the
/// index-blindness above is not because the digest went inert.
#[test]
fn fingerprint_still_detects_real_divergence() {
    let mut a = TenantState::new("tenant-001");
    let mut b = TenantState::new("tenant-001");
    for seq in 0..16 {
        a.apply(&op(seq, "tenant-001"));
        b.apply(&op(seq, "tenant-001"));
    }
    a.build_ann_index();
    assert_eq!(a.fingerprint(), b.fingerprint());
    b.apply(&op(16, "tenant-001"));
    assert_ne!(a.fingerprint(), b.fingerprint(), "an extra op must diverge");
}
