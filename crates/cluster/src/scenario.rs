//! Chaos-gated cluster scenarios: traffic × topology × fault schedule,
//! with SLO burn-rate alerting and optional flamegraph profiling.
//!
//! [`run_cluster_scenario`] replays an open-loop multi-tenant arrival
//! schedule against a [`Cluster`] while a [`NodeSchedule`] injects node
//! crashes, partitions, and slowdowns on the simulated clock. Periodic
//! metric snapshots feed an [`SloEngine`] with the classic multi-window
//! burn rules, so the run's alert history is part of the (byte-
//! reproducible) report.
//!
//! [`run_single_server_baseline`] drives the same arrivals through one
//! bare SMMF deployment — the pre-cluster code path. A healthy 1-node,
//! replication-disabled, unmetered cluster must match it outcome-for-
//! outcome; `tests/identity.rs` pins that.

use dbgpt_llm::GenerationParams;
use dbgpt_obs::{BurnRule, Obs, ObsConfig, Profile, SloDef, SloEngine};
use dbgpt_smmf::chaos::PRIMARY_MODEL;
use dbgpt_smmf::NodeSchedule;

use crate::admission::AdmissionConfig;
use crate::cluster::{node_server, Cluster, ClusterConfig, Outcome, RequestOutcome};
use crate::traffic::{generate, TrafficConfig};

/// One experiment: who sends traffic, what cluster serves it, what
/// breaks, and how it is judged.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterScenario {
    /// Scenario name (report key).
    pub name: String,
    /// Traffic shape.
    pub traffic: TrafficConfig,
    /// Cluster topology and policy.
    pub cluster: ClusterConfig,
    /// Node fault schedule on the simulated clock.
    pub schedule: NodeSchedule,
    /// Push a metrics snapshot to the SLO engine every this many
    /// simulated µs (0 disables SLO evaluation).
    pub snapshot_every_us: u64,
    /// Latency objective for the p99 SLO (µs).
    pub slo_us: u64,
    /// Record flamegraph spans for the first N requests (0 = off).
    pub profile_requests: usize,
}

impl ClusterScenario {
    /// A healthy replicated baseline scenario.
    pub fn steady(requests: usize, tenants: usize, seed: u64) -> Self {
        ClusterScenario {
            name: "steady".into(),
            traffic: TrafficConfig::standard(requests, tenants, seed),
            cluster: ClusterConfig::replicated(4, 2, seed),
            schedule: NodeSchedule::healthy(),
            snapshot_every_us: 1_000_000,
            slo_us: 200_000,
            profile_requests: 0,
        }
    }
}

/// Everything a run produces: the aggregate report, per-request
/// outcomes (for identity and per-tenant analysis), and the folded
/// flamegraph text (empty when profiling was off).
pub struct RunResult {
    /// Aggregates + gate inputs, serializable byte-reproducibly.
    pub report: ClusterReport,
    /// Per-request fates in arrival order.
    pub outcomes: Vec<RequestOutcome>,
    /// `stack;path self_us` folded lines from the profiled prefix.
    pub folded: String,
}

/// Aggregate results of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Scenario name.
    pub name: String,
    /// Master seed.
    pub seed: u64,
    /// Node count.
    pub nodes: usize,
    /// Replication factor.
    pub replication: usize,
    /// Failover enabled?
    pub failover: bool,
    /// Admission mode: `off`, `queueing-only`, or `metered`.
    pub admission: &'static str,
    /// Arrivals offered.
    pub requests: u64,
    /// Acknowledged.
    pub ok: u64,
    /// Failed (no primary / quorum lost / serve error).
    pub failed: u64,
    /// Shed by admission (policy, not failure).
    pub throttled: u64,
    /// `ok / (ok + failed)` — throttled requests are policy rejections
    /// and excluded from the availability denominator.
    pub availability: f64,
    /// Acked requests within `slo_us`.
    pub within_slo: u64,
    /// Latency stats over acked requests (µs).
    pub latency_mean_us: u64,
    /// p50.
    pub latency_p50_us: u64,
    /// p99.
    pub latency_p99_us: u64,
    /// Max.
    pub latency_max_us: u64,
    /// Tenant rank with the most arrivals.
    pub hot_tenant: usize,
    /// p99 of the hot tenant's acked requests.
    pub hot_p99_us: u64,
    /// p99 across all other tenants' acked requests.
    pub well_p99_us: u64,
    /// Primary changes.
    pub failovers: u64,
    /// Ops replayed by lagging replicas.
    pub catchup_ops: u64,
    /// Total acked ops.
    pub acked_ops: u64,
    /// Tenants with ≥1 acked op.
    pub tenants: u64,
    /// Tenants whose full log survived on a serving replica un-replayed.
    pub durable_tenants: u64,
    /// Replica fingerprint disagreements after catch-up.
    pub divergent_replicas: u64,
    /// XOR-fold of per-tenant converged fingerprints.
    pub state_fingerprint: u64,
    /// SLO alert fire transitions.
    pub alerts_fired: u64,
    /// SLO alert resolve transitions.
    pub alerts_resolved: u64,
    /// Rate-limit sheds.
    pub shed_rate_limited: u64,
    /// Queue-bound sheds.
    pub shed_queue_full: u64,
    /// Distinct folded flamegraph stacks (0 when profiling off).
    pub folded_stacks: u64,
    /// Hottest span by self time, `name:self_us` ("" when off).
    pub hotspot: String,
}

fn pct(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        0
    } else {
        sorted[(sorted.len() - 1) * p / 100]
    }
}

impl ClusterReport {
    /// Deterministic JSON (stable key order, fixed float formatting).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"name\":\"{}\",", self.name));
        s.push_str(&format!("\"seed\":{},", self.seed));
        s.push_str(&format!("\"nodes\":{},", self.nodes));
        s.push_str(&format!("\"replication\":{},", self.replication));
        s.push_str(&format!("\"failover\":{},", self.failover));
        s.push_str(&format!("\"admission\":\"{}\",", self.admission));
        s.push_str(&format!("\"requests\":{},", self.requests));
        s.push_str(&format!("\"ok\":{},", self.ok));
        s.push_str(&format!("\"failed\":{},", self.failed));
        s.push_str(&format!("\"throttled\":{},", self.throttled));
        s.push_str(&format!("\"availability\":{:.6},", self.availability));
        s.push_str(&format!("\"within_slo\":{},", self.within_slo));
        s.push_str(&format!("\"latency_mean_us\":{},", self.latency_mean_us));
        s.push_str(&format!("\"latency_p50_us\":{},", self.latency_p50_us));
        s.push_str(&format!("\"latency_p99_us\":{},", self.latency_p99_us));
        s.push_str(&format!("\"latency_max_us\":{},", self.latency_max_us));
        s.push_str(&format!("\"hot_tenant\":{},", self.hot_tenant));
        s.push_str(&format!("\"hot_p99_us\":{},", self.hot_p99_us));
        s.push_str(&format!("\"well_p99_us\":{},", self.well_p99_us));
        s.push_str(&format!("\"failovers\":{},", self.failovers));
        s.push_str(&format!("\"catchup_ops\":{},", self.catchup_ops));
        s.push_str(&format!("\"acked_ops\":{},", self.acked_ops));
        s.push_str(&format!("\"tenants\":{},", self.tenants));
        s.push_str(&format!("\"durable_tenants\":{},", self.durable_tenants));
        s.push_str(&format!(
            "\"divergent_replicas\":{},",
            self.divergent_replicas
        ));
        s.push_str(&format!(
            "\"state_fingerprint\":\"{:016x}\",",
            self.state_fingerprint
        ));
        s.push_str(&format!("\"alerts_fired\":{},", self.alerts_fired));
        s.push_str(&format!("\"alerts_resolved\":{},", self.alerts_resolved));
        s.push_str(&format!(
            "\"shed_rate_limited\":{},",
            self.shed_rate_limited
        ));
        s.push_str(&format!("\"shed_queue_full\":{},", self.shed_queue_full));
        s.push_str(&format!("\"folded_stacks\":{},", self.folded_stacks));
        s.push_str(&format!("\"hotspot\":\"{}\"", self.hotspot));
        s.push('}');
        s
    }
}

fn admission_label(a: &AdmissionConfig) -> &'static str {
    match (a.enabled, a.queueing) {
        (true, _) => "metered",
        (false, true) => "queueing-only",
        (false, false) => "off",
    }
}

/// Replay `scn` end to end. Deterministic in the scenario value.
pub fn run_cluster_scenario(scn: &ClusterScenario) -> RunResult {
    let arrivals = generate(&scn.traffic);
    let mut cluster = Cluster::new(scn.cluster.clone());

    let mut events = scn.schedule.events.clone();
    events.sort_by_key(|e| e.at_us);
    let mut next_event = 0usize;

    let mut slo = SloEngine::with_rules(
        vec![
            SloDef::latency("cluster-p99-latency", "cluster.latency_us", 0.99, scn.slo_us),
            SloDef::error_rate("cluster-availability", "cluster.failed", "cluster.requests", 0.001),
        ],
        BurnRule::classic(),
    );
    let mut next_snap_us = if scn.snapshot_every_us > 0 {
        scn.snapshot_every_us
    } else {
        u64::MAX
    };

    let obs = if scn.profile_requests > 0 {
        Obs::new(ObsConfig::enabled(scn.cluster.seed))
    } else {
        Obs::disabled()
    };

    let mut outcomes = Vec::with_capacity(arrivals.len());
    for a in &arrivals {
        while next_event < events.len() && events[next_event].at_us <= a.at_us {
            cluster.apply_node_fault(&events[next_event].fault);
            next_event += 1;
        }
        while next_snap_us <= a.at_us {
            slo.push_snapshot(next_snap_us, &cluster.metrics.snapshot());
            next_snap_us += scn.snapshot_every_us;
        }
        let root = if (a.seq as usize) < scn.profile_requests {
            let r = obs.span("cluster.request", a.at_us);
            r.attr("tenant", crate::traffic::tenant_key(a.tenant));
            Some(r)
        } else {
            None
        };
        let out = cluster.handle(a, root.as_ref());
        if let Some(root) = root {
            let end = match &out.outcome {
                Outcome::Ok { latency_us } => a.at_us + latency_us,
                _ => a.at_us,
            };
            root.attr("outcome", format!("{:?}", out.outcome));
            root.end(end);
        }
        outcomes.push(out);
    }
    let last_us = arrivals.last().map_or(0, |a| a.at_us);
    if scn.snapshot_every_us > 0 {
        slo.push_snapshot(last_us.max(next_snap_us), &cluster.metrics.snapshot());
    }

    let audit = cluster.verify_consistency();
    let (folded, folded_stacks, hotspot) = if scn.profile_requests > 0 {
        let profile = Profile::from_spans(&obs.finished_spans());
        let folded = profile.folded();
        let stacks = folded.lines().count() as u64;
        let hot = profile
            .hotspots()
            .first()
            .map(|h| format!("{}:{}", h.name, h.self_us))
            .unwrap_or_default();
        (folded, stacks, hot)
    } else {
        (String::new(), 0, String::new())
    };

    // Aggregate latencies, overall and per tenant class.
    let mut all = Vec::new();
    let mut per_tenant: std::collections::BTreeMap<usize, (u64, Vec<u64>)> =
        std::collections::BTreeMap::new();
    let (mut ok, mut failed, mut throttled, mut within) = (0u64, 0u64, 0u64, 0u64);
    for o in &outcomes {
        let slot = per_tenant.entry(o.tenant).or_default();
        slot.0 += 1;
        match &o.outcome {
            Outcome::Ok { latency_us } => {
                ok += 1;
                all.push(*latency_us);
                slot.1.push(*latency_us);
                if *latency_us <= scn.slo_us {
                    within += 1;
                }
            }
            Outcome::Throttled(_) => throttled += 1,
            Outcome::Unavailable(_) => failed += 1,
        }
    }
    let mut hot_tenant = 0usize;
    let mut hot_count = 0u64;
    for (t, (n, _)) in per_tenant.iter() {
        // Strictly-greater keeps the lowest rank on ties (BTreeMap order).
        if *n > hot_count {
            hot_count = *n;
            hot_tenant = *t;
        }
    }
    let mut hot: Vec<u64> = per_tenant.remove(&hot_tenant).map(|v| v.1).unwrap_or_default();
    let mut well: Vec<u64> = per_tenant.into_values().flat_map(|v| v.1).collect();
    hot.sort_unstable();
    well.sort_unstable();
    all.sort_unstable();

    let (shed_rate_limited, shed_queue_full) = cluster.admission_stats();
    let report = ClusterReport {
        name: scn.name.clone(),
        seed: scn.cluster.seed,
        nodes: scn.cluster.nodes,
        replication: scn.cluster.replication,
        failover: scn.cluster.failover,
        admission: admission_label(&scn.cluster.admission),
        requests: outcomes.len() as u64,
        ok,
        failed,
        throttled,
        availability: if ok + failed == 0 {
            1.0
        } else {
            ok as f64 / (ok + failed) as f64
        },
        within_slo: within,
        latency_mean_us: if all.is_empty() {
            0
        } else {
            all.iter().sum::<u64>() / all.len() as u64
        },
        latency_p50_us: pct(&all, 50),
        latency_p99_us: pct(&all, 99),
        latency_max_us: all.last().copied().unwrap_or(0),
        hot_tenant,
        hot_p99_us: pct(&hot, 99),
        well_p99_us: pct(&well, 99),
        failovers: cluster.failovers,
        catchup_ops: cluster.catchup_ops,
        acked_ops: cluster.acked_ops(),
        tenants: audit.tenants,
        durable_tenants: audit.durable,
        divergent_replicas: audit.divergent,
        state_fingerprint: audit.fingerprint,
        alerts_fired: slo.fired_count() as u64,
        alerts_resolved: slo.resolved_count() as u64,
        shed_rate_limited,
        shed_queue_full,
        folded_stacks,
        hotspot,
    };
    RunResult {
        report,
        outcomes,
        folded,
    }
}

/// Drive the same arrival schedule through one bare SMMF deployment —
/// the pre-cluster single-server code path, outcome-compatible with a
/// healthy `ClusterConfig::single_node` run.
pub fn run_single_server_baseline(traffic: &TrafficConfig, seed: u64) -> Vec<RequestOutcome> {
    let server = node_server(seed);
    let params = GenerationParams::default();
    let mut last_us = 0u64;
    let mut outcomes = Vec::with_capacity(traffic.requests);
    for a in &generate(traffic) {
        let delta = a.at_us.saturating_sub(last_us);
        if delta > 0 {
            server.advance_clock(delta);
            last_us = a.at_us;
        }
        let outcome = match server.chat(PRIMARY_MODEL, &a.prompt, &params) {
            Ok(c) => Outcome::Ok {
                latency_us: c.simulated_latency_us,
            },
            Err(_) => Outcome::Unavailable("serve-error"),
        };
        outcomes.push(RequestOutcome {
            seq: a.seq,
            at_us: a.at_us,
            tenant: a.tenant,
            node: Some(0),
            outcome,
        });
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_scenario_is_clean_and_deterministic() {
        let scn = ClusterScenario::steady(150, 6, 21);
        let a = run_cluster_scenario(&scn);
        let b = run_cluster_scenario(&scn);
        assert_eq!(a.report, b.report);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.report.to_json(), b.report.to_json());
        assert_eq!(a.report.ok, 150);
        assert_eq!(a.report.failed, 0);
        assert_eq!(a.report.availability, 1.0);
        assert_eq!(a.report.durable_tenants, a.report.tenants);
        assert_eq!(a.report.divergent_replicas, 0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_cluster_scenario(&ClusterScenario::steady(100, 6, 1));
        let b = run_cluster_scenario(&ClusterScenario::steady(100, 6, 2));
        assert_ne!(a.report.state_fingerprint, b.report.state_fingerprint);
    }

    #[test]
    fn profiling_produces_folded_stacks() {
        let mut scn = ClusterScenario::steady(60, 4, 5);
        scn.profile_requests = 32;
        let r = run_cluster_scenario(&scn);
        assert!(r.report.folded_stacks > 0);
        assert!(r.folded.contains("cluster.request"));
        assert!(r.folded.contains("smmf.chat"), "folded: {}", r.folded);
        assert!(!r.report.hotspot.is_empty());
        // Profiling must not change results: same scenario unprofiled.
        let mut plain = scn.clone();
        plain.profile_requests = 0;
        let p = run_cluster_scenario(&plain);
        assert_eq!(p.outcomes, r.outcomes);
    }
}
