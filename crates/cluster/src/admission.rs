//! Per-tenant admission control and fair queuing.
//!
//! Two cooperating mechanisms keep one hot tenant from starving the rest
//! of a node:
//!
//! - a per-tenant **token bucket** (rate + burst, refilled on the
//!   simulated clock) throttles tenants that exceed their contracted
//!   request rate *before* the request reaches a node, and
//! - a per-node **bounded fair queue**: a single-server queue model in
//!   which each tenant may hold at most `max_queue_us` of queued service
//!   time; a tenant at its bound is shed while others keep their share.
//!
//! Both are pure functions of `(config, arrival order, simulated clock)`
//! — no wall clock, no RNG — so admission decisions are byte-reproducible
//! and can be asserted in tests.

use std::collections::BTreeMap;

use dbgpt_obs::UsageLedger;

/// Admission/queueing policy. `enabled` switches the token buckets;
/// `queueing` switches the queue-delay model. Both off (the default)
/// reproduces the bare single-server path byte-for-byte: requests carry
/// only their simulated inference latency.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionConfig {
    /// Apply per-tenant token buckets.
    pub enabled: bool,
    /// Model per-node queueing delay (open-loop backlog).
    pub queueing: bool,
    /// Sustained per-tenant request rate (requests per simulated second).
    pub tenant_rate_per_sec: f64,
    /// Bucket capacity: how many requests a tenant may burst above rate.
    pub tenant_burst: f64,
    /// Per-tenant bound on queued service time at one node (µs). A
    /// tenant whose queued work exceeds this is shed, bounding the queue
    /// delay it can impose on others.
    pub max_queue_us: u64,
}

impl AdmissionConfig {
    /// Everything off: byte-identical to the unmetered single-server path.
    pub fn disabled() -> Self {
        AdmissionConfig {
            enabled: false,
            queueing: false,
            tenant_rate_per_sec: f64::INFINITY,
            tenant_burst: f64::INFINITY,
            max_queue_us: u64::MAX,
        }
    }

    /// Metering on: buckets at `rate_per_sec`×`burst`, queueing modeled,
    /// per-tenant queue share bounded at `max_queue_us`.
    pub fn metered(rate_per_sec: f64, burst: f64, max_queue_us: u64) -> Self {
        AdmissionConfig {
            enabled: true,
            queueing: true,
            tenant_rate_per_sec: rate_per_sec,
            tenant_burst: burst,
            max_queue_us,
        }
    }

    /// Queue model on but no per-tenant metering — the "what if we just
    /// let the hot tenant in" control arm of the admission experiment.
    pub fn unmetered_queueing() -> Self {
        AdmissionConfig {
            queueing: true,
            ..AdmissionConfig::disabled()
        }
    }
}

/// One tenant's token bucket on the simulated clock.
#[derive(Debug, Clone, Default)]
struct Bucket {
    tokens: f64,
    last_us: u64,
    primed: bool,
}

/// Why a request was turned away at the front door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Token bucket empty: tenant over its contracted rate.
    RateLimited,
    /// Tenant already holds its full share of the node's queue.
    QueueFull,
}

/// Per-tenant admission state for one gateway.
#[derive(Debug, Clone, Default)]
pub struct AdmissionController {
    buckets: BTreeMap<usize, Bucket>,
    /// Tenants sheds, for the report.
    pub shed_rate_limited: u64,
    /// Queue-bound sheds, for the report.
    pub shed_queue_full: u64,
}

impl AdmissionController {
    /// Fresh controller, all buckets full.
    pub fn new() -> Self {
        AdmissionController::default()
    }

    /// Try to admit a request from `tenant` at simulated time `now_us`,
    /// given that the tenant currently holds `tenant_queued_us` of queued
    /// service time at the target node. Returns `Err(reason)` on shed.
    pub fn admit(
        &mut self,
        cfg: &AdmissionConfig,
        tenant: usize,
        now_us: u64,
        tenant_queued_us: u64,
    ) -> Result<(), ShedReason> {
        if !cfg.enabled {
            return Ok(());
        }
        if tenant_queued_us > cfg.max_queue_us {
            self.shed_queue_full += 1;
            return Err(ShedReason::QueueFull);
        }
        let b = self.buckets.entry(tenant).or_default();
        if !b.primed {
            b.tokens = cfg.tenant_burst;
            b.last_us = now_us;
            b.primed = true;
        }
        let dt_s = (now_us.saturating_sub(b.last_us)) as f64 / 1_000_000.0;
        b.tokens = (b.tokens + dt_s * cfg.tenant_rate_per_sec).min(cfg.tenant_burst);
        b.last_us = now_us;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            Ok(())
        } else {
            self.shed_rate_limited += 1;
            Err(ShedReason::RateLimited)
        }
    }

    /// The admission layer's operator view: one line per tenant joining
    /// this controller's shed totals with the telemetry pipeline's
    /// per-tenant usage rollups (tokens, rows, latency). Deterministic:
    /// tenants in key order, fixed column layout.
    pub fn render_tenant_view(&self, usage: &UsageLedger) -> String {
        let mut out = String::from(
            "tenant       req     ok   fail  throt     tokens    rows   mean_us    max_us\n",
        );
        for (tenant, u) in usage.iter() {
            out.push_str(&format!(
                "{:<10} {:>5} {:>6} {:>6} {:>6} {:>10} {:>7} {:>9} {:>9}\n",
                tenant,
                u.requests,
                u.ok,
                u.failed,
                u.throttled,
                u.total_tokens(),
                u.rows_written,
                u.latency_mean_us(),
                u.latency_max_us,
            ));
        }
        out.push_str(&format!(
            "sheds: rate_limited={} queue_full={}\n",
            self.shed_rate_limited, self.shed_queue_full
        ));
        out
    }
}

/// A node's single-server fair queue on the simulated clock. Requests
/// are served in arrival order; the model tracks when the server frees
/// up and how much queued service time each tenant holds.
#[derive(Debug, Clone, Default)]
pub struct FairQueue {
    busy_until_us: u64,
    /// Per-tenant `(release_time, service_us)` of queued-or-running work.
    in_flight: Vec<(usize, u64, u64)>,
}

impl FairQueue {
    /// An idle queue.
    pub fn new() -> Self {
        FairQueue::default()
    }

    /// Service time currently queued (not yet finished) for `tenant` as
    /// of `now_us`.
    pub fn tenant_queued_us(&mut self, tenant: usize, now_us: u64) -> u64 {
        self.in_flight.retain(|&(_, release, _)| release > now_us);
        self.in_flight
            .iter()
            .filter(|&&(t, _, _)| t == tenant)
            .map(|&(_, _, svc)| svc)
            .sum()
    }

    /// Enqueue an admitted request of `service_us` arriving at `now_us`;
    /// returns the queue wait (µs) it experiences before service starts.
    pub fn enqueue(&mut self, tenant: usize, now_us: u64, service_us: u64) -> u64 {
        let start = self.busy_until_us.max(now_us);
        let wait = start - now_us;
        self.busy_until_us = start + service_us;
        self.in_flight.push((tenant, self.busy_until_us, service_us));
        wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_admits_everything() {
        let cfg = AdmissionConfig::disabled();
        let mut adm = AdmissionController::new();
        for i in 0..1000 {
            assert_eq!(adm.admit(&cfg, 0, i, u64::MAX), Ok(()));
        }
    }

    #[test]
    fn bucket_caps_sustained_rate() {
        // 10 rps, burst 5; offer 100 rps for 2 simulated seconds.
        let cfg = AdmissionConfig::metered(10.0, 5.0, u64::MAX);
        let mut adm = AdmissionController::new();
        let mut admitted = 0;
        for i in 0..200u64 {
            if adm.admit(&cfg, 7, i * 10_000, 0).is_ok() {
                admitted += 1;
            }
        }
        // burst (5) + ~2s of refill (~20), give or take integer effects.
        assert!((20..=30).contains(&admitted), "admitted {admitted}");
        assert_eq!(adm.shed_rate_limited, 200 - admitted);
    }

    #[test]
    fn buckets_are_per_tenant() {
        let cfg = AdmissionConfig::metered(1.0, 1.0, u64::MAX);
        let mut adm = AdmissionController::new();
        assert!(adm.admit(&cfg, 0, 0, 0).is_ok());
        assert!(adm.admit(&cfg, 0, 0, 0).is_err(), "tenant 0 drained");
        assert!(adm.admit(&cfg, 1, 0, 0).is_ok(), "tenant 1 unaffected");
    }

    #[test]
    fn queue_share_bound_sheds() {
        let cfg = AdmissionConfig::metered(f64::INFINITY, f64::INFINITY, 100_000);
        let mut adm = AdmissionController::new();
        assert!(adm.admit(&cfg, 3, 0, 99_000).is_ok());
        assert_eq!(adm.admit(&cfg, 3, 0, 101_000), Err(ShedReason::QueueFull));
        assert_eq!(adm.shed_queue_full, 1);
    }

    #[test]
    fn tenant_view_joins_usage_with_shed_totals() {
        let mut adm = AdmissionController::new();
        let cfg = AdmissionConfig::metered(1.0, 1.0, u64::MAX);
        assert!(adm.admit(&cfg, 0, 0, 0).is_ok());
        assert!(adm.admit(&cfg, 0, 0, 0).is_err());
        let mut usage = UsageLedger::new();
        usage.record_ok("tenant-000", 120, 40, 1, 50_000);
        usage.record_throttled("tenant-000");
        usage.record_ok("tenant-001", 80, 20, 1, 30_000);
        let view = adm.render_tenant_view(&usage);
        let again = adm.render_tenant_view(&usage);
        assert_eq!(view, again, "view is deterministic");
        assert!(view.contains("tenant-000"));
        assert!(view.contains("160"), "tenant-000 total tokens");
        assert!(view.contains("rate_limited=1 queue_full=0"));
        let lines: Vec<&str> = view.lines().collect();
        assert_eq!(lines.len(), 4, "header + 2 tenants + shed footer");
    }

    #[test]
    fn fair_queue_accumulates_and_drains() {
        let mut q = FairQueue::new();
        assert_eq!(q.enqueue(0, 0, 40_000), 0, "idle server: no wait");
        assert_eq!(q.enqueue(0, 10_000, 40_000), 30_000, "behind first");
        assert_eq!(q.tenant_queued_us(0, 10_000), 80_000);
        // After both finish the backlog is gone.
        assert_eq!(q.tenant_queued_us(0, 90_000), 0);
        assert_eq!(q.enqueue(1, 90_000, 10_000), 0);
    }
}
