//! The cluster gateway: sharded routing, replication, and failover.
//!
//! A [`Cluster`] fronts `N` nodes, each a full SMMF [`ApiServer`]
//! deployment on the shared simulated clock. Tenants are shard keys on a
//! [`HashRing`]; each tenant's state replicates to the `R` distinct nodes
//! of its replica set. The replication contract:
//!
//! - a request is **acknowledged** only after its [`StateOp`] is applied
//!   on every *serving* replica and the serving set is at least a
//!   majority (`R/2 + 1`) of the replica set — so an acked op always
//!   survives the loss of any minority of replicas;
//! - the **primary** is the first serving replica in ring order. With
//!   failover enabled the gateway skips dead/partitioned replicas (a
//!   primary change costs one election pause on the next request and
//!   fails back automatically on recovery); with failover disabled,
//!   requests to a down primary fail — the availability gap the bench
//!   measures;
//! - a replica that missed ops (crash, partition) **catches up** by
//!   replaying the quorum-durable log before applying fresh ops, so
//!   replicas are always contiguous prefixes of the log.
//!
//! Node faults arrive as [`NodeFault`]s from the smmf chaos harness's
//! [`NodeSchedule`]. Everything is deterministic in `(config, arrival
//! schedule, fault schedule)`.

use std::collections::{BTreeMap, BTreeSet};

use dbgpt_llm::GenerationParams;
use dbgpt_obs::{
    Collector, Metrics, Obs, ObsConfig, SamplePolicy, Span, Telemetry, UsageLedger,
};
use dbgpt_smmf::chaos::{build_deployment, PRIMARY_MODEL};
use dbgpt_smmf::{ApiServer, NodeFault, ResilienceConfig, RoutingPolicy};

use crate::admission::{AdmissionConfig, AdmissionController, FairQueue, ShedReason};
use crate::ring::HashRing;
use crate::state::{StateOp, TenantState};
use crate::traffic::{tenant_key, Arrival};

/// Histogram bounds for request latency (µs); includes the SLO targets
/// used by the bench so `count_le` is exact at the threshold.
pub const LATENCY_BOUNDS: &[u64] = &[
    5_000, 10_000, 20_000, 40_000, 60_000, 80_000, 120_000, 200_000, 400_000, 800_000, 1_600_000,
    3_200_000,
];

/// Cluster topology and policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of physical nodes.
    pub nodes: usize,
    /// Replicas per shard (1 = replication disabled).
    pub replication: usize,
    /// Virtual nodes per physical node on the ring.
    pub vnodes: usize,
    /// Skip dead primaries (true) or fail requests to them (false).
    pub failover: bool,
    /// Admission / fair-queueing policy.
    pub admission: AdmissionConfig,
    /// Master seed; node `i` derives its deployment seed from it.
    pub seed: u64,
    /// Latency penalty charged to the first request after a primary
    /// change (models election + lease handoff).
    pub election_pause_us: u64,
    /// Per-extra-replica latency overhead of synchronous replication.
    pub repl_rtt_us: u64,
}

impl ClusterConfig {
    /// One node, no replication, no metering: the configuration that
    /// must reproduce the single-server path byte-for-byte.
    pub fn single_node(seed: u64) -> Self {
        ClusterConfig {
            nodes: 1,
            replication: 1,
            vnodes: 64,
            failover: false,
            admission: AdmissionConfig::disabled(),
            seed,
            election_pause_us: 500_000,
            repl_rtt_us: 2_000,
        }
    }

    /// `nodes`×`replication` with failover on.
    pub fn replicated(nodes: usize, replication: usize, seed: u64) -> Self {
        ClusterConfig {
            nodes,
            replication: replication.min(nodes),
            failover: true,
            ..ClusterConfig::single_node(seed)
        }
    }
}

/// Cluster-wide telemetry switch. When enabled, the gateway opens a
/// `gateway.request` root span per arrival and injects its
/// [`dbgpt_obs::TraceContext`] into the wire-level `Request`; the primary
/// adopts it into a `node.serve` span on *its own* tracer (real
/// `smmf.chat` spans join via `chat_under`), and every replica's apply
/// becomes a `node.apply` span adopted from the replication hop — one
/// trace tree per request, spanning processes. Disabled (the default) is
/// byte-identical to the pre-telemetry request path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch.
    pub enabled: bool,
    /// Seed for the gateway tracer; node `i` derives its own from it.
    pub seed: u64,
}

impl TelemetryConfig {
    /// Telemetry off — the default.
    pub fn disabled() -> Self {
        TelemetryConfig {
            enabled: false,
            seed: 0,
        }
    }

    /// Telemetry on, tracers seeded from `seed`.
    pub fn enabled(seed: u64) -> Self {
        TelemetryConfig {
            enabled: true,
            seed,
        }
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig::disabled()
    }
}

/// Build one node's SMMF deployment. Node 0 of a cluster seeded `s`
/// uses exactly `node_server(s)` — the identity anchor for the
/// single-node configuration.
pub fn node_server(seed: u64) -> ApiServer {
    build_deployment(RoutingPolicy::RoundRobin, &ResilienceConfig::disabled(), seed)
}

fn node_seed(seed: u64, node: usize) -> u64 {
    seed.wrapping_add((node as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

struct Node {
    server: ApiServer,
    up: bool,
    latency_factor: f64,
    /// Simulated-clock watermark: how far this node's clock has advanced.
    last_us: u64,
    queue: FairQueue,
    /// The node's own tracer (disabled unless cluster telemetry is on).
    obs: Obs,
}

/// How one request ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Acknowledged; total latency (service + queue + election +
    /// replication overhead).
    Ok {
        /// End-to-end latency in simulated µs.
        latency_us: u64,
    },
    /// Shed by admission control (not an availability failure).
    Throttled(ShedReason),
    /// Failed: no serving primary, quorum lost, or serving error.
    Unavailable(&'static str),
}

/// One request's fate, for per-tenant analysis and identity tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Global sequence number from the arrival schedule.
    pub seq: u64,
    /// Arrival time (simulated µs).
    pub at_us: u64,
    /// Tenant rank.
    pub tenant: usize,
    /// Node that served it (None when never routed).
    pub node: Option<usize>,
    /// Result.
    pub outcome: Outcome,
}

/// End-of-run replica audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsistencyReport {
    /// Tenants with at least one acked op.
    pub tenants: u64,
    /// Tenants whose full acked log is applied on ≥1 serving replica
    /// *without* any end-of-run catch-up — the zero-acked-loss witness.
    pub durable: u64,
    /// Serving replicas whose fingerprint disagrees with their shard's
    /// most-advanced replica after catch-up.
    pub divergent: u64,
    /// XOR-fold of one converged fingerprint per tenant.
    pub fingerprint: u64,
}

/// The sharded multi-tenant gateway.
pub struct Cluster {
    cfg: ClusterConfig,
    ring: HashRing,
    nodes: Vec<Node>,
    minority: BTreeSet<usize>,
    admission: AdmissionController,
    /// `(tenant, node)` → that replica's state.
    states: BTreeMap<(usize, usize), TenantState>,
    /// Per-tenant quorum-durable op log.
    logs: BTreeMap<usize, Vec<StateOp>>,
    /// Current primary per tenant (for election accounting).
    primaries: BTreeMap<usize, usize>,
    params: GenerationParams,
    /// Serving counters and the latency histogram (drives the SLO gate).
    pub metrics: Metrics,
    /// Primary changes observed.
    pub failovers: u64,
    /// Ops replayed from the log by lagging replicas.
    pub catchup_ops: u64,
    telemetry: TelemetryConfig,
    /// The gateway's tracer (disabled unless telemetry is on).
    gateway_obs: Obs,
    /// Per-tenant token/row/latency accounting (empty when telemetry off).
    usage: UsageLedger,
}

impl Cluster {
    /// Bring up `cfg.nodes` deployments and an empty ring membership of
    /// all of them. Telemetry is off — the byte-identity configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        Cluster::with_telemetry(cfg, TelemetryConfig::disabled())
    }

    /// [`Cluster::new`] with an explicit telemetry switch. The gateway
    /// tracer is seeded `telemetry.seed`; node `i`'s tracer derives its
    /// seed as `node_seed(telemetry.seed, i + 1)` so every tracer mints
    /// span ids from a distinct block.
    pub fn with_telemetry(cfg: ClusterConfig, telemetry: TelemetryConfig) -> Self {
        assert!(cfg.nodes >= 1, "cluster needs at least one node");
        assert!(
            (1..=cfg.nodes).contains(&cfg.replication),
            "replication must be in 1..=nodes"
        );
        let node_obs_cfg = |i: usize| {
            if telemetry.enabled {
                ObsConfig::enabled(node_seed(telemetry.seed, i + 1))
            } else {
                ObsConfig::disabled()
            }
        };
        let nodes = (0..cfg.nodes)
            .map(|i| Node {
                server: node_server(node_seed(cfg.seed, i)),
                up: true,
                latency_factor: 1.0,
                last_us: 0,
                queue: FairQueue::new(),
                obs: Obs::new(node_obs_cfg(i)),
            })
            .collect();
        Cluster {
            ring: HashRing::with_nodes(cfg.nodes, cfg.vnodes),
            nodes,
            minority: BTreeSet::new(),
            admission: AdmissionController::new(),
            states: BTreeMap::new(),
            logs: BTreeMap::new(),
            primaries: BTreeMap::new(),
            params: GenerationParams::default(),
            metrics: Metrics::new(),
            failovers: 0,
            catchup_ops: 0,
            gateway_obs: if telemetry.enabled {
                Obs::new(ObsConfig::enabled(telemetry.seed))
            } else {
                Obs::disabled()
            },
            telemetry,
            usage: UsageLedger::new(),
            cfg,
        }
    }

    /// The config this cluster was built with.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Ring membership (for placement inspection).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Admission shed counters.
    pub fn admission_stats(&self) -> (u64, u64) {
        (
            self.admission.shed_rate_limited,
            self.admission.shed_queue_full,
        )
    }

    /// Total acked ops across tenants.
    pub fn acked_ops(&self) -> u64 {
        self.logs.values().map(|l| l.len() as u64).sum()
    }

    /// Apply a node-level fault from a chaos schedule.
    pub fn apply_node_fault(&mut self, fault: &NodeFault) {
        match fault {
            NodeFault::CrashNode { node } => {
                if let Some(n) = self.nodes.get_mut(*node) {
                    n.up = false;
                }
            }
            NodeFault::RestartNode { node } => {
                if let Some(n) = self.nodes.get_mut(*node) {
                    n.up = true;
                }
            }
            NodeFault::SlowNode { node, factor } => {
                if let Some(n) = self.nodes.get_mut(*node) {
                    n.latency_factor = factor.max(0.0);
                }
            }
            NodeFault::Partition { minority } => {
                self.minority = minority.iter().copied().collect();
            }
            NodeFault::HealPartition => {
                self.minority.clear();
            }
        }
    }

    /// Is `node` up and on the majority side of any partition?
    pub fn serving(&self, node: usize) -> bool {
        self.nodes
            .get(node)
            .map(|n| n.up && !self.minority.contains(&node))
            .unwrap_or(false)
    }

    /// Route, admit, serve, and replicate one arrival. `profile` (when
    /// recording) receives model child spans for the flamegraph. With
    /// telemetry enabled every request additionally becomes one
    /// cross-node trace tree rooted at a `gateway.request` span.
    pub fn handle(&mut self, arrival: &Arrival, profile: Option<&Span>) -> RequestOutcome {
        let groot = if self.telemetry.enabled {
            let g = self.gateway_obs.span("gateway.request", arrival.at_us);
            g.attr("tenant", tenant_key(arrival.tenant));
            g.attr("seq", arrival.seq);
            Some(g)
        } else {
            None
        };
        let out = self.handle_inner(arrival, profile, groot.as_ref());
        if let Some(g) = groot {
            match &out.outcome {
                Outcome::Ok { latency_us } => {
                    g.attr("outcome", "ok");
                    if let Some(t) = g.trace_id() {
                        // Exemplar: the latency bucket links back to this
                        // trace, so `obs_exemplars` joins to `obs_spans`.
                        self.gateway_obs.observe_exemplar(
                            "cluster.latency_us",
                            LATENCY_BOUNDS,
                            *latency_us,
                            t,
                        );
                    }
                    g.end(arrival.at_us + latency_us);
                }
                Outcome::Throttled(_) => {
                    g.attr("outcome", "throttled");
                    g.end(arrival.at_us);
                }
                Outcome::Unavailable(why) => {
                    g.attr("outcome", format!("unavailable:{why}"));
                    g.end(arrival.at_us);
                }
            }
        }
        out
    }

    fn handle_inner(
        &mut self,
        arrival: &Arrival,
        profile: Option<&Span>,
        groot: Option<&Span>,
    ) -> RequestOutcome {
        let fail = |this: &mut Self, node, why| {
            this.metrics.counter("cluster.requests", 1);
            this.metrics.counter("cluster.failed", 1);
            if this.telemetry.enabled {
                this.usage.record_failed(&tenant_key(arrival.tenant));
            }
            RequestOutcome {
                seq: arrival.seq,
                at_us: arrival.at_us,
                tenant: arrival.tenant,
                node,
                outcome: Outcome::Unavailable(why),
            }
        };

        // Shard by the tenant carried in the wire-level request's
        // `params.tenant` — the same field a real front door would read.
        // With telemetry on, the gateway also injects its trace context
        // into the request, exactly as a remote node would receive it.
        let mut req = arrival.to_request();
        let key = req
            .tenant()
            .expect("arrival carries a tenant")
            .to_string();
        if let Some(ctx) = groot.and_then(|g| g.context(&key)) {
            req = req.with_trace_context(&ctx);
        }
        let replicas = self.ring.replicas(&key, self.cfg.replication);
        let serving_set: Vec<usize> = replicas
            .iter()
            .copied()
            .filter(|&n| self.serving(n))
            .collect();

        let primary = if self.cfg.failover {
            serving_set.first().copied()
        } else {
            replicas.first().copied().filter(|&n| self.serving(n))
        };
        let Some(primary) = primary else {
            return fail(self, None, "no-serving-primary");
        };
        let quorum = self.cfg.replication / 2 + 1;
        if serving_set.len() < quorum {
            return fail(self, Some(primary), "quorum-lost");
        }

        // Admission: bucket + bounded per-tenant queue share.
        let queued_us = if self.cfg.admission.enabled && self.cfg.admission.queueing {
            self.nodes[primary]
                .queue
                .tenant_queued_us(arrival.tenant, arrival.at_us)
        } else {
            0
        };
        if let Err(reason) =
            self.admission
                .admit(&self.cfg.admission, arrival.tenant, arrival.at_us, queued_us)
        {
            self.metrics.counter("cluster.requests", 1);
            self.metrics.counter("cluster.throttled", 1);
            if self.telemetry.enabled {
                self.usage.record_throttled(&key);
            }
            return RequestOutcome {
                seq: arrival.seq,
                at_us: arrival.at_us,
                tenant: arrival.tenant,
                node: Some(primary),
                outcome: Outcome::Throttled(reason),
            };
        }

        // Election accounting: a primary change charges one pause.
        let mut penalty_us = 0u64;
        if let Some(&old) = self.primaries.get(&arrival.tenant) {
            if old != primary {
                self.failovers += 1;
                penalty_us += self.cfg.election_pause_us;
            }
        }
        self.primaries.insert(arrival.tenant, primary);

        // The primary adopts the propagated context from the wire request
        // into a `node.serve` span on its *own* tracer — same trace id,
        // local span-id block, exactly what a remote process would do.
        let serve = match req.trace_context() {
            Some(ctx) => {
                // Keep the tracer's tick clock coherent with simulated
                // time, so tick-timestamped descendants (sql.* spans)
                // start inside this request's window, not near zero.
                self.nodes[primary].obs.advance_ticks_to(arrival.at_us);
                let s = self.nodes[primary]
                    .obs
                    .span_in_context("node.serve", arrival.at_us, &ctx);
                s.attr("node", primary);
                s
            }
            None => Span::noop(),
        };

        // Serve on the primary's deployment at the arrival's clock time.
        let node = &mut self.nodes[primary];
        let delta = arrival.at_us.saturating_sub(node.last_us);
        if delta > 0 {
            node.server.advance_clock(delta);
            node.last_us = arrival.at_us;
        }
        // `chat_under` with a no-op parent is byte-identical to `chat`,
        // so the disabled path is unchanged; with telemetry on, the real
        // smmf.chat span joins the propagated trace under node.serve.
        let completion =
            match node
                .server
                .chat_under(PRIMARY_MODEL, &arrival.prompt, &self.params, &serve)
            {
                Ok(c) => c,
                Err(_) => {
                    serve.attr("outcome", "err:serve");
                    serve.end(arrival.at_us);
                    return fail(self, Some(primary), "serve-error");
                }
            };
        let service_us = (completion.simulated_latency_us as f64 * node.latency_factor) as u64;
        let wait_us = if self.cfg.admission.queueing {
            node.queue.enqueue(arrival.tenant, arrival.at_us, service_us)
        } else {
            0
        };
        let repl_us = if self.cfg.replication > 1 {
            self.cfg.repl_rtt_us * (serving_set.len() as u64 - 1)
        } else {
            0
        };
        let latency_us = service_us + wait_us + penalty_us + repl_us;

        // Replicate: catch up lagging serving replicas, then apply. The
        // primary applies under its serve span; every other replica gets
        // a `cluster.replicate` hop whose context it adopts into a
        // `node.apply` span on its own tracer — so replica-side SQL work
        // lands in the same distributed trace.
        let op = StateOp {
            seq: self.logs.get(&arrival.tenant).map_or(0, |l| l.len() as u64),
            tenant: key.clone(),
            prompt: arrival.prompt.clone(),
            latency_us: completion.simulated_latency_us,
        };
        let serve_done_us = arrival.at_us + wait_us + service_us;
        let mut rows_written = 0u64;
        for &n in &serving_set {
            if n == primary {
                rows_written += self.apply_with_catchup(arrival.tenant, n, &op, &serve);
            } else if serve.is_recording() {
                let repl = serve.child("cluster.replicate", serve_done_us);
                repl.attr("to", n);
                let ctx = repl.context(&key).expect("recording span has a context");
                self.nodes[n].obs.advance_ticks_to(serve_done_us);
                let apply = self.nodes[n]
                    .obs
                    .span_in_context("node.apply", serve_done_us, &ctx);
                apply.attr("node", n);
                self.apply_with_catchup(arrival.tenant, n, &op, &apply);
                apply.end(serve_done_us + self.cfg.repl_rtt_us);
                repl.end(serve_done_us + self.cfg.repl_rtt_us);
            } else {
                self.apply_with_catchup(arrival.tenant, n, &op, &Span::noop());
            }
        }
        self.logs.entry(arrival.tenant).or_default().push(op);
        serve.end(serve_done_us);

        if let Some(root) = profile {
            if root.is_recording() {
                let admit = root.child("cluster.admit", arrival.at_us);
                admit.attr("tenant", &key);
                admit.end(arrival.at_us);
                let route = root.child("cluster.route", arrival.at_us);
                route.attr("node", primary);
                route.attr("tenant", &key);
                route.end(arrival.at_us);
                let chat = root.child("smmf.chat", arrival.at_us + wait_us);
                chat.attr("tenant", &key);
                chat.end(arrival.at_us + wait_us + service_us);
                let repl = root.child("cluster.replicate", arrival.at_us + wait_us + service_us);
                repl.attr("replicas", serving_set.len());
                repl.attr("tenant", &key);
                repl.end(arrival.at_us + wait_us + service_us + repl_us);
            }
        }

        if self.telemetry.enabled {
            self.usage.record_ok(
                &key,
                completion.usage.prompt_tokens as u64,
                completion.usage.completion_tokens as u64,
                rows_written,
                latency_us,
            );
        }
        self.metrics.counter("cluster.requests", 1);
        self.metrics.counter("cluster.ok", 1);
        self.metrics
            .observe_with("cluster.latency_us", LATENCY_BOUNDS, latency_us);
        RequestOutcome {
            seq: arrival.seq,
            at_us: arrival.at_us,
            tenant: arrival.tenant,
            node: Some(primary),
            outcome: Outcome::Ok { latency_us },
        }
    }

    fn apply_with_catchup(
        &mut self,
        tenant: usize,
        node: usize,
        op: &StateOp,
        parent: &Span,
    ) -> u64 {
        let key = tenant_key(tenant);
        let st = self
            .states
            .entry((tenant, node))
            .or_insert_with(|| TenantState::new(&key));
        if let Some(log) = self.logs.get(&tenant) {
            while (st.applied_seq as usize) < log.len() {
                st.apply(&log[st.applied_seq as usize]);
                self.catchup_ops += 1;
            }
        }
        st.apply_traced(op, parent)
    }

    /// Aggregate every tracer's dump — the gateway plus one per node —
    /// through the central collector under `policy`. Traces overlapping
    /// any `alert_windows` interval are retained regardless of budget.
    pub fn collect(&self, policy: &SamplePolicy, alert_windows: &[(u64, u64)]) -> Telemetry {
        let mut c = Collector::new();
        c.add_obs("gateway", &self.gateway_obs);
        for (i, n) in self.nodes.iter().enumerate() {
            c.add_obs(&format!("node-{i:02}"), &n.obs);
        }
        c.aggregate(policy, alert_windows)
    }

    /// Per-tenant token/row/latency rollups (empty when telemetry is off).
    pub fn usage(&self) -> &UsageLedger {
        &self.usage
    }

    /// The gateway's tracer.
    pub fn gateway_obs(&self) -> &Obs {
        &self.gateway_obs
    }

    /// Node `i`'s tracer.
    pub fn node_obs(&self, i: usize) -> &Obs {
        &self.nodes[i].obs
    }

    /// The telemetry switch this cluster was built with.
    pub fn telemetry(&self) -> &TelemetryConfig {
        &self.telemetry
    }

    /// The admission layer's operator view: shed totals joined with the
    /// telemetry pipeline's per-tenant usage rollups.
    pub fn tenant_view(&self) -> String {
        self.admission.render_tenant_view(&self.usage)
    }

    /// One replica's applied position, if it exists.
    pub fn replica_applied(&self, tenant: usize, node: usize) -> Option<u64> {
        self.states.get(&(tenant, node)).map(|s| s.applied_seq)
    }

    /// Audit every shard: durability (full log on a serving replica with
    /// no further catch-up) and convergence (fingerprint agreement after
    /// letting serving stragglers replay the log).
    pub fn verify_consistency(&mut self) -> ConsistencyReport {
        let tenants: Vec<usize> = self.logs.keys().copied().collect();
        let mut durable = 0u64;
        let mut divergent = 0u64;
        let mut fingerprint = 0u64;
        for t in &tenants {
            let log_len = self.logs[t].len() as u64;
            let replicas = self.ring.replicas(&tenant_key(*t), self.cfg.replication);
            let serving: Vec<usize> = replicas
                .iter()
                .copied()
                .filter(|&n| self.serving(n))
                .collect();
            if serving.iter().any(|&n| {
                self.states
                    .get(&(*t, n))
                    .is_some_and(|s| s.applied_seq == log_len)
            }) {
                durable += 1;
            }
            // Catch up serving stragglers, then compare fingerprints.
            let mut fp: Option<u64> = None;
            for &n in &serving {
                let key = tenant_key(*t);
                let st = self
                    .states
                    .entry((*t, n))
                    .or_insert_with(|| TenantState::new(&key));
                let log = &self.logs[t];
                while (st.applied_seq as usize) < log.len() {
                    st.apply(&log[st.applied_seq as usize]);
                    self.catchup_ops += 1;
                }
                let f = st.fingerprint();
                match fp {
                    None => fp = Some(f),
                    Some(first) if first != f => divergent += 1,
                    Some(_) => {}
                }
            }
            if let Some(f) = fp {
                fingerprint ^= f.rotate_left((*t % 63) as u32);
            }
        }
        ConsistencyReport {
            tenants: tenants.len() as u64,
            durable,
            divergent,
            fingerprint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{generate, TrafficConfig};

    fn arrivals(n: usize, tenants: usize, seed: u64) -> Vec<Arrival> {
        generate(&TrafficConfig::standard(n, tenants, seed))
    }

    #[test]
    fn healthy_cluster_acks_everything() {
        let mut cl = Cluster::new(ClusterConfig::replicated(4, 2, 9));
        let mut ok = 0;
        for a in arrivals(120, 6, 9) {
            if matches!(cl.handle(&a, None).outcome, Outcome::Ok { .. }) {
                ok += 1;
            }
        }
        assert_eq!(ok, 120);
        assert_eq!(cl.acked_ops(), 120);
        let audit = cl.verify_consistency();
        assert_eq!(audit.durable, audit.tenants);
        assert_eq!(audit.divergent, 0);
    }

    #[test]
    fn crash_without_failover_fails_requests() {
        let mut cl = Cluster::new(ClusterConfig {
            failover: false,
            ..ClusterConfig::replicated(3, 2, 5)
        });
        cl.apply_node_fault(&NodeFault::CrashNode { node: 0 });
        let mut failed = 0;
        for a in arrivals(90, 6, 5) {
            if matches!(cl.handle(&a, None).outcome, Outcome::Unavailable(_)) {
                failed += 1;
            }
        }
        assert!(failed > 0, "some shard must have node 0 as primary");
    }

    #[test]
    fn crash_with_failover_keeps_serving() {
        // R=3 keeps a majority (2 of 3) through any single-node crash;
        // R=2 would stall its shards (quorum 2 of 2) — see the partition
        // test below for that behavior.
        let mut cl = Cluster::new(ClusterConfig::replicated(5, 3, 5));
        let traffic = arrivals(90, 6, 5);
        let (warm, rest) = traffic.split_at(30);
        for a in warm {
            assert!(matches!(cl.handle(a, None).outcome, Outcome::Ok { .. }));
        }
        // Crash the node that owns tenant 0's shard, so a failover is
        // guaranteed to be exercised.
        let victim = cl.ring().primary(&tenant_key(0)).unwrap();
        cl.apply_node_fault(&NodeFault::CrashNode { node: victim });
        for a in rest {
            let out = cl.handle(a, None);
            assert!(
                matches!(out.outcome, Outcome::Ok { .. }),
                "request {} failed: {:?}",
                a.seq,
                out.outcome
            );
        }
        assert!(cl.failovers > 0, "tenant 0's shard must have failed over");
    }

    #[test]
    fn partition_blocks_minority_quorum() {
        // R=2 quorum=2: shards with a replica in the minority stall.
        let mut cl = Cluster::new(ClusterConfig::replicated(4, 2, 8));
        cl.apply_node_fault(&NodeFault::Partition { minority: vec![1] });
        let outcomes: Vec<_> = arrivals(100, 8, 8)
            .iter()
            .map(|a| cl.handle(a, None).outcome.clone())
            .collect();
        assert!(outcomes
            .iter()
            .any(|o| matches!(o, Outcome::Unavailable("quorum-lost"))));
        cl.apply_node_fault(&NodeFault::HealPartition);
        for a in arrivals(20, 8, 99) {
            assert!(matches!(cl.handle(&a, None).outcome, Outcome::Ok { .. }));
        }
    }

    #[test]
    fn restarted_replica_catches_up() {
        let mut cl = Cluster::new(ClusterConfig::replicated(3, 3, 4));
        let traffic = arrivals(120, 3, 4);
        let (first, rest) = traffic.split_at(40);
        for a in first {
            cl.handle(a, None);
        }
        cl.apply_node_fault(&NodeFault::CrashNode { node: 2 });
        let (mid, last) = rest.split_at(40);
        for a in mid {
            cl.handle(a, None);
        }
        cl.apply_node_fault(&NodeFault::RestartNode { node: 2 });
        for a in last {
            cl.handle(a, None);
        }
        assert!(cl.catchup_ops > 0, "node 2 must have replayed missed ops");
        let audit = cl.verify_consistency();
        assert_eq!(audit.divergent, 0);
        assert_eq!(audit.durable, audit.tenants);
    }

    #[test]
    fn slow_node_inflates_latency_only() {
        let mut cl = Cluster::new(ClusterConfig::replicated(2, 1, 3));
        cl.apply_node_fault(&NodeFault::SlowNode {
            node: 0,
            factor: 4.0,
        });
        let mut slowed = false;
        for a in arrivals(40, 4, 3) {
            let out = cl.handle(&a, None);
            if let (Some(0), Outcome::Ok { latency_us }) = (out.node, &out.outcome) {
                assert!(*latency_us >= 4 * 40_000, "slow node latency {latency_us}");
                slowed = true;
            }
        }
        assert!(slowed, "no request landed on the slow node");
    }
}
