#![warn(missing_docs)]

//! # dbgpt-cluster — sharded multi-tenant serving with replication,
//! failover, and chaos-gated SLOs
//!
//! The paper demonstrates DB-GPT as a multi-tenant data-interaction
//! service; this crate reproduces the *operational* half of that claim:
//! one gateway serving many tenants from a cluster of SMMF deployments,
//! staying available and fair while nodes crash, partition, and slow
//! down. Everything runs on the repo's simulated clock — no wall time,
//! no threads — so every run is byte-reproducible from a seed.
//!
//! ## Architecture
//!
//! ```text
//!                 ┌────────────────────────────────────────────┐
//!   open-loop     │ Cluster gateway                            │
//!   traffic ────► │  admission (token bucket + fair queue)     │
//!   (traffic)     │  ring (consistent hash, vnodes)            │
//!                 │  replication (R replicas, quorum ack)      │
//!                 └──────┬────────────┬────────────┬───────────┘
//!                        ▼            ▼            ▼
//!                   node 0        node 1        node 2   … node N-1
//!                 (ApiServer)   (ApiServer)   (ApiServer)
//!                  TenantState   TenantState   TenantState
//!                  (sessions +   shards        shards
//!                   SQL + KB)
//! ```
//!
//! - [`ring`] — consistent-hash ring with virtual nodes. Tenants are
//!   shard keys; membership changes move a bounded ~`K/N` of keys
//!   (property-tested in `tests/ring_props.rs`).
//! - [`state`] — the replicated per-tenant shard: session log, SQL
//!   catalog ([`dbgpt_sqlengine::Engine`]), and knowledge base
//!   ([`dbgpt_rag::KnowledgeBase`]), folded into one `fingerprint()` so
//!   tests can assert replica convergence exactly.
//! - [`cluster`] — routing, quorum replication, primary election and
//!   automatic failover, and lazy catch-up for replicas that missed ops.
//!   An op is acked only when applied on every serving replica of a
//!   majority-reachable replica set: acked writes survive any minority
//!   loss (`tests/failover.rs` pins zero acked loss).
//! - [`admission`] — per-tenant token buckets plus a bounded fair queue
//!   per node, so a hot tenant is throttled instead of starving others.
//! - [`traffic`] — open-loop generator: bounded-Pareto inter-arrivals,
//!   Zipf tenant skew, independent seeded streams.
//! - [`scenario`] — replays traffic × fault schedule
//!   ([`dbgpt_smmf::NodeSchedule`]) against a cluster, feeds periodic
//!   metric snapshots to [`dbgpt_obs::SloEngine`] burn-rate rules, and
//!   optionally records [`dbgpt_obs::Profile`] flamegraph stacks.
//! - [`telemetry`] — the cluster-wide telemetry pipeline: with
//!   [`cluster::TelemetryConfig`] enabled, the gateway injects a
//!   [`dbgpt_obs::TraceContext`] into each wire request and every node
//!   adopts it, so one request is one trace tree across tracers; a
//!   deterministic collector tail-samples whole traces under a span
//!   budget (errors always kept) and exports the survivors, metric
//!   snapshots, exemplars, and per-tenant usage as SQL tables
//!   (`obs_spans`, `obs_metrics`, `obs_exemplars`, `obs_tenant_usage`)
//!   queried through [`dbgpt_sqlengine::Engine`].
//!
//! ## Identity guarantee
//!
//! A healthy 1-node cluster with replication and admission disabled
//! issues exactly the same `advance_clock` / `chat` sequence as the
//! bare single-server path ([`scenario::run_single_server_baseline`]) —
//! outcome-for-outcome identical, pinned by `tests/identity.rs`. The
//! cluster layer costs nothing until you turn its features on.

pub mod admission;
pub mod cluster;
pub mod ring;
pub mod scenario;
pub mod state;
pub mod telemetry;
pub mod traffic;

pub use admission::{AdmissionConfig, AdmissionController, FairQueue, ShedReason};
pub use cluster::{
    node_server, Cluster, ClusterConfig, ConsistencyReport, Outcome, RequestOutcome,
    TelemetryConfig, LATENCY_BOUNDS,
};
pub use telemetry::{
    alert_windows, materialize_store, run_telemetry_scenario, slowest_from_store,
    store_matches_oracle, TelemetryReport, TelemetryRun, TelemetryScenario,
};
pub use ring::{hash_key, HashRing};
pub use scenario::{
    run_cluster_scenario, run_single_server_baseline, ClusterReport, ClusterScenario, RunResult,
};
pub use state::{StateOp, TenantState};
pub use traffic::{generate, tenant_key, Arrival, TrafficConfig};
