//! Open-loop multi-tenant traffic generation.
//!
//! The generator produces an arrival schedule up front — an *open loop*:
//! arrival times never react to service times, which is what makes
//! overload visible (queues grow; a closed loop would politely back off).
//!
//! - **Inter-arrival gaps** are bounded-Pareto distributed (heavy tail,
//!   capped at `tail_cap × mean`), scaled to a configured mean gap.
//! - **Tenant choice** is Zipf-distributed over `tenants` ranks, so rank
//!   0 is the hot tenant and the tail is long.
//!
//! Both draws come from independent [`SplitMix64`] streams of one seed,
//! so the schedule is byte-reproducible and the two choices don't
//! interfere: changing the skew never perturbs the arrival times.

use dbgpt_server::protocol::Request;
use dbgpt_smmf::SplitMix64;

/// Traffic shape: how many requests, from whom, how bursty.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Total requests to generate.
    pub requests: usize,
    /// Number of tenants (Zipf ranks).
    pub tenants: usize,
    /// Zipf exponent: 0 = uniform, ~1 = classic web skew, ≥2 = one
    /// dominant hot tenant.
    pub zipf_s: f64,
    /// Mean inter-arrival gap in simulated µs.
    pub mean_gap_us: u64,
    /// Pareto tail index α (> 1 so the mean exists; smaller = heavier).
    pub pareto_alpha: f64,
    /// Gap cap as a multiple of the mean (bounded Pareto).
    pub tail_cap: f64,
    /// Seed for both RNG streams.
    pub seed: u64,
}

impl TrafficConfig {
    /// A moderate default: web-like skew, mildly heavy-tailed gaps.
    pub fn standard(requests: usize, tenants: usize, seed: u64) -> Self {
        TrafficConfig {
            requests,
            tenants: tenants.max(1),
            zipf_s: 1.1,
            mean_gap_us: 50_000,
            pareto_alpha: 1.5,
            tail_cap: 20.0,
            seed,
        }
    }

    /// One dominant hot tenant (rank 0 draws the bulk of traffic) at a
    /// higher offered rate — the admission-control stress shape.
    pub fn hot_tenant(requests: usize, tenants: usize, seed: u64) -> Self {
        TrafficConfig {
            zipf_s: 2.5,
            mean_gap_us: 20_000,
            ..TrafficConfig::standard(requests, tenants, seed)
        }
    }
}

/// One request in the schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Global sequence number (0-based).
    pub seq: u64,
    /// Absolute simulated arrival time (µs).
    pub at_us: u64,
    /// Tenant rank (0 = hottest under skew).
    pub tenant: usize,
    /// The request prompt.
    pub prompt: String,
}

/// Tenant id string for a rank — the ring's shard key.
pub fn tenant_key(rank: usize) -> String {
    format!("tenant-{rank:03}")
}

impl Arrival {
    /// The wire-level request for this arrival: a server-layer
    /// [`Request`] carrying the tenant in `params.tenant` — what a
    /// front door would decode before handing the cluster a shard key.
    pub fn to_request(&self) -> Request {
        Request::new(self.seq, "chat2data", self.prompt.clone())
            .with_tenant(tenant_key(self.tenant))
    }
}

/// Generate the full arrival schedule for `cfg`. Deterministic in `cfg`.
pub fn generate(cfg: &TrafficConfig) -> Vec<Arrival> {
    let mut gap_rng = SplitMix64::stream(cfg.seed, 1);
    let mut tenant_rng = SplitMix64::stream(cfg.seed, 2);

    // Zipf CDF over ranks 1..=tenants with exponent s.
    let weights: Vec<f64> = (1..=cfg.tenants)
        .map(|k| 1.0 / (k as f64).powf(cfg.zipf_s))
        .collect();
    let total: f64 = weights.iter().sum();

    // Bounded Pareto over [x_m, cap]; scale x_m so the (untruncated)
    // mean α·x_m/(α-1) matches the configured mean gap.
    let alpha = cfg.pareto_alpha.max(1.01);
    let x_m = cfg.mean_gap_us as f64 * (alpha - 1.0) / alpha;
    let cap = cfg.mean_gap_us as f64 * cfg.tail_cap;

    let mut at_us = 0u64;
    let mut arrivals = Vec::with_capacity(cfg.requests);
    for seq in 0..cfg.requests as u64 {
        let u = gap_rng.next_f64().max(1e-12);
        let gap = (x_m * u.powf(-1.0 / alpha)).min(cap).max(1.0) as u64;
        at_us += gap;

        let mut pick = tenant_rng.next_f64() * total;
        let mut tenant = cfg.tenants - 1;
        for (k, w) in weights.iter().enumerate() {
            if pick < *w {
                tenant = k;
                break;
            }
            pick -= w;
        }

        let prompt = format!(
            "[{}] request {}: summarize activity and store an audit row",
            tenant_key(tenant),
            seq
        );
        arrivals.push(Arrival {
            seq,
            at_us,
            tenant,
            prompt,
        });
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_frame_through_the_server_protocol() {
        use dbgpt_server::protocol::{decode_frame, encode_frame, Request};
        let arrivals = generate(&TrafficConfig::standard(10, 4, 13));
        for a in &arrivals {
            let frame = encode_frame(&a.to_request());
            let (back, used): (Request, usize) = decode_frame(&frame).unwrap();
            assert_eq!(used, frame.len());
            assert_eq!(back.tenant(), Some(tenant_key(a.tenant).as_str()));
            assert_eq!(back.input, a.prompt);
            assert_eq!(back.id, a.seq);
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let cfg = TrafficConfig::standard(200, 8, 42);
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = TrafficConfig::standard(200, 8, 43);
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn arrival_times_are_strictly_increasing() {
        let arrivals = generate(&TrafficConfig::standard(500, 4, 7));
        for w in arrivals.windows(2) {
            assert!(w[0].at_us < w[1].at_us);
        }
    }

    #[test]
    fn zipf_skew_concentrates_on_rank_zero() {
        let cfg = TrafficConfig::hot_tenant(2000, 8, 11);
        let arrivals = generate(&cfg);
        let hot = arrivals.iter().filter(|a| a.tenant == 0).count();
        assert!(
            hot > arrivals.len() / 2,
            "hot tenant drew only {hot}/{}",
            arrivals.len()
        );
        // But the tail is populated too.
        let distinct: std::collections::BTreeSet<_> =
            arrivals.iter().map(|a| a.tenant).collect();
        assert!(distinct.len() >= 4, "only {} tenants hit", distinct.len());
    }

    #[test]
    fn mean_gap_lands_near_target() {
        let cfg = TrafficConfig::standard(4000, 4, 3);
        let arrivals = generate(&cfg);
        let mean = arrivals.last().unwrap().at_us / arrivals.len() as u64;
        let target = cfg.mean_gap_us;
        assert!(
            mean > target / 2 && mean < target * 2,
            "mean gap {mean} vs target {target}"
        );
    }

    #[test]
    fn gaps_are_heavy_tailed_but_bounded() {
        let cfg = TrafficConfig::standard(4000, 4, 9);
        let arrivals = generate(&cfg);
        let gaps: Vec<u64> = std::iter::once(arrivals[0].at_us)
            .chain(arrivals.windows(2).map(|w| w[1].at_us - w[0].at_us))
            .collect();
        let cap = (cfg.mean_gap_us as f64 * cfg.tail_cap) as u64;
        assert!(gaps.iter().all(|&g| g <= cap));
        let big = gaps.iter().filter(|&&g| g > 3 * cfg.mean_gap_us).count();
        assert!(big > 0, "no tail events in 4000 draws");
    }
}
