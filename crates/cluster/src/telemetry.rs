//! The cluster-wide telemetry pipeline, end to end.
//!
//! [`run_telemetry_scenario`] replays a traffic × fault schedule against
//! a [`Cluster`] with tracing enabled, so every request becomes one
//! cross-node trace tree (gateway → primary → replicas → SMMF → SQL).
//! After the run it:
//!
//! 1. pulls every node's [`dbgpt_obs::NodeDump`] through the central
//!    collector and applies the scenario's tail-sampling
//!    [`SamplePolicy`] — error traces always retained, then traces
//!    overlapping the run's own SLO alert windows, then the slowest
//!    tail, then a seeded baseline sample;
//! 2. materializes the sampled spans, metric snapshots, histogram
//!    exemplars, and per-tenant usage rollups into SQL tables
//!    (`obs_spans`, `obs_metrics`, `obs_exemplars`, `obs_tenant_usage`)
//!    on a [`dbgpt_sqlengine::Engine`] over **paged** storage; and
//! 3. cross-checks the store: the canonical "top-k slowest spans per
//!    tenant" SQL query must match [`Telemetry::slowest_spans_per_tenant`]
//!    row for row.
//!
//! Everything is deterministic in the scenario value; the
//! [`TelemetryReport`] serializes byte-stably for the bench gate.

use dbgpt_obs::{
    export_sql, slowest_spans_query, BurnRule, SamplePolicy, SloDef, SloEngine, Telemetry,
    TraceContext, UsageLedger,
};
use dbgpt_smmf::NodeSchedule;
use dbgpt_sqlengine::{Engine, StorageConfig, Value};

use crate::cluster::{Cluster, ClusterConfig, Outcome, RequestOutcome, TelemetryConfig};
use crate::traffic::{generate, TrafficConfig};

/// One telemetry experiment: traffic, topology, faults, and how the
/// resulting trace firehose is sampled.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryScenario {
    /// Scenario name (report key).
    pub name: String,
    /// Traffic shape.
    pub traffic: TrafficConfig,
    /// Cluster topology and policy.
    pub cluster: ClusterConfig,
    /// Tracing switch + tracer seeds.
    pub telemetry: TelemetryConfig,
    /// Node fault schedule on the simulated clock.
    pub schedule: NodeSchedule,
    /// Metrics snapshot cadence for SLO evaluation (µs; 0 disables).
    pub snapshot_every_us: u64,
    /// Latency objective for the p99 SLO (µs).
    pub slo_us: u64,
    /// Tail-sampling policy applied at collection time.
    pub policy: SamplePolicy,
}

impl TelemetryScenario {
    /// The acceptance shape: ≥3 nodes, replicated, multi-tenant traffic,
    /// one crash/restart fault (which costs quorum on the crashed node's
    /// shards → real error traces), traced and budget-sampled.
    pub fn faulted(requests: usize, tenants: usize, seed: u64) -> Self {
        let crash_at = 2_000_000;
        let restart_at = 6_000_000;
        TelemetryScenario {
            name: "telemetry-faulted".into(),
            traffic: TrafficConfig::standard(requests, tenants.max(2), seed),
            cluster: ClusterConfig::replicated(3, 2, seed),
            telemetry: TelemetryConfig::enabled(seed ^ 0x7e1e_3e7a),
            schedule: NodeSchedule::crash_restart(1, crash_at, restart_at),
            snapshot_every_us: 1_000_000,
            slo_us: 200_000,
            policy: SamplePolicy::budgeted(4000, 16, 250, seed),
        }
    }
}

/// Everything one telemetry run produces.
pub struct TelemetryRun {
    /// The sampled, aggregated cluster-wide telemetry.
    pub telemetry: Telemetry,
    /// Per-tenant usage rollups from the gateway.
    pub usage: UsageLedger,
    /// Per-request fates in arrival order.
    pub outcomes: Vec<RequestOutcome>,
    /// `(fired_us, resolved_us)` intervals fed to the sampler.
    pub alert_windows: Vec<(u64, u64)>,
    /// The admission layer's rendered per-tenant usage view.
    pub tenant_view: String,
    /// Aggregates + gate inputs, serializable byte-reproducibly.
    pub report: TelemetryReport,
}

/// Aggregate results of one telemetry scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// Scenario name.
    pub name: String,
    /// Master seed.
    pub seed: u64,
    /// Node count.
    pub nodes: usize,
    /// Replication factor.
    pub replication: usize,
    /// Arrivals offered.
    pub requests: u64,
    /// Acknowledged.
    pub ok: u64,
    /// Failed (quorum lost, serve error, no primary).
    pub failed: u64,
    /// Shed by admission.
    pub throttled: u64,
    /// Spans recorded across all tracers.
    pub spans_total: u64,
    /// Spans kept by the sampler (the store's row count).
    pub spans_kept: u64,
    /// The policy's span budget.
    pub span_budget: u64,
    /// Traces seen / kept / dropped.
    pub traces_total: u64,
    /// Traces kept.
    pub traces_kept: u64,
    /// Traces dropped by the budget.
    pub dropped_by_budget: u64,
    /// Traces dropped by the baseline sample.
    pub dropped_by_sampling: u64,
    /// Error traces seen.
    pub error_traces: u64,
    /// Error traces kept (must equal `error_traces`).
    pub error_traces_kept: u64,
    /// Kept-trace counts by reason: error.
    pub kept_error: u64,
    /// Kept by alert-window overlap.
    pub kept_alert: u64,
    /// Kept by the slow-tail quota.
    pub kept_slow: u64,
    /// Kept by the baseline sample.
    pub kept_sampled: u64,
    /// SLO alert fire→resolve windows observed during the run.
    pub alert_windows: u64,
    /// Largest node fan-out of any kept trace (gateway counts as one).
    pub max_trace_nodes: u64,
    /// Kept traces spanning ≥3 dumps (gateway + primary + replica).
    pub cross_node_traces: u64,
    /// Tenants with recorded usage.
    pub usage_tenants: u64,
    /// Total LLM tokens metered across tenants.
    pub usage_tokens: u64,
    /// Total SQL rows written across tenants.
    pub usage_rows: u64,
    /// Rows in `obs_spans` after materialization.
    pub store_span_rows: u64,
    /// Rows in `obs_metrics`.
    pub store_metric_rows: u64,
    /// Rows in `obs_exemplars`.
    pub store_exemplar_rows: u64,
    /// Does the SQL top-k query match the in-memory oracle everywhere?
    pub sql_matches_oracle: bool,
    /// Content fingerprint of the materialized store.
    pub store_fingerprint: u64,
}

impl TelemetryReport {
    /// Deterministic JSON (stable key order, fixed formatting).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"name\":\"{}\",", self.name));
        s.push_str(&format!("\"seed\":{},", self.seed));
        s.push_str(&format!("\"nodes\":{},", self.nodes));
        s.push_str(&format!("\"replication\":{},", self.replication));
        s.push_str(&format!("\"requests\":{},", self.requests));
        s.push_str(&format!("\"ok\":{},", self.ok));
        s.push_str(&format!("\"failed\":{},", self.failed));
        s.push_str(&format!("\"throttled\":{},", self.throttled));
        s.push_str(&format!("\"spans_total\":{},", self.spans_total));
        s.push_str(&format!("\"spans_kept\":{},", self.spans_kept));
        s.push_str(&format!("\"span_budget\":{},", self.span_budget));
        s.push_str(&format!("\"traces_total\":{},", self.traces_total));
        s.push_str(&format!("\"traces_kept\":{},", self.traces_kept));
        s.push_str(&format!("\"dropped_by_budget\":{},", self.dropped_by_budget));
        s.push_str(&format!(
            "\"dropped_by_sampling\":{},",
            self.dropped_by_sampling
        ));
        s.push_str(&format!("\"error_traces\":{},", self.error_traces));
        s.push_str(&format!(
            "\"error_traces_kept\":{},",
            self.error_traces_kept
        ));
        s.push_str(&format!("\"kept_error\":{},", self.kept_error));
        s.push_str(&format!("\"kept_alert\":{},", self.kept_alert));
        s.push_str(&format!("\"kept_slow\":{},", self.kept_slow));
        s.push_str(&format!("\"kept_sampled\":{},", self.kept_sampled));
        s.push_str(&format!("\"alert_windows\":{},", self.alert_windows));
        s.push_str(&format!("\"max_trace_nodes\":{},", self.max_trace_nodes));
        s.push_str(&format!(
            "\"cross_node_traces\":{},",
            self.cross_node_traces
        ));
        s.push_str(&format!("\"usage_tenants\":{},", self.usage_tenants));
        s.push_str(&format!("\"usage_tokens\":{},", self.usage_tokens));
        s.push_str(&format!("\"usage_rows\":{},", self.usage_rows));
        s.push_str(&format!("\"store_span_rows\":{},", self.store_span_rows));
        s.push_str(&format!(
            "\"store_metric_rows\":{},",
            self.store_metric_rows
        ));
        s.push_str(&format!(
            "\"store_exemplar_rows\":{},",
            self.store_exemplar_rows
        ));
        s.push_str(&format!(
            "\"sql_matches_oracle\":{},",
            self.sql_matches_oracle
        ));
        s.push_str(&format!(
            "\"store_fingerprint\":\"{:016x}\"",
            self.store_fingerprint
        ));
        s.push('}');
        s
    }
}

/// Pair a burn-rate engine's fire/resolve transitions into closed
/// `(fired_us, resolved_us)` windows per `(slo, rule)`; a still-firing
/// alert yields a window open to `u64::MAX`.
pub fn alert_windows(slo: &SloEngine) -> Vec<(u64, u64)> {
    let mut open: std::collections::BTreeMap<(String, String), u64> =
        std::collections::BTreeMap::new();
    let mut windows = Vec::new();
    for a in slo.alerts() {
        let key = (a.slo.clone(), a.rule.clone());
        if a.firing {
            open.entry(key).or_insert(a.at_us);
        } else if let Some(fired) = open.remove(&key) {
            windows.push((fired, a.at_us));
        }
    }
    for (_, fired) in open {
        windows.push((fired, u64::MAX));
    }
    windows.sort_unstable();
    windows
}

/// Materialize an aggregated [`Telemetry`] + [`UsageLedger`] into a SQL
/// engine over **paged** disk-style storage — the telemetry store. Every
/// statement comes from [`dbgpt_obs::export_sql`]; failures are bugs.
pub fn materialize_store(t: &Telemetry, usage: &UsageLedger) -> Engine {
    let mut engine = Engine::with_storage(StorageConfig::paged(64, 4096));
    for stmt in export_sql(t, usage) {
        engine.execute(&stmt).expect("telemetry store statement");
    }
    engine
}

/// Run the canonical top-k query against the store and decode the rows
/// as `(duration_us, trace, span)` with ids parsed back from hex.
pub fn slowest_from_store(
    engine: &mut Engine,
    name: &str,
    tenant: &str,
    k: usize,
) -> Vec<(u64, u64, u64)> {
    let res = engine
        .execute(&slowest_spans_query(name, tenant, k))
        .expect("telemetry store query");
    res.rows
        .iter()
        .map(|row| {
            let dur = match row.get(0) {
                Some(Value::Int(v)) => *v as u64,
                other => panic!("duration_us not an int: {other:?}"),
            };
            let parse = |v: Option<&Value>| match v {
                Some(Value::Text(s)) => {
                    TraceContext::parse_hex(s).expect("well-formed hex id in store")
                }
                other => panic!("id not text: {other:?}"),
            };
            (dur, parse(row.get(1)), parse(row.get(2)))
        })
        .collect()
}

/// Compare the SQL store against the in-memory aggregator for every
/// tenant that has `name` spans: `true` iff every tenant's top-k SQL
/// result equals [`Telemetry::slowest_spans_per_tenant`] row for row.
pub fn store_matches_oracle(engine: &mut Engine, t: &Telemetry, name: &str, k: usize) -> bool {
    let oracle = t.slowest_spans_per_tenant(name, k);
    oracle.iter().all(|(tenant, expect)| {
        let got = slowest_from_store(engine, name, tenant, k);
        got == *expect
    })
}

fn count_rows(engine: &mut Engine, table: &str) -> u64 {
    engine
        .execute(&format!("SELECT COUNT(*) FROM {table}"))
        .map(|r| match r.rows.first().and_then(|row| row.get(0)) {
            Some(Value::Int(v)) => *v as u64,
            _ => 0,
        })
        .unwrap_or(0)
}

/// Replay `scn` end to end: traced cluster run → SLO windows → tail
/// sampling → SQL store → oracle cross-check. Deterministic in `scn`.
pub fn run_telemetry_scenario(scn: &TelemetryScenario) -> TelemetryRun {
    let arrivals = generate(&scn.traffic);
    let mut cluster = Cluster::with_telemetry(scn.cluster.clone(), scn.telemetry);

    let mut events = scn.schedule.events.clone();
    events.sort_by_key(|e| e.at_us);
    let mut next_event = 0usize;

    let mut slo = SloEngine::with_rules(
        vec![
            SloDef::latency("cluster-p99-latency", "cluster.latency_us", 0.99, scn.slo_us),
            SloDef::error_rate("cluster-availability", "cluster.failed", "cluster.requests", 0.001),
        ],
        BurnRule::classic(),
    );
    let mut next_snap_us = if scn.snapshot_every_us > 0 {
        scn.snapshot_every_us
    } else {
        u64::MAX
    };

    let mut outcomes = Vec::with_capacity(arrivals.len());
    for a in &arrivals {
        while next_event < events.len() && events[next_event].at_us <= a.at_us {
            cluster.apply_node_fault(&events[next_event].fault);
            next_event += 1;
        }
        while next_snap_us <= a.at_us {
            slo.push_snapshot(next_snap_us, &cluster.metrics.snapshot());
            next_snap_us += scn.snapshot_every_us;
        }
        outcomes.push(cluster.handle(a, None));
    }
    let last_us = arrivals.last().map_or(0, |a| a.at_us);
    if scn.snapshot_every_us > 0 {
        slo.push_snapshot(last_us.max(next_snap_us), &cluster.metrics.snapshot());
    }

    let windows = alert_windows(&slo);
    let telemetry = cluster.collect(&scn.policy, &windows);
    let usage = cluster.usage().clone();
    let tenant_view = cluster.tenant_view();

    let (ok, failed, throttled) = outcomes.iter().fold((0u64, 0u64, 0u64), |acc, o| {
        match &o.outcome {
            Outcome::Ok { .. } => (acc.0 + 1, acc.1, acc.2),
            Outcome::Unavailable(_) => (acc.0, acc.1 + 1, acc.2),
            Outcome::Throttled(_) => (acc.0, acc.1, acc.2 + 1),
        }
    });

    let mut engine = materialize_store(&telemetry, &usage);
    let sql_matches_oracle = store_matches_oracle(&mut engine, &telemetry, "node.serve", 5)
        && store_matches_oracle(&mut engine, &telemetry, "sql.execute", 5);
    let store_span_rows = count_rows(&mut engine, "obs_spans");
    let store_metric_rows = count_rows(&mut engine, "obs_metrics");
    let store_exemplar_rows = count_rows(&mut engine, "obs_exemplars");
    let store_fingerprint = engine.database().fingerprint();

    let reasons = telemetry.kept_by_reason();
    let (err_total, err_kept) = telemetry.error_retention();
    let kept_summaries = telemetry.summaries.iter().filter(|s| s.kept.is_some());
    let max_trace_nodes = kept_summaries
        .clone()
        .map(|s| s.node_count)
        .max()
        .unwrap_or(0);
    let cross_node_traces = kept_summaries.filter(|s| s.node_count >= 3).count() as u64;

    let report = TelemetryReport {
        name: scn.name.clone(),
        seed: scn.cluster.seed,
        nodes: scn.cluster.nodes,
        replication: scn.cluster.replication,
        requests: arrivals.len() as u64,
        ok,
        failed,
        throttled,
        spans_total: telemetry.spans_total,
        spans_kept: telemetry.spans_kept,
        span_budget: telemetry.span_budget,
        traces_total: telemetry.traces_total,
        traces_kept: telemetry.traces_kept,
        dropped_by_budget: telemetry.dropped_by_budget,
        dropped_by_sampling: telemetry.dropped_by_sampling,
        error_traces: err_total,
        error_traces_kept: err_kept,
        kept_error: reasons.get("error").copied().unwrap_or(0),
        kept_alert: reasons.get("alert").copied().unwrap_or(0),
        kept_slow: reasons.get("slow").copied().unwrap_or(0),
        kept_sampled: reasons.get("sampled").copied().unwrap_or(0),
        alert_windows: windows.len() as u64,
        max_trace_nodes,
        cross_node_traces,
        usage_tenants: usage.tenant_count() as u64,
        usage_tokens: usage.iter().map(|(_, u)| u.total_tokens()).sum(),
        usage_rows: usage.iter().map(|(_, u)| u.rows_written).sum(),
        store_span_rows,
        store_metric_rows,
        store_exemplar_rows,
        sql_matches_oracle,
        store_fingerprint,
    };

    TelemetryRun {
        telemetry,
        usage,
        outcomes,
        alert_windows: windows,
        tenant_view,
        report,
    }
}
