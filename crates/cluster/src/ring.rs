//! Consistent-hash ring with virtual nodes.
//!
//! Shard keys (tenant ids) map to the first virtual node clockwise from
//! the key's hash; the replica set for a key is the next `r` *distinct*
//! physical nodes in ring order. Virtual nodes smooth the load so that
//! adding or removing one physical node moves roughly `K/N` of `K` keys —
//! the bounded-movement property the property tests pin down.
//!
//! Everything here is a pure function of the membership set and the
//! built-in mixer — no RNG, no ambient state — so placement is
//! byte-reproducible across runs and platforms.

use std::collections::BTreeSet;

/// 64-bit finalizer (SplitMix64's mixer): decorrelates sequential vnode
/// indices into well-spread ring positions.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Position a shard key on the ring: FNV-1a over the bytes, then mixed.
pub fn hash_key(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    mix(h)
}

/// Position of virtual node `vnode` of physical node `node`.
fn vnode_hash(node: usize, vnode: usize) -> u64 {
    mix(((node as u64) << 32) | (vnode as u64) | 0x5eed_0000_0000_0000)
}

/// A consistent-hash ring over physical node ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    vnodes_per_node: usize,
    /// Sorted `(position, node)` points; ties broken by node id so the
    /// ordering is total even under (astronomically unlikely) collisions.
    points: Vec<(u64, usize)>,
    nodes: BTreeSet<usize>,
}

impl HashRing {
    /// An empty ring placing `vnodes_per_node` virtual nodes per member.
    pub fn new(vnodes_per_node: usize) -> Self {
        HashRing {
            vnodes_per_node: vnodes_per_node.max(1),
            points: Vec::new(),
            nodes: BTreeSet::new(),
        }
    }

    /// A ring pre-populated with nodes `0..n`.
    pub fn with_nodes(n: usize, vnodes_per_node: usize) -> Self {
        let mut ring = HashRing::new(vnodes_per_node);
        for node in 0..n {
            ring.add_node(node);
        }
        ring
    }

    /// Add a physical node (no-op if already present).
    pub fn add_node(&mut self, node: usize) {
        if !self.nodes.insert(node) {
            return;
        }
        for v in 0..self.vnodes_per_node {
            self.points.push((vnode_hash(node, v), node));
        }
        self.points.sort_unstable();
    }

    /// Remove a physical node (no-op if absent).
    pub fn remove_node(&mut self, node: usize) {
        if !self.nodes.remove(&node) {
            return;
        }
        self.points.retain(|&(_, n)| n != node);
    }

    /// Member node ids, ascending.
    pub fn nodes(&self) -> Vec<usize> {
        self.nodes.iter().copied().collect()
    }

    /// Number of physical nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are present.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The primary owner of `key`: the first virtual node at or after the
    /// key's position, wrapping around.
    pub fn primary(&self, key: &str) -> Option<usize> {
        self.replicas(key, 1).first().copied()
    }

    /// The replica set for `key`: the next `r` *distinct* physical nodes
    /// clockwise from the key's position (fewer if the ring has fewer
    /// members). The first entry is the primary.
    pub fn replicas(&self, key: &str, r: usize) -> Vec<usize> {
        let want = r.min(self.nodes.len());
        let mut out = Vec::with_capacity(want);
        if want == 0 {
            return out;
        }
        let h = hash_key(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        for i in 0..self.points.len() {
            let (_, node) = self.points[(start + i) % self.points.len()];
            if !out.contains(&node) {
                out.push(node);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_are_deterministic() {
        let a = HashRing::with_nodes(5, 64);
        let b = HashRing::with_nodes(5, 64);
        for k in 0..50 {
            let key = format!("tenant-{k}");
            assert_eq!(a.replicas(&key, 3), b.replicas(&key, 3));
        }
    }

    #[test]
    fn replicas_are_distinct_and_capped() {
        let ring = HashRing::with_nodes(4, 32);
        for k in 0..40 {
            let key = format!("t{k}");
            let reps = ring.replicas(&key, 3);
            assert_eq!(reps.len(), 3);
            let uniq: BTreeSet<_> = reps.iter().collect();
            assert_eq!(uniq.len(), 3, "duplicate replica for {key}: {reps:?}");
            // Asking for more replicas than nodes caps at the node count.
            assert_eq!(ring.replicas(&key, 9).len(), 4);
        }
    }

    #[test]
    fn membership_change_moves_a_bounded_fraction() {
        let keys: Vec<String> = (0..1000).map(|k| format!("tenant-{k}")).collect();
        let mut ring = HashRing::with_nodes(8, 64);
        let before: Vec<_> = keys.iter().map(|k| ring.primary(k).unwrap()).collect();
        ring.add_node(8);
        let after: Vec<_> = keys.iter().map(|k| ring.primary(k).unwrap()).collect();
        let moved = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        // Ideal movement is K/(N+1) ≈ 111; allow generous slack for
        // vnode variance but stay far below a full reshuffle.
        assert!(moved > 0, "adding a node must take over some keys");
        assert!(moved < 300, "moved {moved} of 1000 keys, expected ~111");
        // Every moved key moved TO the new node.
        for (i, (a, b)) in before.iter().zip(&after).enumerate() {
            if a != b {
                assert_eq!(*b, 8, "key {i} moved to an old node: {a} -> {b}");
            }
        }
    }

    #[test]
    fn removal_only_moves_the_removed_nodes_keys() {
        let keys: Vec<String> = (0..500).map(|k| format!("s{k}")).collect();
        let mut ring = HashRing::with_nodes(6, 64);
        let before: Vec<_> = keys.iter().map(|k| ring.primary(k).unwrap()).collect();
        ring.remove_node(2);
        let after: Vec<_> = keys.iter().map(|k| ring.primary(k).unwrap()).collect();
        for (i, (a, b)) in before.iter().zip(&after).enumerate() {
            if *a != 2 {
                assert_eq!(a, b, "key {i} moved although its owner survived");
            } else {
                assert_ne!(*b, 2, "key {i} still maps to the removed node");
            }
        }
    }

    #[test]
    fn empty_ring_has_no_owner() {
        let ring = HashRing::new(16);
        assert!(ring.is_empty());
        assert_eq!(ring.primary("x"), None);
        assert!(ring.replicas("x", 3).is_empty());
    }
}
