//! Replicated per-tenant shard state.
//!
//! Each tenant's shard bundles the three stateful surfaces the paper's
//! system keeps per workspace: the **session log** (chat history), the
//! **SQL catalog** (a [`dbgpt_sqlengine::Engine`] with the tenant's audit
//! table), and the **knowledge base** (a [`dbgpt_rag::KnowledgeBase`]).
//!
//! Replication works on a deterministic op log: every acknowledged
//! request is distilled into a [`StateOp`] that replays identically on
//! any replica, and [`TenantState::fingerprint`] folds all three surfaces
//! into one `u64` so tests can assert replica convergence byte-for-byte.

use dbgpt_obs::Span;
use dbgpt_rag::{Document, KnowledgeBase};
use dbgpt_sqlengine::Engine;

/// One replicated state transition, derived purely from the request —
/// applying the same op twice on two replicas yields identical state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateOp {
    /// Per-tenant log position (0-based, contiguous).
    pub seq: u64,
    /// Tenant key (e.g. `tenant-003`).
    pub tenant: String,
    /// The prompt that produced this op.
    pub prompt: String,
    /// Simulated completion latency — recorded in the audit row.
    pub latency_us: u64,
}

/// Every Nth op per tenant also ingests a knowledge-base document.
const KB_DOC_EVERY: u64 = 8;

/// One replica's copy of one tenant's shard.
pub struct TenantState {
    tenant: String,
    /// How many ops from the tenant's log this replica has applied.
    pub applied_seq: u64,
    /// The session log: one entry per applied op.
    session_log: Vec<String>,
    sql: Engine,
    kb: KnowledgeBase,
}

impl TenantState {
    /// Fresh shard for `tenant`: empty session log, an `audit` table, an
    /// empty knowledge base.
    pub fn new(tenant: &str) -> Self {
        let mut sql = Engine::new();
        sql.execute("CREATE TABLE audit (seq INT, latency_us INT)")
            .expect("create audit table");
        TenantState {
            tenant: tenant.to_string(),
            applied_seq: 0,
            session_log: Vec::new(),
            sql,
            kb: KnowledgeBase::with_defaults(),
        }
    }

    /// Apply the next op. Panics on a log gap — replication must keep
    /// replicas contiguous (catch up before applying fresh ops).
    pub fn apply(&mut self, op: &StateOp) {
        self.apply_traced(op, &Span::noop());
    }

    /// [`TenantState::apply`] under a trace span: the audit INSERT runs
    /// through `execute_traced` so replica-side SQL work lands in the
    /// request's distributed trace. Returns the rows written. With a
    /// non-recording parent this is byte-identical to `apply`.
    pub fn apply_traced(&mut self, op: &StateOp, parent: &Span) -> u64 {
        assert_eq!(
            op.seq, self.applied_seq,
            "{}: op {} applied out of order (at {})",
            self.tenant, op.seq, self.applied_seq
        );
        self.session_log
            .push(format!("user#{}: {}", op.seq, op.prompt));
        let res = self
            .sql
            .execute_traced(
                &format!("INSERT INTO audit VALUES ({}, {})", op.seq, op.latency_us),
                parent,
            )
            .expect("insert audit row");
        if op.seq.is_multiple_of(KB_DOC_EVERY) {
            let doc = Document::from_text(
                format!("{}-note-{}", self.tenant, op.seq),
                format!(
                    "Operational note {} for {}. The request asked: {}. \
                     Recorded latency was {} microseconds.",
                    op.seq, self.tenant, op.prompt, op.latency_us
                ),
            );
            self.kb.add_document(doc).expect("ingest kb note");
        }
        self.applied_seq += 1;
        res.rows_affected as u64
    }

    /// Number of session-log entries (equals `applied_seq`).
    pub fn session_len(&self) -> usize {
        self.session_log.len()
    }

    /// Build the knowledge base's ANN indexes (IVF partitions + the HNSW
    /// graph) on this replica only. Index state is *derived data* — it
    /// must never leak into [`TenantState::fingerprint`], so a replica
    /// that built indexes and one that did not still converge (see
    /// `tests/ann_convergence.rs`).
    pub fn build_ann_index(&mut self) {
        self.kb.build_ann_index();
        self.kb
            .build_hnsw_index(dbgpt_rag::AnnBuildConfig::default());
    }

    /// Has this replica built its HNSW index?
    pub fn has_hnsw_index(&self) -> bool {
        self.kb.has_hnsw_index()
    }

    /// Fold session log, SQL catalog, and knowledge base into one
    /// order-sensitive FNV-1a digest. Two replicas that applied the same
    /// op prefix produce the same fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= *b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        eat(self.tenant.as_bytes());
        eat(&self.applied_seq.to_le_bytes());
        for line in &self.session_log {
            eat(line.as_bytes());
        }
        let mut out = h;
        out ^= self.sql.database().fingerprint().wrapping_mul(0x9e37_79b9_7f4a_7c15);
        out ^= self.kb.fingerprint().wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(seq: u64, tenant: &str) -> StateOp {
        StateOp {
            seq,
            tenant: tenant.to_string(),
            prompt: format!("question {seq}"),
            latency_us: 40_000 + seq,
        }
    }

    #[test]
    fn replay_converges_to_identical_fingerprints() {
        let mut a = TenantState::new("tenant-000");
        let mut b = TenantState::new("tenant-000");
        for s in 0..20 {
            a.apply(&op(s, "tenant-000"));
        }
        for s in 0..20 {
            b.apply(&op(s, "tenant-000"));
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.session_len(), 20);
    }

    #[test]
    fn fingerprint_tracks_divergence() {
        let mut a = TenantState::new("t");
        let mut b = TenantState::new("t");
        a.apply(&op(0, "t"));
        let behind = b.fingerprint();
        b.apply(&op(0, "t"));
        assert_ne!(behind, b.fingerprint(), "applying an op must change it");
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = TenantState::new("t");
        c.apply(&StateOp {
            latency_us: 1,
            ..op(0, "t")
        });
        assert_ne!(a.fingerprint(), c.fingerprint(), "payload differs");
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn log_gaps_are_rejected() {
        let mut a = TenantState::new("t");
        a.apply(&op(1, "t"));
    }

    #[test]
    fn audit_rows_accumulate() {
        let mut a = TenantState::new("tenant-001");
        for s in 0..5 {
            a.apply(&op(s, "tenant-001"));
        }
        let rows = a.sql.execute("SELECT seq FROM audit").unwrap();
        assert_eq!(rows.rows.len(), 5);
    }
}
