//! Error type for the application layer.

use std::fmt;

/// Errors surfaced by data-interaction apps.
#[derive(Debug, Clone, PartialEq)]
pub enum AppError {
    /// Text-to-SQL could not produce a query.
    Text2Sql(String),
    /// The database rejected or failed the query.
    Sql(String),
    /// The model backend failed.
    Llm(String),
    /// RAG pipeline failure.
    Rag(String),
    /// Chart construction failed.
    Vis(String),
    /// Multi-agent execution failed.
    Agent(String),
    /// An AWEL workflow run failed.
    Workflow(String),
    /// Input was empty or unusable.
    BadInput(String),
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::Text2Sql(m) => write!(f, "text-to-sql: {m}"),
            AppError::Sql(m) => write!(f, "sql: {m}"),
            AppError::Llm(m) => write!(f, "llm: {m}"),
            AppError::Rag(m) => write!(f, "rag: {m}"),
            AppError::Vis(m) => write!(f, "vis: {m}"),
            AppError::Agent(m) => write!(f, "agent: {m}"),
            AppError::Workflow(m) => write!(f, "workflow: {m}"),
            AppError::BadInput(m) => write!(f, "bad input: {m}"),
        }
    }
}

impl std::error::Error for AppError {}

impl From<dbgpt_text2sql::Text2SqlError> for AppError {
    fn from(e: dbgpt_text2sql::Text2SqlError) -> Self {
        AppError::Text2Sql(e.to_string())
    }
}
impl From<dbgpt_sqlengine::SqlError> for AppError {
    fn from(e: dbgpt_sqlengine::SqlError) -> Self {
        AppError::Sql(e.to_string())
    }
}
impl From<dbgpt_llm::LlmError> for AppError {
    fn from(e: dbgpt_llm::LlmError) -> Self {
        AppError::Llm(e.to_string())
    }
}
impl From<dbgpt_rag::RagError> for AppError {
    fn from(e: dbgpt_rag::RagError) -> Self {
        AppError::Rag(e.to_string())
    }
}
impl From<dbgpt_vis::VisError> for AppError {
    fn from(e: dbgpt_vis::VisError) -> Self {
        AppError::Vis(e.to_string())
    }
}
impl From<dbgpt_agents::AgentError> for AppError {
    fn from(e: dbgpt_agents::AgentError) -> Self {
        AppError::Agent(e.to_string())
    }
}
impl From<dbgpt_awel::AwelError> for AppError {
    fn from(e: dbgpt_awel::AwelError) -> Self {
        AppError::Workflow(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_label_their_domain() {
        let e: AppError = dbgpt_sqlengine::SqlError::TableNotFound("t".into()).into();
        assert!(e.to_string().starts_with("sql:"));
        let e: AppError = dbgpt_llm::LlmError::EmptyPrompt.into();
        assert!(e.to_string().starts_with("llm:"));
        let e: AppError = dbgpt_vis::VisError::EmptyResult.into();
        assert!(e.to_string().starts_with("vis:"));
    }
}
