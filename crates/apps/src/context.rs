//! The shared application context.
//!
//! Applications draw on four module-layer resources: a model client
//! (direct or via SMMF), the SQL engine, the knowledge base, and a
//! Text-to-SQL model. [`AppContext`] bundles them behind locks so one
//! context can back every app and every server handler simultaneously.

use std::sync::Arc;

use parking_lot::RwLock;

use dbgpt_agents::LlmClient;
use dbgpt_llm::catalog::builtin_model;
use dbgpt_obs::Obs;
use dbgpt_rag::KnowledgeBase;
use dbgpt_sqlengine::Engine;
use dbgpt_text2sql::Text2SqlModel;

/// Shared resources for the application layer.
#[derive(Clone)]
pub struct AppContext {
    /// Model access (chat / planning / summarisation).
    pub llm: LlmClient,
    /// The database all SQL apps target.
    pub engine: Arc<RwLock<Engine>>,
    /// The RAG knowledge base.
    pub kb: Arc<RwLock<KnowledgeBase>>,
    /// The Text-to-SQL model (base or fine-tuned).
    pub t2s: Text2SqlModel,
    /// Observability handle (disabled by default): apps root their request
    /// spans here when no caller span is propagated in.
    pub obs: Obs,
}

impl AppContext {
    /// A context with local defaults: the `sim-qwen` model, an empty
    /// database, an empty knowledge base, and the base Text-to-SQL model.
    pub fn local_default() -> Self {
        AppContext {
            llm: LlmClient::direct(builtin_model("sim-qwen").expect("builtin exists")),
            engine: Arc::new(RwLock::new(Engine::new())),
            kb: Arc::new(RwLock::new(KnowledgeBase::with_defaults())),
            t2s: Text2SqlModel::base(),
            obs: Obs::disabled(),
        }
    }

    /// Replace the model client, builder style.
    pub fn with_llm(mut self, llm: LlmClient) -> Self {
        self.llm = llm;
        self
    }

    /// Attach an observability handle, builder style. Also points the
    /// knowledge base at the same handle so RAG spans and app spans land
    /// in one tracer.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.kb.write().set_obs(obs.clone());
        self.obs = obs;
        self
    }

    /// Replace the Text-to-SQL model, builder style.
    pub fn with_t2s(mut self, t2s: Text2SqlModel) -> Self {
        self.t2s = t2s;
        self
    }

    /// Execute setup SQL (DDL + seeds) against the shared engine.
    pub fn seed_sql(&self, statements: &[&str]) -> Result<(), dbgpt_sqlengine::SqlError> {
        let mut engine = self.engine.write();
        for s in statements {
            engine.execute(s)?;
        }
        Ok(())
    }

    /// The current schema DDL (the Text-to-SQL prompt context).
    pub fn schema_ddl(&self) -> String {
        self.engine.read().database().schema_ddl()
    }

    /// The demo's sales database (orders / users / products), used by the
    /// Fig. 3 walk-through, examples and benchmarks.
    pub fn with_sales_demo_data(self) -> Self {
        self.seed_sql(&[
            "CREATE TABLE orders (id INT, user_id INT, product_id INT, amount FLOAT, category TEXT, month TEXT)",
            "CREATE TABLE users (id INT, name TEXT, city TEXT, age INT)",
            "CREATE TABLE products (id INT, name TEXT, price FLOAT, stock INT)",
            "INSERT INTO users VALUES \
             (1, 'alice', 'berlin', 34), (2, 'bob', 'paris', 28), \
             (3, 'carol', 'tokyo', 45), (4, 'dave', 'berlin', 52)",
            "INSERT INTO products VALUES \
             (1, 'laptop', 1200.0, 12), (2, 'novel', 15.0, 200), \
             (3, 'coffee', 9.5, 500), (4, 'monitor', 300.0, 40)",
            "INSERT INTO orders VALUES \
             (1, 1, 1, 1200.0, 'tech', 'jan'), (2, 2, 2, 30.0, 'books', 'jan'), \
             (3, 1, 3, 19.0, 'food', 'feb'), (4, 3, 1, 2400.0, 'tech', 'feb'), \
             (5, 2, 4, 300.0, 'tech', 'mar'), (6, 4, 2, 15.0, 'books', 'mar'), \
             (7, 3, 3, 28.5, 'food', 'mar'), (8, 1, 4, 600.0, 'tech', 'jan')",
        ])
        .expect("demo data is valid");
        self
    }
}

impl std::fmt::Debug for AppContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppContext")
            .field("llm", &self.llm)
            .field("tables", &self.engine.read().database().table_count())
            .field("t2s", &self.t2s.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_context_is_empty() {
        let ctx = AppContext::local_default();
        assert_eq!(ctx.engine.read().database().table_count(), 0);
        assert_eq!(ctx.t2s.name(), "t2s-base");
    }

    #[test]
    fn sales_demo_data_loads() {
        let ctx = AppContext::local_default().with_sales_demo_data();
        let ddl = ctx.schema_ddl();
        assert!(ddl.contains("CREATE TABLE orders"));
        assert!(ddl.contains("CREATE TABLE users"));
        let count = ctx
            .engine
            .write()
            .execute("SELECT COUNT(*) FROM orders")
            .unwrap();
        assert_eq!(count.rows[0][0].as_i64(), Some(8));
    }

    #[test]
    fn seed_sql_propagates_errors() {
        let ctx = AppContext::local_default();
        assert!(ctx.seed_sql(&["CREATE TABLE t (a INT)", "NONSENSE"]).is_err());
    }

    #[test]
    fn context_clone_shares_engine() {
        let ctx = AppContext::local_default();
        let clone = ctx.clone();
        ctx.seed_sql(&["CREATE TABLE shared (a INT)"]).unwrap();
        assert!(clone.schema_ddl().contains("shared"));
    }
}
