//! Chat2DB: talk to a live database in natural language (or raw SQL).
//!
//! The canonical data-interaction flow: the user's utterance is turned
//! into SQL by the Text-to-SQL model (or accepted verbatim if it already
//! *is* SQL), executed on the engine, explained back in English, and
//! rendered as a table.

use serde::Serialize;

use dbgpt_text2sql::sql_to_text;

use crate::context::AppContext;
use crate::error::AppError;

/// The result of one Chat2DB turn.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Chat2DbReply {
    /// The SQL that ran.
    pub sql: String,
    /// English explanation of the SQL.
    pub explanation: String,
    /// Rendered ASCII table of the result.
    pub table: String,
    /// Result row count (or rows affected for DML).
    pub rows: usize,
}

/// The Chat2DB app.
#[derive(Debug, Clone)]
pub struct Chat2Db {
    ctx: AppContext,
}

/// Strip a leading `EXPLAIN` keyword, returning the remainder.
fn strip_explain(input: &str) -> Option<&str> {
    let trimmed = input.trim_start();
    let first = trimmed.split_whitespace().next()?;
    if first.eq_ignore_ascii_case("EXPLAIN") {
        Some(trimmed[first.len()..].trim_start())
    } else {
        None
    }
}

/// Does the input already look like SQL?
pub fn looks_like_sql(input: &str) -> bool {
    let first = input.split_whitespace().next().unwrap_or("");
    matches!(
        first.to_uppercase().as_str(),
        "SELECT" | "INSERT" | "UPDATE" | "DELETE" | "CREATE" | "DROP"
    )
}

impl Chat2Db {
    /// App over a context.
    pub fn new(ctx: AppContext) -> Self {
        Chat2Db { ctx }
    }

    /// Handle one utterance.
    pub fn ask(&self, input: &str) -> Result<Chat2DbReply, AppError> {
        let input = input.trim();
        if input.is_empty() {
            return Err(AppError::BadInput("empty input".into()));
        }
        // EXPLAIN path: show the optimized plan instead of executing.
        if let Some(rest) = strip_explain(input) {
            let sql = if looks_like_sql(rest) {
                rest.to_string()
            } else {
                let ddl = self.ctx.schema_ddl();
                if ddl.is_empty() {
                    return Err(AppError::BadInput("database has no tables".into()));
                }
                self.ctx.t2s.generate_sql(&ddl, rest)?
            };
            let plan = self.ctx.engine.read().explain(&sql)?;
            let explanation = sql_to_text(&sql)?;
            return Ok(Chat2DbReply {
                sql,
                explanation,
                table: plan,
                rows: 0,
            });
        }
        let sql = if looks_like_sql(input) {
            input.to_string()
        } else {
            let ddl = self.ctx.schema_ddl();
            if ddl.is_empty() {
                return Err(AppError::BadInput("database has no tables".into()));
            }
            self.ctx.t2s.generate_sql(&ddl, input)?
        };
        let explanation = sql_to_text(&sql)?;
        let result = self.ctx.engine.write().execute(&sql)?;
        let rows = if result.rows.is_empty() && result.schema.is_empty() {
            result.rows_affected
        } else {
            result.rows.len()
        };
        Ok(Chat2DbReply {
            sql,
            explanation,
            table: result.to_table(),
            rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> Chat2Db {
        Chat2Db::new(AppContext::local_default().with_sales_demo_data())
    }

    #[test]
    fn natural_language_question() {
        let r = app().ask("how many orders are there?").unwrap();
        assert_eq!(r.sql, "SELECT COUNT(*) FROM orders;");
        assert!(r.table.contains('8'));
        assert_eq!(r.rows, 1);
        assert!(r.explanation.contains("orders table"));
    }

    #[test]
    fn raw_sql_passes_through() {
        let r = app().ask("SELECT name FROM users ORDER BY name LIMIT 2").unwrap();
        assert!(r.table.contains("alice"));
        assert!(r.table.contains("bob"));
        assert_eq!(r.rows, 2);
    }

    #[test]
    fn dml_reports_rows_affected() {
        let a = app();
        let r = a.ask("DELETE FROM orders WHERE category = 'food'").unwrap();
        assert_eq!(r.rows, 2);
        let r = a.ask("how many orders are there?").unwrap();
        assert!(r.table.contains('6'));
    }

    #[test]
    fn grouped_question() {
        let r = app().ask("what is the total amount per category of orders?").unwrap();
        assert!(r.sql.contains("GROUP BY category"));
        assert!(r.table.contains("books"));
        assert_eq!(r.rows, 3);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(app().ask("  "), Err(AppError::BadInput(_))));
    }

    #[test]
    fn unanswerable_question_errors() {
        assert!(matches!(
            app().ask("how many unicorns are there?"),
            Err(AppError::Text2Sql(_))
        ));
    }

    #[test]
    fn bad_sql_surfaces_engine_error() {
        assert!(matches!(
            app().ask("SELECT missing_col FROM orders"),
            Err(AppError::Sql(_))
        ));
    }

    #[test]
    fn empty_database_rejected_for_nl() {
        let app = Chat2Db::new(AppContext::local_default());
        assert!(matches!(app.ask("how many things?"), Err(AppError::BadInput(_))));
    }

    #[test]
    fn explain_shows_the_plan_without_executing() {
        let a = app();
        let r = a.ask("EXPLAIN SELECT id FROM orders WHERE amount > 10").unwrap();
        assert!(r.table.contains("Scan: orders"), "{}", r.table);
        assert_eq!(r.rows, 0);
        // Explaining a natural-language question works too.
        let r = a.ask("explain how many orders are there?").unwrap();
        assert!(r.table.contains("Aggregate"), "{}", r.table);
        assert_eq!(r.sql, "SELECT COUNT(*) FROM orders;");
        // Nothing was executed: the data is intact.
        let r = a.ask("how many orders are there?").unwrap();
        assert!(r.table.contains('8'));
    }

    #[test]
    fn looks_like_sql_detection() {
        assert!(looks_like_sql("SELECT 1"));
        assert!(looks_like_sql("  delete from t"));
        assert!(!looks_like_sql("how many orders"));
        assert!(!looks_like_sql(""));
    }
}
