//! Server-layer adapters: every app as a [`dbgpt_server::AppHandler`].
//!
//! This is the glue between the server layer (§2.2) and the application
//! layer (§2.1): register these handlers on a [`dbgpt_server::Server`] and
//! external requests (frames or structs) reach the same app objects local
//! callers use directly — the "optional layer" contract.

use std::sync::Arc;

use parking_lot::Mutex;
use serde_json::{json, Value};

use dbgpt_obs::Span;
use dbgpt_server::{AppHandler, Server, ServerError, Session};

use crate::analysis::GenerativeAnalyzer;
use crate::chat2data::Chat2Data;
use crate::chat2db::Chat2Db;
use crate::chat2viz::Chat2Viz;
use crate::context::AppContext;
use crate::forecast::Forecaster;
use crate::kbqa::KnowledgeQa;

/// Chat2DB handler.
pub struct Chat2DbHandler(pub Chat2Db);

impl AppHandler for Chat2DbHandler {
    fn app_name(&self) -> &str {
        "chat2db"
    }
    fn handle(
        &self,
        input: &str,
        _params: &Value,
        _session: &Session,
    ) -> Result<(Value, Option<String>), ServerError> {
        let r = self.0.ask(input).map_err(|e| ServerError::Handler(e.to_string()))?;
        let rendered = r.table.clone();
        Ok((
            serde_json::to_value(r).expect("reply serializes"),
            Some(rendered),
        ))
    }
}

/// Chat2Data handler.
pub struct Chat2DataHandler(pub Chat2Data);

impl AppHandler for Chat2DataHandler {
    fn app_name(&self) -> &str {
        "chat2data"
    }
    fn handle(
        &self,
        input: &str,
        _params: &Value,
        _session: &Session,
    ) -> Result<(Value, Option<String>), ServerError> {
        let r = self.0.ask(input).map_err(|e| ServerError::Handler(e.to_string()))?;
        let rendered = r.answer.clone();
        Ok((
            serde_json::to_value(r).expect("reply serializes"),
            Some(rendered),
        ))
    }
    fn handle_traced(
        &self,
        input: &str,
        _params: &Value,
        _session: &Session,
        span: &Span,
    ) -> Result<(Value, Option<String>), ServerError> {
        let r = self
            .0
            .ask_under(input, span)
            .map_err(|e| ServerError::Handler(e.to_string()))?;
        let rendered = r.answer.clone();
        Ok((
            serde_json::to_value(r).expect("reply serializes"),
            Some(rendered),
        ))
    }
}

/// Chat2Viz handler (renders SVG).
pub struct Chat2VizHandler(pub Chat2Viz);

impl AppHandler for Chat2VizHandler {
    fn app_name(&self) -> &str {
        "chat2viz"
    }
    fn handle(
        &self,
        input: &str,
        _params: &Value,
        _session: &Session,
    ) -> Result<(Value, Option<String>), ServerError> {
        let r = self.0.ask(input).map_err(|e| ServerError::Handler(e.to_string()))?;
        let svg = r.svg.clone();
        Ok((
            json!({"spec": r.spec, "sql": r.sql}),
            Some(svg),
        ))
    }
}

/// KBQA handler.
pub struct KbqaHandler(pub KnowledgeQa);

impl AppHandler for KbqaHandler {
    fn app_name(&self) -> &str {
        "kbqa"
    }
    fn handle(
        &self,
        input: &str,
        _params: &Value,
        _session: &Session,
    ) -> Result<(Value, Option<String>), ServerError> {
        let r = self.0.ask(input).map_err(|e| ServerError::Handler(e.to_string()))?;
        let rendered = r.answer.clone();
        Ok((
            serde_json::to_value(r).expect("reply serializes"),
            Some(rendered),
        ))
    }
    fn handle_traced(
        &self,
        input: &str,
        _params: &Value,
        _session: &Session,
        span: &Span,
    ) -> Result<(Value, Option<String>), ServerError> {
        let r = self
            .0
            .ask_under(input, span)
            .map_err(|e| ServerError::Handler(e.to_string()))?;
        let rendered = r.answer.clone();
        Ok((
            serde_json::to_value(r).expect("reply serializes"),
            Some(rendered),
        ))
    }
}

/// Generative-analysis handler (mutation needs a lock).
pub struct AnalysisHandler(pub Mutex<GenerativeAnalyzer>);

impl AppHandler for AnalysisHandler {
    fn app_name(&self) -> &str {
        "analysis"
    }
    fn handle(
        &self,
        input: &str,
        _params: &Value,
        _session: &Session,
    ) -> Result<(Value, Option<String>), ServerError> {
        let report = self
            .0
            .lock()
            .analyze(input)
            .map_err(|e| ServerError::Handler(e.to_string()))?;
        let rendered = report.render_ascii();
        Ok((
            serde_json::to_value(&report).expect("report serializes"),
            Some(rendered),
        ))
    }
}

/// Forecast handler.
pub struct ForecastHandler(pub Forecaster);

impl AppHandler for ForecastHandler {
    fn app_name(&self) -> &str {
        "forecast"
    }
    fn handle(
        &self,
        input: &str,
        _params: &Value,
        _session: &Session,
    ) -> Result<(Value, Option<String>), ServerError> {
        let r = self.0.ask(input).map_err(|e| ServerError::Handler(e.to_string()))?;
        let rendered = r.narrative.clone();
        Ok((
            serde_json::to_value(r).expect("reply serializes"),
            Some(rendered),
        ))
    }
}

/// Build a fully wired server over one context: all six apps registered.
/// The context's observability handle carries over, so `server.request`
/// spans parent the app/engine spans of instrumented apps.
pub fn build_server(ctx: &AppContext) -> Server {
    let mut server = Server::with_obs(ctx.obs.clone());
    server.register(Arc::new(Chat2DbHandler(Chat2Db::new(ctx.clone()))));
    server.register(Arc::new(Chat2DataHandler(Chat2Data::new(ctx.clone()))));
    server.register(Arc::new(Chat2VizHandler(Chat2Viz::new(ctx.clone()))));
    server.register(Arc::new(KbqaHandler(KnowledgeQa::new(ctx.clone()))));
    server.register(Arc::new(AnalysisHandler(Mutex::new(
        GenerativeAnalyzer::new(ctx.clone()),
    ))));
    server.register(Arc::new(ForecastHandler(Forecaster::new(ctx.clone()))));
    server
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgpt_server::{Request, Status};

    fn server() -> Server {
        build_server(&AppContext::local_default().with_sales_demo_data())
    }

    #[test]
    fn all_apps_registered() {
        assert_eq!(
            server().apps(),
            vec!["analysis", "chat2data", "chat2db", "chat2viz", "forecast", "kbqa"]
        );
    }

    #[test]
    fn forecast_through_server() {
        let s = server();
        let resp = s.handle(&Request::new(9, "forecast", "forecast sales for the next 2 months"));
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.content["predictions"].as_array().unwrap().len(), 2);
        assert!(resp.rendered.unwrap().contains("predicted"));
    }

    #[test]
    fn chat2db_through_server() {
        let s = server();
        let resp = s.handle(&Request::new(1, "chat2db", "how many orders are there?"));
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.content["sql"], "SELECT COUNT(*) FROM orders;");
        assert!(resp.rendered.unwrap().contains('8'));
    }

    #[test]
    fn chat2data_through_server() {
        let s = server();
        let resp = s.handle(&Request::new(2, "chat2data", "how many users are there?"));
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.content["answer"], "The answer is 4.");
    }

    #[test]
    fn chat2viz_through_server_renders_svg() {
        let s = server();
        let resp = s.handle(&Request::new(
            3,
            "chat2viz",
            "pie chart of total amount per category of orders",
        ));
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.rendered.unwrap().starts_with("<svg"));
    }

    #[test]
    fn analysis_through_server() {
        let s = server();
        let resp = s.handle(&Request::new(
            4,
            "analysis",
            "Build sales reports and analyze user orders from at least three distinct dimensions",
        ));
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.content["charts"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn handler_errors_become_error_responses() {
        let s = server();
        let resp = s.handle(&Request::new(5, "chat2db", "how many unicorns?"));
        assert_eq!(resp.status, Status::Error);
    }

    #[test]
    fn sessions_work_through_full_stack() {
        let s = server();
        let sid = s.open_session("chat2data");
        let mut req = Request::new(1, "chat2data", "how many orders are there?");
        req.session = sid.clone();
        s.handle(&req);
        let session = s.sessions().get(&sid).unwrap();
        assert_eq!(session.history.len(), 2);
        assert!(session.history[1].content.contains("The answer is 8."));
    }
}
