#![warn(missing_docs)]

//! # dbgpt-apps — the application layer
//!
//! "The application layer encompasses the array of data interaction
//! functionalities supported by DB-GPT. These include, but are not limited
//! to, Text-to-SQL/SQL-to-Text, chat-to-database interactions (chat2db),
//! chat-to-data queries (chat2data), chat-to-Excel operations (chat2excel),
//! chat-to-visualization commands (chat2visualization), generative data
//! analysis, and question answering based on knowledge bases" (paper §2.1).
//!
//! Every functionality in that list is a module here:
//!
//! - [`chat2db`] — NL ⇄ SQL against a live database: generate, execute,
//!   explain ([`dbgpt_text2sql::sql_to_text()`]), render.
//! - [`chat2data`] — NL question → direct data answer in a sentence.
//! - [`chat2excel`] — CSV/spreadsheet ingestion + chat over the sheet.
//! - [`chat2viz`] — NL → SQL → [`dbgpt_vis::ChartSpec`] → SVG/ASCII.
//! - [`kbqa`] — knowledge-base QA over the RAG stack (retrieve → ICL →
//!   extractive answer).
//! - [`analysis`] — **generative data analysis**, the Fig. 3 demo: the
//!   multi-agent planner fans out to chart agents, an aggregator collects
//!   the report.
//! - [`forecast`] — time-series prediction (the paper's §4 future-work
//!   agent): history extraction, naive/moving-average/linear-trend
//!   forecasters, and a registrable [`ForecastAgent`].
//! - [`clean`] — automatic data preparation (§4's other future-work item):
//!   text standardisation, numeric recovery, imputation, deduplication.
//! - [`awel_bridge`] — "AWEL models each agent as a distinct operator"
//!   (§2.4): wrap agents as AWEL operators and compile plans into DAGs.
//! - [`pipeline`] — Chat2Data as a five-stage AWEL workflow whose
//!   operators join retrieval, Text-to-SQL, execution and narration spans
//!   into one end-to-end trace.
//! - [`intent`] — multilingual (en/zh) intent detection that routes a raw
//!   utterance to the right app.
//! - [`context`] — the shared resource bundle (model client, SQL engine,
//!   knowledge base, Text-to-SQL model) all apps draw from.
//! - [`handlers`] — [`dbgpt_server::AppHandler`] adapters exposing each
//!   app through the server layer.

pub mod analysis;
pub mod awel_bridge;
pub mod chat2data;
pub mod chat2db;
pub mod chat2excel;
pub mod chat2viz;
pub mod clean;
pub mod context;
pub mod error;
pub mod forecast;
pub mod handlers;
pub mod intent;
pub mod kbqa;
pub mod pipeline;

pub use analysis::{AnalysisReport, GenerativeAnalyzer};
pub use awel_bridge::{agent_operator, analysis_workflow};
pub use chat2data::Chat2Data;
pub use chat2db::Chat2Db;
pub use chat2excel::Chat2Excel;
pub use chat2viz::Chat2Viz;
pub use clean::{CleanAgent, CleanOptions, CleanReport, DataCleaner};
pub use context::AppContext;
pub use error::AppError;
pub use forecast::{ForecastAgent, Forecaster};
pub use intent::{detect_intent, Intent};
pub use kbqa::KnowledgeQa;
pub use pipeline::{Chat2DataPipeline, PipelineReply};
