//! Chat2Visualization: natural-language chart requests.
//!
//! "chat-to-visualization commands (chat2visualization)" (§2.1). The
//! utterance is inspected for a chart-type cue ("as a pie chart", "draw a
//! bar chart of …"), the remaining question goes through Text-to-SQL, and
//! the result becomes a [`ChartSpec`] rendered as both SVG (web front-end)
//! and ASCII (terminal front-end).

use serde::Serialize;

use dbgpt_vis::{ascii, chart::ChartType, spec_from_result, svg, ChartSpec};

use crate::context::AppContext;
use crate::error::AppError;

/// One visualization reply.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Chat2VizReply {
    /// The chart description (front-end contract).
    pub spec: ChartSpec,
    /// The SQL behind the data.
    pub sql: String,
    /// SVG rendering.
    pub svg: String,
    /// Terminal rendering.
    pub ascii: String,
}

/// The Chat2Viz app.
#[derive(Debug, Clone)]
pub struct Chat2Viz {
    ctx: AppContext,
}

/// Find a chart-type cue in the utterance; returns the type and the
/// utterance with the cue phrase removed.
pub fn extract_chart_type(input: &str) -> (Option<ChartType>, String) {
    let lower = input.to_lowercase();
    for name in ["donut", "doughnut", "pie", "bar", "area", "line", "scatter", "table"] {
        if let Some(t) = ChartType::parse(name) {
            if lower.contains(name) {
                // Remove cue phrases like "as a pie chart" / "pie chart of".
                let mut cleaned = String::new();
                for w in input.split_whitespace() {
                    let wl = w.to_lowercase();
                    let wl = wl.trim_matches(|c: char| !c.is_alphanumeric());
                    if wl == name || wl == "chart" || wl == "draw" || wl == "plot" || wl == "as" {
                        continue;
                    }
                    if !cleaned.is_empty() {
                        cleaned.push(' ');
                    }
                    cleaned.push_str(w);
                }
                return (Some(t), cleaned);
            }
        }
    }
    (None, input.to_string())
}

impl Chat2Viz {
    /// App over a context.
    pub fn new(ctx: AppContext) -> Self {
        Chat2Viz { ctx }
    }

    /// Handle one visualization command.
    pub fn ask(&self, input: &str) -> Result<Chat2VizReply, AppError> {
        let input = input.trim();
        if input.is_empty() {
            return Err(AppError::BadInput("empty input".into()));
        }
        let (chart_type, question) = extract_chart_type(input);
        let chart_type = chart_type.unwrap_or(ChartType::Bar);
        let ddl = self.ctx.schema_ddl();
        if ddl.is_empty() {
            return Err(AppError::BadInput("database has no tables".into()));
        }
        let sql = self.ctx.t2s.generate_sql(&ddl, &question)?;
        let result = self.ctx.engine.write().execute(&sql)?;
        let spec = spec_from_result(&result, chart_type, input)?;
        Ok(Chat2VizReply {
            svg: svg::render(&spec),
            ascii: ascii::render(&spec),
            spec,
            sql,
        })
    }

    /// Demo area ⑥: re-render an existing spec as a different chart type.
    pub fn switch_type(&self, spec: &ChartSpec, to: ChartType) -> Chat2VizReply {
        let spec = spec.switch_type(to);
        Chat2VizReply {
            svg: svg::render(&spec),
            ascii: ascii::render(&spec),
            sql: String::new(),
            spec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> Chat2Viz {
        Chat2Viz::new(AppContext::local_default().with_sales_demo_data())
    }

    #[test]
    fn pie_chart_request() {
        let r = app()
            .ask("draw a pie chart of the total amount per category of orders")
            .unwrap();
        assert_eq!(r.spec.chart_type, ChartType::Pie);
        assert_eq!(r.spec.points.len(), 3);
        assert!(r.svg.contains("<path"));
        assert!(r.ascii.contains('%'));
        assert!(r.sql.contains("GROUP BY category"));
    }

    #[test]
    fn default_type_is_bar() {
        let r = app().ask("total amount per month of orders").unwrap();
        assert_eq!(r.spec.chart_type, ChartType::Bar);
        assert!(r.svg.contains("<rect"));
    }

    #[test]
    fn chart_type_cue_is_stripped_from_question() {
        let (t, q) = extract_chart_type("draw a donut chart of sales per category");
        assert_eq!(t, Some(ChartType::Donut));
        assert!(!q.contains("donut"));
        assert!(!q.contains("chart"));
        assert!(q.contains("sales per category"));
    }

    #[test]
    fn no_cue_passes_through() {
        let (t, q) = extract_chart_type("sales per category");
        assert_eq!(t, None);
        assert_eq!(q, "sales per category");
    }

    #[test]
    fn switch_type_rerenders() {
        let a = app();
        let r = a.ask("pie chart of total amount per category of orders").unwrap();
        let switched = a.switch_type(&r.spec, ChartType::Bar);
        assert_eq!(switched.spec.chart_type, ChartType::Bar);
        assert_eq!(switched.spec.points, r.spec.points);
        assert!(switched.svg.contains("<rect"));
    }

    #[test]
    fn empty_result_is_vis_error() {
        let r = app().ask("bar chart of orders with amount greater than 99999");
        assert!(matches!(r, Err(AppError::Vis(_))));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(app().ask("").is_err());
    }
}
