//! Generative data analysis — the Fig. 3 demonstration.
//!
//! "consider the task of constructing detailed sales reports from at least
//! three distinct dimensions. The Multi-Agent framework initiates this
//! process by deploying a planning agent to devise a comprehensive
//! strategy, which includes the creation of: 1) a donut chart for the
//! analysis of total sales by product category, 2) a bar chart for
//! examining sales data from the perspective of user demographics, and 3)
//! an area chart for evaluating monthly sales trends. Subsequent to the
//! planning phase, dedicated chart-generating agents are tasked with the
//! production of these visual representations, which are then aggregated
//! by the planner and presented to users" (§2.3).
//!
//! [`ChartAgent`] is the "dedicated chart-generating agent": it resolves a
//! plan step's *dimension* against the live schema, writes the grouped SQL
//! (joining the users table for demographic names when available), runs
//! it, and emits a [`ChartSpec`]. [`GenerativeAnalyzer`] drives the whole
//! plan → charts → aggregate flow through the multi-agent orchestrator.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use serde_json::json;

use dbgpt_agents::{
    Agent, AgentContext, AgentError, AgentReply, LlmClient, Orchestrator, TaskRequest,
};
use dbgpt_llm::skills::planner::PlanStep;
use dbgpt_sqlengine::{Database, DataType};
use dbgpt_vis::{ascii, chart::ChartType, spec_from_result, svg, ChartSpec};

use crate::context::AppContext;
use crate::error::AppError;

/// The final analysis artifact (areas ③–⑤ of Fig. 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Conversation id in the agent archive.
    pub conversation: String,
    /// The plan the planner produced (area ③).
    pub plan: Vec<PlanStep>,
    /// The generated charts (area ④).
    pub charts: Vec<ChartSpec>,
    /// The SQL each chart ran.
    pub chart_sql: Vec<String>,
    /// Aggregated narrative (area ⑤).
    pub narrative: String,
}

impl AnalysisReport {
    /// Terminal rendering of every chart plus the narrative.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        for c in &self.charts {
            out.push_str(&ascii::render(c));
            out.push('\n');
        }
        out.push_str("== Narrative ==\n");
        out.push_str(&self.narrative);
        out.push('\n');
        out
    }

    /// SVG rendering of every chart.
    pub fn render_svgs(&self) -> Vec<String> {
        self.charts.iter().map(svg::render).collect()
    }
}

/// How a dimension maps onto the schema: the SQL to run and a title.
pub(crate) struct DimensionQuery {
    pub(crate) sql: String,
    pub(crate) title: String,
}

/// Column-name candidates per recognised dimension.
const DIMENSION_COLUMNS: &[(&str, &[&str])] = &[
    ("product category", &["category", "segment", "product", "genre"]),
    ("user demographics", &["user_id", "user", "customer", "member"]),
    ("monthly trend", &["month", "quarter", "period", "date"]),
    ("region", &["region", "city", "branch", "country"]),
];

/// Resolve a plan step's dimension against the live schema.
pub(crate) fn resolve_dimension(db: &Database, dimension: &str) -> Option<DimensionQuery> {
    let candidates: &[&str] = DIMENSION_COLUMNS
        .iter()
        .find(|(name, _)| *name == dimension)
        .map(|(_, cols)| *cols)?;

    // Find a fact table: one that has a candidate column AND a numeric
    // measure that is not an id.
    for table_name in db.table_names() {
        let table = db.table(table_name).ok()?;
        let cols = table.schema.columns();
        let dim_col = cols.iter().find(|c| candidates.contains(&c.name.as_str()));
        let measure = cols.iter().find(|c| {
            matches!(c.data_type, DataType::Int | DataType::Float) && !c.name.ends_with("id")
        });
        let (Some(dim_col), Some(measure)) = (dim_col, measure) else {
            continue;
        };
        // Demographic dimension: join the users table for names if the
        // dim column is a foreign key and a users-like table exists.
        if dim_col.name.ends_with("_id") {
            let ref_table = dim_col.name.trim_end_matches("_id").to_string() + "s";
            if let Ok(users) = db.table(&ref_table) {
                if users.schema.columns().iter().any(|c| c.name == "name") {
                    return Some(DimensionQuery {
                        sql: format!(
                            "SELECT u.name, SUM(o.{m}) AS total FROM {t} o \
                             JOIN {r} u ON o.{d} = u.id GROUP BY u.name",
                            m = measure.name,
                            t = table_name,
                            r = ref_table,
                            d = dim_col.name,
                        ),
                        title: format!("Total {} by {}", measure.name, dimension),
                    });
                }
            }
        }
        return Some(DimensionQuery {
            sql: format!(
                "SELECT {d}, SUM({m}) AS total FROM {t} GROUP BY {d}",
                d = dim_col.name,
                m = measure.name,
                t = table_name,
            ),
            title: format!("Total {} by {}", measure.name, dimension),
        });
    }
    None
}

/// The dedicated chart-generating agent.
pub struct ChartAgent {
    ctx: AppContext,
}

impl ChartAgent {
    /// Agent over a context.
    pub fn new(ctx: AppContext) -> Self {
        ChartAgent { ctx }
    }
}

impl Agent for ChartAgent {
    fn name(&self) -> &str {
        "chart_generator"
    }

    fn role(&self) -> &str {
        "chart_generator"
    }

    fn handle(&self, task: &TaskRequest, _ctx: &AgentContext) -> Result<AgentReply, AgentError> {
        let dimension = task
            .step
            .dimension
            .clone()
            .ok_or_else(|| AgentError::Llm("chart step carries no dimension".into()))?;
        let chart_type = task
            .step
            .chart
            .as_deref()
            .and_then(ChartType::parse)
            .unwrap_or(ChartType::Bar);
        let query = {
            let engine = self.ctx.engine.read();
            resolve_dimension(engine.database(), &dimension)
        }
        .ok_or_else(|| {
            AgentError::Llm(format!("no table supports dimension `{dimension}`"))
        })?;
        let result = self
            .ctx
            .engine
            .write()
            .execute(&query.sql)
            .map_err(|e| AgentError::Llm(format!("chart query failed: {e}")))?;
        let spec = spec_from_result(&result, chart_type, &query.title)
            .map_err(|e| AgentError::Llm(format!("chart build failed: {e}")))?;
        Ok(AgentReply::structured(
            json!({
                "chart_spec": spec,
                "sql": query.sql,
            }),
            format!("{} chart: {}", chart_type.name(), query.title),
        ))
    }
}

/// Drives the full generative-data-analysis flow.
pub struct GenerativeAnalyzer {
    ctx: AppContext,
    orchestrator: Orchestrator,
}

impl GenerativeAnalyzer {
    /// Analyzer over a context.
    pub fn new(ctx: AppContext) -> Self {
        let mut orchestrator = Orchestrator::new(ctx.llm.clone());
        orchestrator.register_agent(Arc::new(ChartAgent::new(ctx.clone())));
        GenerativeAnalyzer { ctx, orchestrator }
    }

    /// Analyzer routing model calls through a specific client (e.g. SMMF).
    pub fn with_llm(ctx: AppContext, llm: LlmClient) -> Self {
        let mut orchestrator = Orchestrator::new(llm);
        orchestrator.register_agent(Arc::new(ChartAgent::new(ctx.clone())));
        GenerativeAnalyzer { ctx, orchestrator }
    }

    /// Analyzer archiving its communication history durably (the paper's
    /// local-storage reliability mechanism).
    pub fn with_archive(
        ctx: AppContext,
        archive: Arc<dbgpt_agents::HistoryArchive>,
    ) -> Self {
        let mut orchestrator = Orchestrator::with_archive(ctx.llm.clone(), archive);
        orchestrator.register_agent(Arc::new(ChartAgent::new(ctx.clone())));
        GenerativeAnalyzer { ctx, orchestrator }
    }

    /// The underlying orchestrator (inspect the archive, add agents).
    pub fn orchestrator(&self) -> &Orchestrator {
        &self.orchestrator
    }

    /// Execute a goal like the demo command and assemble the report.
    pub fn analyze(&mut self, goal: &str) -> Result<AnalysisReport, AppError> {
        if goal.trim().is_empty() {
            return Err(AppError::BadInput("empty goal".into()));
        }
        if self.ctx.engine.read().database().table_count() == 0 {
            return Err(AppError::BadInput("database has no tables".into()));
        }
        let report = self.orchestrator.execute_goal(goal)?;
        let mut charts = Vec::new();
        let mut chart_sql = Vec::new();
        for r in &report.step_results {
            if let Some(spec) = r.content.get("chart_spec") {
                let spec: ChartSpec = serde_json::from_value(spec.clone())
                    .map_err(|e| AppError::Vis(e.to_string()))?;
                charts.push(spec);
                chart_sql.push(
                    r.content
                        .get("sql")
                        .and_then(|s| s.as_str())
                        .unwrap_or_default()
                        .to_string(),
                );
            }
        }
        let narrative = report
            .final_report
            .content
            .get("narrative")
            .and_then(|n| n.as_str())
            .unwrap_or_default()
            .to_string();
        Ok(AnalysisReport {
            conversation: report.conversation,
            plan: report.plan,
            charts,
            chart_sql,
            narrative,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO_GOAL: &str =
        "Build sales reports and analyze user orders from at least three distinct dimensions";

    fn analyzer() -> GenerativeAnalyzer {
        GenerativeAnalyzer::new(AppContext::local_default().with_sales_demo_data())
    }

    #[test]
    fn demo_flow_produces_three_charts() {
        let mut a = analyzer();
        let report = a.analyze(DEMO_GOAL).unwrap();
        assert_eq!(report.plan.len(), 4, "4-step strategy (area ③)");
        assert_eq!(report.charts.len(), 3, "three charts (area ④)");
        let types: Vec<&str> = report.charts.iter().map(|c| c.chart_type.name()).collect();
        assert!(types.contains(&"donut"));
        assert!(types.contains(&"bar"));
        assert!(types.contains(&"area"));
        assert!(!report.narrative.is_empty(), "narrative (area ⑤)");
    }

    #[test]
    fn category_chart_aggregates_correctly() {
        let mut a = analyzer();
        let report = a.analyze(DEMO_GOAL).unwrap();
        let donut = report
            .charts
            .iter()
            .find(|c| c.chart_type == ChartType::Donut)
            .unwrap();
        let tech = donut.points.iter().find(|p| p.label == "tech").unwrap();
        assert_eq!(tech.value, 4500.0); // 1200+2400+300+600
    }

    #[test]
    fn demographics_chart_joins_user_names() {
        let mut a = analyzer();
        let report = a.analyze(DEMO_GOAL).unwrap();
        let bar = report
            .charts
            .iter()
            .find(|c| c.chart_type == ChartType::Bar)
            .unwrap();
        let labels: Vec<&str> = bar.points.iter().map(|p| p.label.as_str()).collect();
        assert!(labels.contains(&"alice"), "{labels:?}");
        let sql = report
            .chart_sql
            .iter()
            .find(|s| s.contains("JOIN"))
            .expect("demographics SQL joins users");
        assert!(sql.contains("GROUP BY u.name"));
    }

    #[test]
    fn monthly_chart_covers_all_months() {
        let mut a = analyzer();
        let report = a.analyze(DEMO_GOAL).unwrap();
        let area = report
            .charts
            .iter()
            .find(|c| c.chart_type == ChartType::Area)
            .unwrap();
        assert_eq!(area.points.len(), 3); // jan, feb, mar
    }

    #[test]
    fn full_history_archived() {
        let mut a = analyzer();
        let report = a.analyze(DEMO_GOAL).unwrap();
        let msgs = a.orchestrator().archive().conversation(&report.conversation);
        assert!(msgs.len() >= 9);
    }

    #[test]
    fn renderings_produced() {
        let mut a = analyzer();
        let report = a.analyze(DEMO_GOAL).unwrap();
        let text = report.render_ascii();
        assert!(text.contains("donut"));
        assert!(text.contains("== Narrative =="));
        let svgs = report.render_svgs();
        assert_eq!(svgs.len(), 3);
        assert!(svgs.iter().all(|s| s.starts_with("<svg")));
    }

    #[test]
    fn chinese_goal_works() {
        let mut a = analyzer();
        let report = a.analyze("构建销售报表，从三个维度分析用户订单").unwrap();
        assert_eq!(report.charts.len(), 3);
    }

    #[test]
    fn empty_db_rejected() {
        let mut a = GenerativeAnalyzer::new(AppContext::local_default());
        assert!(matches!(a.analyze(DEMO_GOAL), Err(AppError::BadInput(_))));
    }

    #[test]
    fn unsupported_dimension_fails_loudly() {
        // A schema with no region-like column: ask for region analysis.
        let ctx = AppContext::local_default();
        ctx.seed_sql(&[
            "CREATE TABLE orders (id INT, amount FLOAT, category TEXT)",
            "INSERT INTO orders VALUES (1, 5.0, 'x')",
        ])
        .unwrap();
        let mut a = GenerativeAnalyzer::new(ctx);
        let r = a.analyze("sales report by region only, 1 dimension");
        assert!(matches!(r, Err(AppError::Agent(_))), "{r:?}");
    }
}
