//! AWEL ⇄ Multi-Agents bridge: "DB-GPT's AWEL models each agent as a
//! distinct operator, thus enabling users to intricately design their
//! agent-based workflows" (§2.4).
//!
//! [`agent_operator`] wraps any [`dbgpt_agents::Agent`] as an AWEL
//! [`Operator`]; [`analysis_workflow`] compiles a planner-produced
//! [`PlanStep`] list into the Fig. 3 DAG (goal → parallel chart agents →
//! aggregator) — so the generative-data-analysis flow can run on the
//! protocol layer's scheduler, including its **async** (level-parallel)
//! mode.
//!
//! Data on the wires is JSON: each agent operator receives the plan step
//! it owns (embedded at construction) plus its upstream results, and emits
//! `{"summary": …, "content": …}` like the orchestrator records.

use std::sync::Arc;

use serde_json::{json, Value};

use dbgpt_agents::{AgentContext, AgentReply, LlmClient, SharedAgent, TaskRequest};
use dbgpt_awel::{ops, AwelError, Dag, DagBuilder, OpOutput, Operator, SharedOperator};
use dbgpt_llm::skills::planner::PlanStep;

use crate::context::AppContext;

/// Wrap one agent (bound to one plan step) as an AWEL operator.
///
/// Inputs are the upstream operators' outputs (prior results); the output
/// is the agent's reply as `{"summary", "content"}`.
pub fn agent_operator(
    agent: SharedAgent,
    llm: LlmClient,
    goal: String,
    step: PlanStep,
    seed: u64,
) -> SharedOperator {
    struct AgentOp {
        agent: SharedAgent,
        llm: LlmClient,
        goal: String,
        step: PlanStep,
        seed: u64,
    }
    impl Operator for AgentOp {
        fn op_name(&self) -> &str {
            "agent"
        }
        fn run(&self, inputs: &[Value]) -> Result<OpOutput, AwelError> {
            let ctx = AgentContext {
                llm: self.llm.clone(),
                archive: Arc::new(dbgpt_agents::HistoryArchive::in_memory()),
                seed: self.seed,
            };
            let task = TaskRequest {
                conversation: "awel".into(),
                goal: self.goal.clone(),
                step: self.step.clone(),
                prior_results: inputs.to_vec(),
            };
            let reply: AgentReply =
                self.agent.handle(&task, &ctx).map_err(|e| AwelError::Execution {
                    node: self.agent.name().to_string(),
                    cause: e.to_string(),
                })?;
            Ok(OpOutput::Value(json!({
                "summary": reply.summary,
                "content": reply.content,
            })))
        }
    }
    Arc::new(AgentOp {
        agent,
        llm,
        goal,
        step,
        seed,
    })
}

/// Compile a plan into the Fig. 3 workflow DAG:
///
/// ```text
/// goal ──▶ step₁(chart) ─┐
///     ├──▶ step₂(chart) ─┼──▶ aggregate(join)
///     └──▶ step₃(chart) ─┘
/// ```
///
/// Chart steps (role `chart_generator`) run in parallel under the async
/// scheduler; any aggregator step in the plan becomes the fan-in node.
pub fn analysis_workflow(
    ctx: &AppContext,
    goal: &str,
    plan: &[PlanStep],
) -> Result<Dag, AwelError> {
    let chart_agent: SharedAgent = Arc::new(crate::analysis::ChartAgent::new(ctx.clone()));
    let mut builder = DagBuilder::new("generative_analysis")
        .node("goal", ops::constant(json!(goal)))
        .node("aggregate", ops::join());
    let mut chart_nodes = Vec::new();
    for step in plan {
        if step.agent == "aggregator" {
            continue;
        }
        let node = format!("step{}", step.id);
        builder = builder.node(
            node.clone(),
            agent_operator(
                chart_agent.clone(),
                ctx.llm.clone(),
                goal.to_string(),
                step.clone(),
                42,
            ),
        );
        chart_nodes.push(node);
    }
    for n in &chart_nodes {
        builder = builder.edge("goal", n.clone()).edge(n.clone(), "aggregate");
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgpt_awel::{ExecutionMode, Scheduler};
    use dbgpt_llm::catalog::builtin_model;
    use dbgpt_vis::ChartSpec;

    const DEMO_GOAL: &str =
        "Build sales reports and analyze user orders from at least three distinct dimensions";

    fn demo_plan(ctx: &AppContext) -> Vec<PlanStep> {
        use dbgpt_agents::{AgentContext, HistoryArchive, PlannerAgent};
        let planner = PlannerAgent::new();
        let agent_ctx = AgentContext {
            llm: ctx.llm.clone(),
            archive: Arc::new(HistoryArchive::in_memory()),
            seed: 42,
        };
        planner.plan(DEMO_GOAL, &agent_ctx).unwrap()
    }

    fn charts_from(run: &dbgpt_awel::RunResult) -> Vec<ChartSpec> {
        run.outputs["aggregate"]
            .as_array()
            .unwrap()
            .iter()
            .map(|r| serde_json::from_value(r["content"]["chart_spec"].clone()).unwrap())
            .collect()
    }

    #[test]
    fn demo_plan_compiles_to_the_fig3_dag() {
        let ctx = AppContext::local_default().with_sales_demo_data();
        let plan = demo_plan(&ctx);
        let dag = analysis_workflow(&ctx, DEMO_GOAL, &plan).unwrap();
        assert_eq!(dag.node_count(), 5); // goal + 3 charts + aggregate
        assert_eq!(dag.edge_count(), 6);
        // The three chart agents sit in one parallel level.
        assert_eq!(dag.levels()[1].len(), 3);
    }

    #[test]
    fn awel_batch_run_produces_the_three_charts() {
        let ctx = AppContext::local_default().with_sales_demo_data();
        let plan = demo_plan(&ctx);
        let dag = analysis_workflow(&ctx, DEMO_GOAL, &plan).unwrap();
        let run = Scheduler::new().run_batch(&dag, json!(DEMO_GOAL)).unwrap();
        let charts = charts_from(&run);
        assert_eq!(charts.len(), 3);
        let mut types: Vec<&str> = charts.iter().map(|c| c.chart_type.name()).collect();
        types.sort_unstable();
        assert_eq!(types, vec!["area", "bar", "donut"]);
    }

    #[test]
    fn async_mode_matches_batch_and_parallelises_agents() {
        let ctx = AppContext::local_default().with_sales_demo_data();
        let plan = demo_plan(&ctx);
        let dag = analysis_workflow(&ctx, DEMO_GOAL, &plan).unwrap();
        let s = Scheduler::new();
        let batch = s.run(&dag, json!(DEMO_GOAL), ExecutionMode::Batch).unwrap();
        let parallel = s.run(&dag, json!(DEMO_GOAL), ExecutionMode::Async).unwrap();
        assert_eq!(batch.outputs, parallel.outputs);
    }

    #[test]
    fn agent_failures_surface_as_named_node_errors() {
        let ctx = AppContext::local_default(); // empty DB → chart agents fail
        let plan = vec![PlanStep {
            id: 1,
            description: "chart something".into(),
            agent: "chart_generator".into(),
            chart: Some("donut".into()),
            dimension: Some("product category".into()),
        }];
        let dag = analysis_workflow(&ctx, "goal", &plan).unwrap();
        let e = Scheduler::new().run_batch(&dag, json!("goal")).unwrap_err();
        match e {
            AwelError::Execution { node, .. } => assert_eq!(node, "step1"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn any_custom_agent_becomes_an_operator() {
        use dbgpt_agents::{Agent, AgentError};
        struct Doubler;
        impl Agent for Doubler {
            fn name(&self) -> &str {
                "doubler"
            }
            fn role(&self) -> &str {
                "worker"
            }
            fn handle(&self, task: &TaskRequest, _c: &AgentContext) -> Result<AgentReply, AgentError> {
                let sum: i64 = task
                    .prior_results
                    .iter()
                    .filter_map(|v| v.as_i64())
                    .sum();
                Ok(AgentReply::structured(json!(sum * 2), "doubled"))
            }
        }
        let op = agent_operator(
            Arc::new(Doubler),
            LlmClient::direct(builtin_model("sim-qwen").unwrap()),
            "g".into(),
            PlanStep {
                id: 1,
                description: "double".into(),
                agent: "worker".into(),
                chart: None,
                dimension: None,
            },
            0,
        );
        let out = op.run(&[json!(3), json!(4)]).unwrap();
        match out {
            OpOutput::Value(v) => assert_eq!(v["content"], json!(14)),
            other => panic!("{other:?}"),
        }
    }
}
