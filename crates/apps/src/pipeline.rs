//! Chat2Data as an AWEL workflow: the end-to-end traced pipeline.
//!
//! Where [`crate::chat2data`] calls the stages directly, this module
//! expresses the same request as a five-node DAG — intent → retrieve →
//! gen_sql → execute → narrate — scheduled by [`dbgpt_awel::Scheduler`].
//! Each node is a custom [`Operator`] that overrides
//! [`Operator::run_traced`] to call the traced entry point of its
//! subsystem, so one enabled run produces a single trace tree spanning the
//! apps, AWEL, RAG, Text-to-SQL, SQL-engine and model-serving crates:
//!
//! ```text
//! app.chat2data.pipeline
//! └─ awel.dag
//!    ├─ awel.op (intent)
//!    ├─ awel.op (retrieve)   └─ rag.retrieve …
//!    ├─ awel.op (gen_sql)    └─ t2s.generate …
//!    ├─ awel.op (execute)    └─ sql.execute …
//!    └─ awel.op (narrate)    └─ llm.generate / smmf.chat …
//! ```
//!
//! With observability disabled every operator takes its plain
//! [`Operator::run`] path, byte-identical to the untraced stack.

use std::sync::Arc;

use parking_lot::RwLock;
use serde_json::{json, Value};

use dbgpt_awel::{
    AwelError, Dag, DagBuilder, ExecutionMode, OpOutput, Operator, Scheduler,
};
use dbgpt_agents::LlmClient;
use dbgpt_llm::GenerationParams;
use dbgpt_obs::Span;
use dbgpt_rag::{KnowledgeBase, RetrievalStrategy};
use dbgpt_sqlengine::Engine;
use dbgpt_text2sql::Text2SqlModel;

use crate::chat2data::summarize_result;
use crate::context::AppContext;
use crate::error::AppError;
use crate::intent::detect_intent;

/// One pipeline answer: the Chat2Data reply plus the model's narrative.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReply {
    /// Sentence-form answer (same renderer as [`crate::chat2data`]).
    pub answer: String,
    /// Model-written narrative over the answer.
    pub narrative: String,
    /// The SQL that produced the data.
    pub sql: String,
    /// Raw result rows as JSON (label→value maps).
    pub data: Value,
    /// Knowledge chunks retrieved as background context.
    pub context_chunks: usize,
}

fn exec_err(node: &str, cause: impl std::fmt::Display) -> AwelError {
    AwelError::Execution {
        node: node.to_string(),
        cause: cause.to_string(),
    }
}

fn field<'v>(input: &'v Value, key: &str, node: &str) -> Result<&'v str, AwelError> {
    input[key]
        .as_str()
        .ok_or_else(|| exec_err(node, format!("missing upstream field `{key}`")))
}

/// Root node: validates the question and tags its detected intent.
struct IntentOp;

impl IntentOp {
    fn go(&self, inputs: &[Value], span: &Span) -> Result<OpOutput, AwelError> {
        let question = inputs
            .first()
            .and_then(Value::as_str)
            .unwrap_or("")
            .trim()
            .to_string();
        if question.is_empty() {
            return Err(exec_err("intent", "empty question"));
        }
        let (intent, canonical) = detect_intent(&question);
        let intent = format!("{intent:?}").to_lowercase();
        span.attr("intent", &intent);
        Ok(OpOutput::Value(json!({
            "question": canonical,
            "intent": intent,
        })))
    }
}

impl Operator for IntentOp {
    fn op_name(&self) -> &str {
        "intent"
    }
    fn run(&self, inputs: &[Value]) -> Result<OpOutput, AwelError> {
        self.go(inputs, &Span::noop())
    }
    fn run_traced(&self, inputs: &[Value], span: &Span) -> Result<OpOutput, AwelError> {
        self.go(inputs, span)
    }
}

/// Retrieves top-k knowledge chunks as background context for narration.
struct RetrieveOp {
    kb: Arc<RwLock<KnowledgeBase>>,
    k: usize,
}

impl RetrieveOp {
    fn go(&self, inputs: &[Value], span: &Span) -> Result<OpOutput, AwelError> {
        let input = inputs.first().cloned().unwrap_or(Value::Null);
        let question = field(&input, "question", "retrieve")?;
        let hits =
            self.kb
                .read()
                .retrieve_under(question, self.k, RetrievalStrategy::Hybrid, span);
        let context: Vec<Value> = hits.iter().map(|h| json!(h.chunk.text)).collect();
        let mut out = input.clone();
        out["context"] = Value::Array(context);
        Ok(OpOutput::Value(out))
    }
}

impl Operator for RetrieveOp {
    fn op_name(&self) -> &str {
        "retrieve"
    }
    fn run(&self, inputs: &[Value]) -> Result<OpOutput, AwelError> {
        self.go(inputs, &Span::noop())
    }
    fn run_traced(&self, inputs: &[Value], span: &Span) -> Result<OpOutput, AwelError> {
        self.go(inputs, span)
    }
}

/// Text-to-SQL over the live schema.
struct GenSqlOp {
    t2s: Text2SqlModel,
    engine: Arc<RwLock<Engine>>,
}

impl GenSqlOp {
    fn go(&self, inputs: &[Value], span: &Span) -> Result<OpOutput, AwelError> {
        let input = inputs.first().cloned().unwrap_or(Value::Null);
        let question = field(&input, "question", "gen_sql")?;
        let ddl = self.engine.read().database().schema_ddl();
        if ddl.is_empty() {
            return Err(exec_err("gen_sql", "database has no tables"));
        }
        let sql = self
            .t2s
            .generate_sql_traced(&ddl, question, span)
            .map_err(|e| exec_err("gen_sql", e))?;
        let mut out = input.clone();
        out["sql"] = json!(sql);
        Ok(OpOutput::Value(out))
    }
}

impl Operator for GenSqlOp {
    fn op_name(&self) -> &str {
        "gen_sql"
    }
    fn run(&self, inputs: &[Value]) -> Result<OpOutput, AwelError> {
        self.go(inputs, &Span::noop())
    }
    fn run_traced(&self, inputs: &[Value], span: &Span) -> Result<OpOutput, AwelError> {
        self.go(inputs, span)
    }
}

/// Runs the SQL and renders the Chat2Data-style answer.
struct ExecOp {
    engine: Arc<RwLock<Engine>>,
}

impl ExecOp {
    fn go(&self, inputs: &[Value], span: &Span) -> Result<OpOutput, AwelError> {
        let input = inputs.first().cloned().unwrap_or(Value::Null);
        let sql = field(&input, "sql", "execute")?.to_string();
        let result = self
            .engine
            .write()
            .execute_traced(&sql, span)
            .map_err(|e| exec_err("execute", e))?;
        let (answer, data) = summarize_result(&result);
        let mut out = input.clone();
        out["answer"] = json!(answer);
        out["data"] = data;
        Ok(OpOutput::Value(out))
    }
}

impl Operator for ExecOp {
    fn op_name(&self) -> &str {
        "execute"
    }
    fn run(&self, inputs: &[Value]) -> Result<OpOutput, AwelError> {
        self.go(inputs, &Span::noop())
    }
    fn run_traced(&self, inputs: &[Value], span: &Span) -> Result<OpOutput, AwelError> {
        self.go(inputs, span)
    }
}

/// Asks the model to narrate the answer (with retrieved context inlined).
struct NarrateOp {
    llm: LlmClient,
}

impl NarrateOp {
    fn go(&self, inputs: &[Value], span: &Span) -> Result<OpOutput, AwelError> {
        let input = inputs.first().cloned().unwrap_or(Value::Null);
        let question = field(&input, "question", "narrate")?;
        let answer = field(&input, "answer", "narrate")?;
        let context: Vec<&str> = input["context"]
            .as_array()
            .map(|a| a.iter().filter_map(Value::as_str).collect())
            .unwrap_or_default();
        let mut prompt = String::new();
        if !context.is_empty() {
            prompt.push_str("Background:\n");
            for c in &context {
                prompt.push_str(c);
                prompt.push('\n');
            }
            prompt.push('\n');
        }
        prompt.push_str(&format!(
            "Question: {question}\nData answer: {answer}\nSummarize the finding in one sentence."
        ));
        let completion = self
            .llm
            .complete_under(&prompt, &GenerationParams::default(), span)
            .map_err(|e| exec_err("narrate", e))?;
        let mut out = input.clone();
        out["narrative"] = json!(completion.text);
        Ok(OpOutput::Value(out))
    }
}

impl Operator for NarrateOp {
    fn op_name(&self) -> &str {
        "narrate"
    }
    fn run(&self, inputs: &[Value]) -> Result<OpOutput, AwelError> {
        self.go(inputs, &Span::noop())
    }
    fn run_traced(&self, inputs: &[Value], span: &Span) -> Result<OpOutput, AwelError> {
        self.go(inputs, span)
    }
}

/// The Chat2Data request expressed as an AWEL workflow.
pub struct Chat2DataPipeline {
    ctx: AppContext,
    scheduler: Scheduler,
    dag: Dag,
}

impl Chat2DataPipeline {
    /// Build the five-stage DAG over a context. The scheduler records on
    /// the context's observability handle, so `awel.*` spans and counters
    /// land in the same trace as the app/engine spans.
    pub fn new(ctx: AppContext) -> Self {
        let dag = DagBuilder::new("chat2data_pipeline")
            .node("intent", Arc::new(IntentOp))
            .node(
                "retrieve",
                Arc::new(RetrieveOp {
                    kb: ctx.kb.clone(),
                    k: 2,
                }),
            )
            .node(
                "gen_sql",
                Arc::new(GenSqlOp {
                    t2s: ctx.t2s.clone(),
                    engine: ctx.engine.clone(),
                }),
            )
            .node("execute", Arc::new(ExecOp { engine: ctx.engine.clone() }))
            .node("narrate", Arc::new(NarrateOp { llm: ctx.llm.clone() }))
            .edge("intent", "retrieve")
            .edge("retrieve", "gen_sql")
            .edge("gen_sql", "execute")
            .edge("execute", "narrate")
            .build()
            .expect("pipeline dag is valid");
        let scheduler = Scheduler::with_obs(ctx.obs.clone());
        Chat2DataPipeline { ctx, scheduler, dag }
    }

    /// The underlying DAG (e.g. for visualisation).
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Run one question through the workflow.
    pub fn run(&self, question: &str) -> Result<PipelineReply, AppError> {
        self.run_under(question, &Span::noop())
    }

    /// Run under a caller span: records an `app.chat2data.pipeline` span
    /// whose `awel.dag` child carries per-operator spans, each joining the
    /// stage's own subsystem spans. Byte-identical to
    /// [`Chat2DataPipeline::run`] when nothing records.
    pub fn run_under(&self, question: &str, parent: &Span) -> Result<PipelineReply, AppError> {
        let span = if parent.is_recording() {
            parent.child("app.chat2data.pipeline", parent.tick())
        } else if self.ctx.obs.is_enabled() {
            self.ctx
                .obs
                .span("app.chat2data.pipeline", self.ctx.obs.tick())
        } else {
            return self.run_inner(question, &Span::noop());
        };
        let obs = span.handle();
        obs.counter("app.pipeline.requests", 1);
        let res = self.run_inner(question, &span);
        match &res {
            Ok(r) => {
                span.attr("outcome", "ok");
                span.attr("rows", r.data.as_array().map(|a| a.len()).unwrap_or(0));
            }
            Err(_) => {
                span.attr("outcome", "error");
                obs.counter("app.pipeline.errors", 1);
            }
        }
        span.end(span.tick());
        res
    }

    fn run_inner(&self, question: &str, span: &Span) -> Result<PipelineReply, AppError> {
        let result = self
            .scheduler
            .run_under(&self.dag, json!(question), ExecutionMode::Batch, span)
            .map_err(AppError::from)?;
        let out = result
            .sole_output()
            .cloned()
            .ok_or_else(|| AppError::Workflow("pipeline produced no output".into()))?;
        Ok(PipelineReply {
            answer: out["answer"].as_str().unwrap_or_default().to_string(),
            narrative: out["narrative"].as_str().unwrap_or_default().to_string(),
            sql: out["sql"].as_str().unwrap_or_default().to_string(),
            data: out["data"].clone(),
            context_chunks: out["context"].as_array().map(Vec::len).unwrap_or(0),
        })
    }
}

impl std::fmt::Debug for Chat2DataPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chat2DataPipeline")
            .field("dag", &self.dag.name())
            .field("nodes", &self.dag.node_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline() -> Chat2DataPipeline {
        let ctx = AppContext::local_default().with_sales_demo_data();
        ctx.kb.write().add_text(
            "orders-doc",
            "Orders record purchases. Each order has an amount and category.",
        );
        Chat2DataPipeline::new(ctx)
    }

    #[test]
    fn pipeline_answers_match_chat2data() {
        let p = pipeline();
        let r = p.run("how many orders are there?").unwrap();
        assert_eq!(r.answer, "The answer is 8.");
        assert_eq!(r.sql, "SELECT COUNT(*) FROM orders;");
        assert!(!r.narrative.is_empty());
    }

    #[test]
    fn pipeline_carries_retrieved_context() {
        let p = pipeline();
        let r = p.run("what is the total amount per category of orders?").unwrap();
        assert!(r.context_chunks > 0);
        assert_eq!(r.data.as_array().unwrap().len(), 3);
    }

    #[test]
    fn empty_question_fails_in_intent_stage() {
        let p = pipeline();
        let err = p.run("   ").unwrap_err();
        assert!(err.to_string().contains("intent"), "{err}");
    }

    #[test]
    fn bad_question_fails_in_gen_sql_stage() {
        let p = pipeline();
        let err = p.run("how many unicorns are there?").unwrap_err();
        assert!(err.to_string().contains("gen_sql"), "{err}");
    }

    #[test]
    fn dag_has_five_stages() {
        assert_eq!(pipeline().dag().node_count(), 5);
    }
}
