//! Multilingual intent detection and routing.
//!
//! Table 1 claims "Multilingual Interactions"; the demo (area ⑦) lets the
//! user keep typing free-form commands. This module classifies a raw
//! utterance (English or Chinese) into the app that should handle it.
//! Chinese input is first normalised to English through the translation
//! skill's phrasebook so one classifier serves both languages.

use serde::{Deserialize, Serialize};

use dbgpt_llm::skills::translate::{detect_language, zh_to_en, Language};

use crate::chat2db::looks_like_sql;

/// Which app should handle an utterance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Intent {
    /// Raw SQL or database administration → Chat2DB.
    Chat2Db,
    /// A data question → Chat2Data.
    Chat2Data,
    /// A chart request → Chat2Viz.
    Chat2Viz,
    /// Multi-dimensional report/analysis → generative data analysis.
    Analysis,
    /// A knowledge question → KBQA.
    Kbqa,
    /// A prediction request → the forecaster.
    Forecast,
}

impl Intent {
    /// App name as the server layer knows it.
    pub fn app_name(&self) -> &'static str {
        match self {
            Intent::Chat2Db => "chat2db",
            Intent::Chat2Data => "chat2data",
            Intent::Chat2Viz => "chat2viz",
            Intent::Analysis => "analysis",
            Intent::Kbqa => "kbqa",
            Intent::Forecast => "forecast",
        }
    }
}

/// Classify an utterance; returns the intent and the (possibly translated)
/// canonical-English text the target app should receive.
pub fn detect_intent(input: &str) -> (Intent, String) {
    let canonical = match detect_language(input) {
        Language::Chinese => zh_to_en(input),
        Language::English => input.to_string(),
    };
    let lower = canonical.to_lowercase();

    if looks_like_sql(&canonical) {
        return (Intent::Chat2Db, canonical);
    }
    // Prediction requests: forecasting vocabulary.
    if ["forecast", "predict", "projection", "next month", "next quarter", "预测"]
        .iter()
        .any(|k| lower.contains(k))
    {
        return (Intent::Forecast, canonical);
    }
    // Chart requests: explicit chart vocabulary.
    if ["chart", "plot", "draw", "pie", "donut", "visualize", "visualise", "graph"]
        .iter()
        .any(|k| lower.contains(k))
    {
        return (Intent::Chat2Viz, canonical);
    }
    // Multi-dimensional analysis: report/analysis vocabulary.
    if (lower.contains("report") || lower.contains("analyze") || lower.contains("analysis"))
        && (lower.contains("dimension") || lower.contains("report"))
    {
        return (Intent::Analysis, canonical);
    }
    // Data questions: counting/aggregation/list vocabulary.
    if [
        "how many", "total", "average", "sum", "count", "list ", "top ", "highest", "lowest",
        "per ",
    ]
    .iter()
    .any(|k| lower.contains(k))
    {
        return (Intent::Chat2Data, canonical);
    }
    // Everything else: knowledge question.
    (Intent::Kbqa, canonical)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_goes_to_chat2db() {
        let (i, _) = detect_intent("SELECT * FROM orders");
        assert_eq!(i, Intent::Chat2Db);
    }

    #[test]
    fn chart_request_goes_to_viz() {
        let (i, _) = detect_intent("draw a pie chart of sales per category");
        assert_eq!(i, Intent::Chat2Viz);
    }

    #[test]
    fn report_goal_goes_to_analysis() {
        let (i, _) = detect_intent(
            "Build sales reports and analyze user orders from at least three distinct dimensions",
        );
        assert_eq!(i, Intent::Analysis);
    }

    #[test]
    fn data_question_goes_to_chat2data() {
        let (i, _) = detect_intent("how many orders are there?");
        assert_eq!(i, Intent::Chat2Data);
        let (i, _) = detect_intent("what is the total amount per month?");
        assert_eq!(i, Intent::Chat2Data);
    }

    #[test]
    fn knowledge_question_goes_to_kbqa() {
        let (i, _) = detect_intent("what is the architecture of DB-GPT?");
        assert_eq!(i, Intent::Kbqa);
    }

    #[test]
    fn chinese_report_goal_translates_and_routes() {
        let (i, canonical) = detect_intent("构建销售报表，从三个维度分析用户订单");
        assert_eq!(i, Intent::Analysis);
        assert!(canonical.contains("sales report"), "{canonical}");
    }

    #[test]
    fn chinese_data_question_routes() {
        let (i, canonical) = detect_intent("查询销售总额");
        assert_eq!(i, Intent::Chat2Data, "{canonical}");
    }

    #[test]
    fn forecast_requests_route() {
        let (i, _) = detect_intent("forecast sales for the next 3 months");
        assert_eq!(i, Intent::Forecast);
        let (i, _) = detect_intent("predict what happens next quarter");
        assert_eq!(i, Intent::Forecast);
    }

    #[test]
    fn app_names_are_stable() {
        assert_eq!(Intent::Chat2Db.app_name(), "chat2db");
        assert_eq!(Intent::Analysis.app_name(), "analysis");
        assert_eq!(Intent::Kbqa.app_name(), "kbqa");
    }
}
