//! Chat2Data: direct answers to data questions.
//!
//! Where Chat2DB shows the query mechanics, Chat2Data answers the question
//! itself: single-cell results become a sentence ("The answer is 8."),
//! small result sets are summarised inline, and the machinery (SQL, row
//! data) is still available in the reply for the front-end.

use dbgpt_obs::Span;
use serde::Serialize;
use serde_json::{json, Value};

use crate::context::AppContext;
use crate::error::AppError;

/// One Chat2Data answer.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Chat2DataReply {
    /// Sentence-form answer.
    pub answer: String,
    /// The SQL that produced it.
    pub sql: String,
    /// Raw result rows as JSON (label→value maps).
    pub data: Value,
}

/// The Chat2Data app.
#[derive(Debug, Clone)]
pub struct Chat2Data {
    ctx: AppContext,
}

impl Chat2Data {
    /// App over a context.
    pub fn new(ctx: AppContext) -> Self {
        Chat2Data { ctx }
    }

    /// Handle one question.
    pub fn ask(&self, question: &str) -> Result<Chat2DataReply, AppError> {
        self.ask_under(question, &Span::noop())
    }

    /// Handle one question under a caller span: records an `app.chat2data`
    /// span (child of `parent` when it is recording, else rooted on the
    /// context's own handle) with the Text-to-SQL and SQL-engine stages as
    /// children. Byte-identical to [`Chat2Data::ask`] when nothing records.
    pub fn ask_under(&self, question: &str, parent: &Span) -> Result<Chat2DataReply, AppError> {
        let span = if parent.is_recording() {
            parent.child("app.chat2data", parent.tick())
        } else if self.ctx.obs.is_enabled() {
            self.ctx.obs.span("app.chat2data", self.ctx.obs.tick())
        } else {
            return self.ask_inner(question, &Span::noop());
        };
        let obs = span.handle();
        obs.counter("app.chat2data.requests", 1);
        let res = self.ask_inner(question, &span);
        match &res {
            Ok(r) => {
                span.attr("outcome", "ok");
                span.attr("rows", r.data.as_array().map(|a| a.len()).unwrap_or(0));
            }
            Err(_) => {
                span.attr("outcome", "error");
                obs.counter("app.chat2data.errors", 1);
            }
        }
        span.end(span.tick());
        res
    }

    fn ask_inner(&self, question: &str, span: &Span) -> Result<Chat2DataReply, AppError> {
        let question = question.trim();
        if question.is_empty() {
            return Err(AppError::BadInput("empty question".into()));
        }
        let ddl = self.ctx.schema_ddl();
        if ddl.is_empty() {
            return Err(AppError::BadInput("database has no tables".into()));
        }
        let sql = self.ctx.t2s.generate_sql_traced(&ddl, question, span)?;
        let result = self.ctx.engine.write().execute_traced(&sql, span)?;
        let (answer, data) = summarize_result(&result);
        Ok(Chat2DataReply { answer, sql, data })
    }
}

/// Sentence-form answer plus labelled JSON rows for a query result. Shared
/// by the direct [`Chat2Data`] path and the AWEL pipeline's execute stage,
/// so both render identical replies.
pub(crate) fn summarize_result(result: &dbgpt_sqlengine::QueryResult) -> (String, Value) {
    let cols = result.column_names().iter().map(|c| c.to_string()).collect::<Vec<_>>();
    let data: Vec<Value> = result
        .rows
        .iter()
        .map(|r| {
            let mut obj = serde_json::Map::new();
            for (c, v) in cols.iter().zip(r.values()) {
                obj.insert(c.clone(), json!(v.to_string()));
            }
            Value::Object(obj)
        })
        .collect();

    let answer = match (result.rows.len(), cols.len()) {
        (0, _) => "No matching data was found.".to_string(),
        (1, 1) => format!("The answer is {}.", result.rows[0][0]),
        (1, _) => {
            let pairs: Vec<String> = cols
                .iter()
                .zip(result.rows[0].values())
                .map(|(c, v)| format!("{c} = {v}"))
                .collect();
            format!("Found one row: {}.", pairs.join(", "))
        }
        (n, 2) if n <= 6 => {
            let pairs: Vec<String> = result
                .rows
                .iter()
                .map(|r| format!("{}: {}", r[0], r[1]))
                .collect();
            format!("Here is the breakdown — {}.", pairs.join("; "))
        }
        (n, _) => format!("Found {n} matching rows."),
    };
    (answer, Value::Array(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> Chat2Data {
        Chat2Data::new(AppContext::local_default().with_sales_demo_data())
    }

    #[test]
    fn scalar_answer_is_a_sentence() {
        let r = app().ask("how many orders are there?").unwrap();
        assert_eq!(r.answer, "The answer is 8.");
        assert_eq!(r.sql, "SELECT COUNT(*) FROM orders;");
    }

    #[test]
    fn breakdown_answer_for_grouped_results() {
        let r = app().ask("what is the total amount per category of orders?").unwrap();
        assert!(r.answer.starts_with("Here is the breakdown"), "{}", r.answer);
        assert!(r.answer.contains("tech"));
        assert_eq!(r.data.as_array().unwrap().len(), 3);
    }

    #[test]
    fn many_rows_summarised_as_count() {
        let r = app().ask("list all orders").unwrap();
        assert_eq!(r.answer, "Found 8 matching rows.");
    }

    #[test]
    fn empty_result_says_so() {
        let r = app().ask("list orders with amount greater than 99999").unwrap();
        assert_eq!(r.answer, "No matching data was found.");
    }

    #[test]
    fn superlative_single_row() {
        let r = app().ask("which product has the highest price?").unwrap();
        assert_eq!(r.answer, "The answer is laptop.");
    }

    #[test]
    fn data_rows_are_labelled_json() {
        let r = app().ask("what is the total amount per category of orders?").unwrap();
        let first = &r.data[0];
        assert!(first.get("category").is_some());
    }

    #[test]
    fn empty_question_rejected() {
        assert!(app().ask("").is_err());
    }
}
