//! Chat2Excel: chat over spreadsheets.
//!
//! A CSV export (the offline stand-in for an Excel sheet — same rows, same
//! column semantics) is loaded into the engine with inferred types; every
//! subsequent question is ordinary Chat2Data against that table.

use dbgpt_obs::Span;
use serde::Serialize;

use dbgpt_sqlengine::csv::load_csv;

use crate::chat2data::{Chat2Data, Chat2DataReply};
use crate::context::AppContext;
use crate::error::AppError;

/// Sheet-loading summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SheetInfo {
    /// Table name the sheet was registered under.
    pub table: String,
    /// Rows loaded.
    pub rows: usize,
    /// Column names with inferred types.
    pub columns: Vec<(String, String)>,
}

/// The Chat2Excel app.
#[derive(Debug, Clone)]
pub struct Chat2Excel {
    ctx: AppContext,
    qa: Chat2Data,
}

impl Chat2Excel {
    /// App over a context.
    pub fn new(ctx: AppContext) -> Self {
        let qa = Chat2Data::new(ctx.clone());
        Chat2Excel { ctx, qa }
    }

    /// Load a sheet (CSV text) as `table`, replacing any previous sheet of
    /// that name.
    pub fn load_sheet(&self, table: &str, csv_text: &str) -> Result<SheetInfo, AppError> {
        self.load_sheet_under(table, csv_text, &Span::noop())
    }

    /// [`Chat2Excel::load_sheet`] under a caller span: records an
    /// `app.chat2excel.load` span with table/row attributes.
    pub fn load_sheet_under(
        &self,
        table: &str,
        csv_text: &str,
        parent: &Span,
    ) -> Result<SheetInfo, AppError> {
        let span = if parent.is_recording() {
            parent.child("app.chat2excel.load", parent.tick())
        } else if self.ctx.obs.is_enabled() {
            self.ctx.obs.span("app.chat2excel.load", self.ctx.obs.tick())
        } else {
            return self.load_sheet_inner(table, csv_text);
        };
        span.attr("table", table);
        let res = self.load_sheet_inner(table, csv_text);
        match &res {
            Ok(info) => {
                span.attr("outcome", "ok");
                span.attr("rows", info.rows);
            }
            Err(_) => span.attr("outcome", "error"),
        }
        span.end(span.tick());
        res
    }

    fn load_sheet_inner(&self, table: &str, csv_text: &str) -> Result<SheetInfo, AppError> {
        if table.trim().is_empty() {
            return Err(AppError::BadInput("sheet needs a table name".into()));
        }
        let mut engine = self.ctx.engine.write();
        let rows = load_csv(engine.database_mut(), table, csv_text)?;
        let t = engine.database().table(table)?;
        let columns = t
            .schema
            .columns()
            .iter()
            .map(|c| (c.name.clone(), c.data_type.name().to_string()))
            .collect();
        Ok(SheetInfo {
            table: table.to_lowercase(),
            rows,
            columns,
        })
    }

    /// Ask a question over loaded sheets.
    pub fn ask(&self, question: &str) -> Result<Chat2DataReply, AppError> {
        self.qa.ask(question)
    }

    /// [`Chat2Excel::ask`] under a caller span (delegates to the inner
    /// Chat2Data app's traced path).
    pub fn ask_under(&self, question: &str, parent: &Span) -> Result<Chat2DataReply, AppError> {
        self.qa.ask_under(question, parent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHEET: &str = "region,sales,quarter\nnorth,100,q1\nsouth,250,q1\nnorth,300,q2\nsouth,50,q2\n";

    fn app() -> Chat2Excel {
        Chat2Excel::new(AppContext::local_default())
    }

    #[test]
    fn load_reports_shape() {
        let info = app().load_sheet("sheet1", SHEET).unwrap();
        assert_eq!(info.rows, 4);
        assert_eq!(info.table, "sheet1");
        assert_eq!(
            info.columns,
            vec![
                ("region".to_string(), "TEXT".to_string()),
                ("sales".to_string(), "INT".to_string()),
                ("quarter".to_string(), "TEXT".to_string()),
            ]
        );
    }

    #[test]
    fn chat_over_sheet() {
        let a = app();
        a.load_sheet("sheet1", SHEET).unwrap();
        let r = a.ask("what is the total sales per region of sheet1?").unwrap();
        assert!(r.answer.contains("north: 400"), "{}", r.answer);
        assert!(r.answer.contains("south: 300"), "{}", r.answer);
    }

    #[test]
    fn reload_replaces_sheet() {
        let a = app();
        a.load_sheet("s", SHEET).unwrap();
        a.load_sheet("s", "region,sales\nwest,1\n").unwrap();
        let r = a.ask("how many s are there?").unwrap();
        assert_eq!(r.answer, "The answer is 1.");
    }

    #[test]
    fn bad_csv_rejected() {
        assert!(matches!(app().load_sheet("s", ""), Err(AppError::Sql(_))));
        assert!(app().load_sheet("  ", SHEET).is_err());
    }

    #[test]
    fn question_before_loading_fails_cleanly() {
        assert!(app().ask("total sales?").is_err());
    }
}
