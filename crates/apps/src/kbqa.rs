//! Knowledge-base question answering over the RAG stack.
//!
//! "question answering based on knowledge bases" (§2.1), wired exactly as
//! Fig. 2 describes: the query retrieves top-k paragraphs under a
//! selectable strategy, the ICL builder packs them (with privacy
//! redaction) into a QA prompt, and the model answers extractively.

use serde::Serialize;

use dbgpt_llm::GenerationParams;
use dbgpt_obs::Span;
use dbgpt_rag::{IclBuilder, RetrievalStrategy};

use crate::context::AppContext;
use crate::error::AppError;

/// One KBQA answer with its provenance.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct KbqaReply {
    /// The model's answer.
    pub answer: String,
    /// Ids of the documents whose chunks were retrieved.
    pub sources: Vec<String>,
    /// Number of chunks packed into the prompt.
    pub chunks_used: usize,
}

/// The KBQA app.
#[derive(Clone)]
pub struct KnowledgeQa {
    ctx: AppContext,
    strategy: RetrievalStrategy,
    top_k: usize,
    prompt_budget: usize,
    rerank: bool,
}

impl KnowledgeQa {
    /// App with hybrid retrieval, k = 4, 1024-token prompts.
    pub fn new(ctx: AppContext) -> Self {
        KnowledgeQa {
            ctx,
            strategy: RetrievalStrategy::Hybrid,
            top_k: 4,
            prompt_budget: 1024,
            rerank: false,
        }
    }

    /// Enable the second-stage lexical reranker, builder style.
    pub fn with_rerank(mut self) -> Self {
        self.rerank = true;
        self
    }

    /// Override the retrieval strategy, builder style.
    pub fn with_strategy(mut self, strategy: RetrievalStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Add a document to the knowledge base.
    pub fn ingest(&self, id: &str, text: &str) -> usize {
        self.ctx.kb.write().add_text(id, text)
    }

    /// Answer a question from the knowledge base.
    pub fn ask(&self, question: &str) -> Result<KbqaReply, AppError> {
        self.ask_under(question, &Span::noop())
    }

    /// Answer under a caller span: records an `app.kbqa` span with the RAG
    /// retrieval and model completion joined as children. Byte-identical
    /// to [`KnowledgeQa::ask`] when nothing records.
    pub fn ask_under(&self, question: &str, parent: &Span) -> Result<KbqaReply, AppError> {
        let span = if parent.is_recording() {
            parent.child("app.kbqa", parent.tick())
        } else if self.ctx.obs.is_enabled() {
            self.ctx.obs.span("app.kbqa", self.ctx.obs.tick())
        } else {
            return self.ask_inner(question, &Span::noop());
        };
        let obs = span.handle();
        obs.counter("app.kbqa.requests", 1);
        let res = self.ask_inner(question, &span);
        match &res {
            Ok(r) => {
                span.attr("outcome", "ok");
                span.attr("chunks", r.chunks_used);
            }
            Err(_) => {
                span.attr("outcome", "error");
                obs.counter("app.kbqa.errors", 1);
            }
        }
        span.end(span.tick());
        res
    }

    fn ask_inner(&self, question: &str, span: &Span) -> Result<KbqaReply, AppError> {
        let question = question.trim();
        if question.is_empty() {
            return Err(AppError::BadInput("empty question".into()));
        }
        let kb = self.ctx.kb.read();
        let hits = if self.rerank {
            kb.retrieve_reranked_under(question, self.top_k, self.strategy, span)
        } else {
            kb.retrieve_under(question, self.top_k, self.strategy, span)
        };
        drop(kb);
        let mut sources: Vec<String> = Vec::new();
        for h in &hits {
            if !sources.contains(&h.chunk.document_id) {
                sources.push(h.chunk.document_id.clone());
            }
        }
        let (prompt, chunks_used) = IclBuilder::new(self.prompt_budget).build(question, &hits)?;
        let completion = self
            .ctx
            .llm
            .complete_under(&prompt, &GenerationParams::default(), span)
            .map_err(|e| AppError::Llm(e.to_string()))?;
        Ok(KbqaReply {
            answer: completion.text,
            sources,
            chunks_used,
        })
    }
}

impl std::fmt::Debug for KnowledgeQa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KnowledgeQa")
            .field("strategy", &self.strategy.name())
            .field("top_k", &self.top_k)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> KnowledgeQa {
        let qa = KnowledgeQa::new(AppContext::local_default());
        qa.ingest(
            "awel-manual",
            "AWEL is the Agentic Workflow Expression Language of DB-GPT. \
             It arranges agents as operators in a DAG.",
        );
        qa.ingest(
            "smmf-manual",
            "SMMF keeps model serving private. \
             All interactions among users, models and data happen locally.",
        );
        qa.ingest(
            "trivia",
            "The moon orbits the earth. Cheese is made from milk.",
        );
        qa
    }

    #[test]
    fn answers_from_the_right_document() {
        let r = app().ask("what arranges agents as operators in a DAG?").unwrap();
        assert!(r.answer.contains("AWEL") || r.answer.contains("operators"), "{}", r.answer);
        assert_eq!(r.sources[0], "awel-manual");
        assert!(r.chunks_used > 0);
    }

    #[test]
    fn privacy_question_hits_smmf_doc() {
        let r = app().ask("how is model serving kept private?").unwrap();
        assert!(r.sources.contains(&"smmf-manual".to_string()));
        assert!(r.answer.to_lowercase().contains("private") || r.answer.contains("locally"));
    }

    #[test]
    fn unanswerable_question_degrades_gracefully() {
        let r = app().ask("what is the airspeed of an unladen swallow?").unwrap();
        assert!(
            r.answer.contains("could not find") || !r.answer.is_empty(),
            "{}",
            r.answer
        );
    }

    #[test]
    fn every_strategy_works_end_to_end() {
        for &s in RetrievalStrategy::ALL {
            let qa = app().with_strategy(s);
            let r = qa.ask("what language arranges agents?").unwrap();
            assert!(!r.answer.is_empty(), "strategy {}", s.name());
        }
    }

    #[test]
    fn reranked_retrieval_path_works() {
        let qa = app().with_rerank();
        let r = qa.ask("what arranges agents as operators in a DAG?").unwrap();
        assert!(r.chunks_used > 0);
        assert_eq!(r.sources[0], "awel-manual");
    }

    #[test]
    fn empty_question_rejected() {
        assert!(app().ask("  ").is_err());
    }

    #[test]
    fn empty_kb_still_answers_honestly() {
        let qa = KnowledgeQa::new(AppContext::local_default());
        let r = qa.ask("anything at all?").unwrap();
        assert_eq!(r.chunks_used, 0);
        assert!(r.sources.is_empty());
    }
}
