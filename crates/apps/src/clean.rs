//! Automatic data preparation — the paper's §4 future-work direction on
//! "automatic data preparation" (the CleanAgent line of work the authors
//! cite). Real-world sheets arrive dirty; this module standardises a table
//! in place and reports every operation it performed:
//!
//! 1. **Text standardisation** — trim and collapse whitespace, and unify
//!    casing variants of the same categorical value to the variant's most
//!    frequent spelling (`" Tech"`, `"tech "` and `"TECH"` become one).
//! 2. **Numeric recovery** — a TEXT column whose non-null values all parse
//!    as numbers (tolerating `$`, `,` and whitespace) is converted to a
//!    numeric column, schema change included.
//! 3. **Null imputation** *(opt-in)* — numeric nulls become the column
//!    mean; text nulls become the column mode.
//! 4. **Deduplication** *(opt-in)* — exact duplicate rows are dropped.

use serde::{Deserialize, Serialize};

use dbgpt_sqlengine::{Column, DataType, Schema, Value};

use crate::context::AppContext;
use crate::error::AppError;

/// What the cleaner is allowed to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleanOptions {
    /// Trim/collapse whitespace and unify categorical casing.
    pub standardize_text: bool,
    /// Convert numeric-looking TEXT columns to numbers.
    pub recover_numerics: bool,
    /// Fill nulls (mean for numeric, mode for text).
    pub impute_nulls: bool,
    /// Drop exact duplicate rows.
    pub dedupe: bool,
}

impl Default for CleanOptions {
    /// The safe set: standardise + recover. Imputation and dedupe change
    /// row semantics, so they are opt-in.
    fn default() -> Self {
        CleanOptions {
            standardize_text: true,
            recover_numerics: true,
            impute_nulls: false,
            dedupe: false,
        }
    }
}

impl CleanOptions {
    /// Everything on.
    pub fn aggressive() -> Self {
        CleanOptions {
            standardize_text: true,
            recover_numerics: true,
            impute_nulls: true,
            dedupe: true,
        }
    }
}

/// One operation the cleaner performed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CleanOp {
    /// Operation kind (`standardize-text`, `recover-numeric`,
    /// `impute-null`, `dedupe`).
    pub kind: String,
    /// The column involved (empty for row-level ops).
    pub column: String,
    /// Cells/rows affected.
    pub affected: usize,
    /// Human-readable description.
    pub description: String,
}

/// The cleaning report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CleanReport {
    /// Cleaned table.
    pub table: String,
    /// Operations performed, in order.
    pub operations: Vec<CleanOp>,
    /// Rows in the table after cleaning.
    pub rows: usize,
}

impl CleanReport {
    /// Summarise as prose (the agent's reply).
    pub fn narrative(&self) -> String {
        if self.operations.is_empty() {
            return format!("Table `{}` was already clean ({} rows).", self.table, self.rows);
        }
        let steps: Vec<String> = self
            .operations
            .iter()
            .map(|o| format!("{} ({} affected)", o.description, o.affected))
            .collect();
        format!(
            "Standardized table `{}` in {} step(s): {}. {} row(s) remain.",
            self.table,
            self.operations.len(),
            steps.join("; "),
            self.rows
        )
    }
}

/// The data-preparation app.
#[derive(Debug, Clone)]
pub struct DataCleaner {
    pub(crate) ctx: AppContext,
    options: CleanOptions,
}

/// Parse a number out of a messy cell ("$1,200.50" → 1200.5).
fn parse_messy_number(s: &str) -> Option<f64> {
    let cleaned: String = s
        .trim()
        .chars()
        .filter(|c| !matches!(c, '$' | ',' | ' ' | '€' | '£'))
        .collect();
    if cleaned.is_empty() {
        return None;
    }
    cleaned.parse::<f64>().ok()
}

/// Normalise whitespace: trim + collapse runs.
fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

impl DataCleaner {
    /// Cleaner with the safe default options.
    pub fn new(ctx: AppContext) -> Self {
        DataCleaner {
            ctx,
            options: CleanOptions::default(),
        }
    }

    /// Override options, builder style.
    pub fn with_options(mut self, options: CleanOptions) -> Self {
        self.options = options;
        self
    }

    /// Clean one table in place.
    pub fn clean_table(&self, table: &str) -> Result<CleanReport, AppError> {
        let mut engine = self.ctx.engine.write();
        let t = engine.database().table(table)?;
        let old_schema = t.schema.clone();
        let mut rows: Vec<Vec<Value>> = t.all_rows()?;
        let mut operations = Vec::new();

        // 1. Text standardisation.
        if self.options.standardize_text {
            for (ci, col) in old_schema.columns().iter().enumerate() {
                if col.data_type != DataType::Text {
                    continue;
                }
                let mut affected = 0usize;
                // Pass 1: whitespace.
                for row in rows.iter_mut() {
                    if let Value::Text(s) = &row[ci] {
                        let fixed = normalize_ws(s);
                        if &fixed != s {
                            row[ci] = Value::Text(fixed);
                            affected += 1;
                        }
                    }
                }
                // Pass 2: unify casing variants to the most frequent form.
                use std::collections::HashMap;
                let mut freq: HashMap<String, HashMap<&str, usize>> = HashMap::new();
                for row in rows.iter() {
                    if let Value::Text(s) = &row[ci] {
                        *freq.entry(s.to_lowercase()).or_default().entry(s).or_insert(0) += 1;
                    }
                }
                let canonical: HashMap<String, String> = freq
                    .iter()
                    .filter(|(_, variants)| variants.len() > 1)
                    .map(|(lower, variants)| {
                        let best = variants
                            .iter()
                            .max_by_key(|(form, n)| (**n, std::cmp::Reverse(form.to_string())))
                            .map(|(form, _)| form.to_string())
                            .expect("non-empty variants");
                        (lower.clone(), best)
                    })
                    .collect();
                if !canonical.is_empty() {
                    for row in rows.iter_mut() {
                        if let Value::Text(s) = &row[ci] {
                            if let Some(best) = canonical.get(&s.to_lowercase()) {
                                if best != s {
                                    row[ci] = Value::Text(best.clone());
                                    affected += 1;
                                }
                            }
                        }
                    }
                }
                if affected > 0 {
                    operations.push(CleanOp {
                        kind: "standardize-text".into(),
                        column: col.name.clone(),
                        affected,
                        description: format!("standardized text in `{}`", col.name),
                    });
                }
            }
        }

        // 2. Numeric recovery: TEXT column → FLOAT/INT when every non-null
        //    cell parses.
        let mut new_types: Vec<DataType> =
            old_schema.columns().iter().map(|c| c.data_type).collect();
        if self.options.recover_numerics {
            for (ci, col) in old_schema.columns().iter().enumerate() {
                if col.data_type != DataType::Text {
                    continue;
                }
                let mut parsed: Vec<Option<f64>> = Vec::with_capacity(rows.len());
                let mut any = false;
                let mut all_parse = true;
                for row in rows.iter() {
                    match &row[ci] {
                        Value::Null => parsed.push(None),
                        Value::Text(s) => match parse_messy_number(s) {
                            Some(n) => {
                                any = true;
                                parsed.push(Some(n));
                            }
                            None => {
                                all_parse = false;
                                break;
                            }
                        },
                        _ => parsed.push(None),
                    }
                }
                if !any || !all_parse {
                    continue;
                }
                let all_int = parsed
                    .iter()
                    .flatten()
                    .all(|n| n.fract() == 0.0 && n.abs() < 9e15);
                let ty = if all_int { DataType::Int } else { DataType::Float };
                let mut affected = 0usize;
                for (row, p) in rows.iter_mut().zip(&parsed) {
                    match p {
                        Some(n) => {
                            row[ci] = if all_int {
                                Value::Int(*n as i64)
                            } else {
                                Value::Float(*n)
                            };
                            affected += 1;
                        }
                        None => row[ci] = Value::Null,
                    }
                }
                new_types[ci] = ty;
                operations.push(CleanOp {
                    kind: "recover-numeric".into(),
                    column: col.name.clone(),
                    affected,
                    description: format!(
                        "converted `{}` from TEXT to {}",
                        col.name,
                        ty.name()
                    ),
                });
            }
        }

        // 3. Null imputation.
        if self.options.impute_nulls {
            for (ci, col) in old_schema.columns().iter().enumerate() {
                let nulls = rows.iter().filter(|r| r[ci].is_null()).count();
                if nulls == 0 || nulls == rows.len() {
                    continue;
                }
                let fill = match new_types[ci] {
                    DataType::Int | DataType::Float => {
                        let vals: Vec<f64> =
                            rows.iter().filter_map(|r| r[ci].as_f64()).collect();
                        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                        if new_types[ci] == DataType::Int {
                            Value::Int(mean.round() as i64)
                        } else {
                            Value::Float(mean)
                        }
                    }
                    DataType::Text => {
                        use std::collections::HashMap;
                        let mut freq: HashMap<&str, usize> = HashMap::new();
                        for r in rows.iter() {
                            if let Value::Text(s) = &r[ci] {
                                *freq.entry(s).or_insert(0) += 1;
                            }
                        }
                        match freq
                            .into_iter()
                            .max_by_key(|(s, n)| (*n, std::cmp::Reverse(s.to_string())))
                        {
                            Some((mode, _)) => Value::Text(mode.to_string()),
                            None => continue,
                        }
                    }
                    DataType::Bool => continue,
                };
                for row in rows.iter_mut() {
                    if row[ci].is_null() {
                        row[ci] = fill.clone();
                    }
                }
                operations.push(CleanOp {
                    kind: "impute-null".into(),
                    column: col.name.clone(),
                    affected: nulls,
                    description: format!("imputed nulls in `{}`", col.name),
                });
            }
        }

        // 4. Dedupe.
        if self.options.dedupe {
            use std::collections::HashSet;
            let before = rows.len();
            let mut seen = HashSet::new();
            rows.retain(|r| {
                let key: Vec<_> = r.iter().map(Value::group_key).collect();
                seen.insert(key)
            });
            let removed = before - rows.len();
            if removed > 0 {
                operations.push(CleanOp {
                    kind: "dedupe".into(),
                    column: String::new(),
                    affected: removed,
                    description: format!("removed {removed} duplicate row(s)"),
                });
            }
        }

        // Rebuild the table (schema may have changed).
        let new_schema = Schema::new(
            old_schema
                .columns()
                .iter()
                .zip(&new_types)
                .map(|(c, ty)| Column::new(c.name.clone(), *ty))
                .collect(),
        )
        .map_err(|e| AppError::Sql(e.to_string()))?;
        let row_count = rows.len();
        let db = engine.database_mut();
        db.drop_table(table, false)?;
        db.create_table(table, new_schema, false)?;
        {
            let t = db.table_mut(table)?;
            for r in rows {
                t.insert_row(r)?;
            }
        }
        Ok(CleanReport {
            table: table.to_lowercase(),
            operations,
            rows: row_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with(ddl: &str, insert: &str) -> AppContext {
        let ctx = AppContext::local_default();
        ctx.seed_sql(&[ddl, insert]).unwrap();
        ctx
    }

    #[test]
    fn whitespace_and_case_standardisation() {
        let ctx = ctx_with(
            "CREATE TABLE t (cat TEXT)",
            "INSERT INTO t VALUES (' tech'), ('tech  '), ('TECH'), ('tech'), ('books')",
        );
        let report = DataCleaner::new(ctx.clone()).clean_table("t").unwrap();
        assert_eq!(report.operations.len(), 1);
        assert_eq!(report.operations[0].kind, "standardize-text");
        let r = ctx.engine.write().execute("SELECT COUNT(*) FROM t WHERE cat = 'tech'").unwrap();
        assert_eq!(r.rows[0][0].as_i64(), Some(4));
    }

    #[test]
    fn numeric_recovery_with_currency_symbols() {
        let ctx = ctx_with(
            "CREATE TABLE t (price TEXT, label TEXT)",
            "INSERT INTO t VALUES ('$1,200.50', 'a'), ('15', 'b'), (NULL, 'c')",
        );
        let report = DataCleaner::new(ctx.clone()).clean_table("t").unwrap();
        assert!(report
            .operations
            .iter()
            .any(|o| o.kind == "recover-numeric" && o.column == "price"));
        // The column is now numeric and aggregable.
        let r = ctx.engine.write().execute("SELECT SUM(price) FROM t").unwrap();
        assert_eq!(r.rows[0][0].as_f64(), Some(1215.5));
        // The label column stayed text.
        let ddl = ctx.schema_ddl();
        assert!(ddl.contains("price FLOAT"), "{ddl}");
        assert!(ddl.contains("label TEXT"), "{ddl}");
    }

    #[test]
    fn integer_recovery_chooses_int() {
        let ctx = ctx_with("CREATE TABLE t (n TEXT)", "INSERT INTO t VALUES ('1'), ('2,000')");
        DataCleaner::new(ctx.clone()).clean_table("t").unwrap();
        assert!(ctx.schema_ddl().contains("n INT"));
    }

    #[test]
    fn mixed_text_column_left_alone() {
        let ctx = ctx_with("CREATE TABLE t (x TEXT)", "INSERT INTO t VALUES ('12'), ('apple')");
        let report = DataCleaner::new(ctx.clone()).clean_table("t").unwrap();
        assert!(report.operations.iter().all(|o| o.kind != "recover-numeric"));
        assert!(ctx.schema_ddl().contains("x TEXT"));
    }

    #[test]
    fn imputation_fills_mean_and_mode() {
        let ctx = ctx_with(
            "CREATE TABLE t (v INT, c TEXT)",
            "INSERT INTO t VALUES (10, 'a'), (NULL, 'a'), (20, NULL)",
        );
        let report = DataCleaner::new(ctx.clone())
            .with_options(CleanOptions::aggressive())
            .clean_table("t")
            .unwrap();
        assert!(report.operations.iter().any(|o| o.kind == "impute-null" && o.column == "v"));
        assert!(report.operations.iter().any(|o| o.kind == "impute-null" && o.column == "c"));
        let r = ctx.engine.write().execute("SELECT v, c FROM t ORDER BY v").unwrap();
        // Mean of 10,20 = 15; mode of text = 'a'.
        assert!(r.rows.iter().any(|row| row[0].as_i64() == Some(15)));
        assert!(r.rows.iter().all(|row| row[1].as_str() == Some("a")));
    }

    #[test]
    fn dedupe_removes_exact_duplicates() {
        let ctx = ctx_with(
            "CREATE TABLE t (a INT, b TEXT)",
            "INSERT INTO t VALUES (1, 'x'), (1, 'x'), (1, 'y')",
        );
        let report = DataCleaner::new(ctx.clone())
            .with_options(CleanOptions::aggressive())
            .clean_table("t")
            .unwrap();
        assert_eq!(report.rows, 2);
        assert!(report.operations.iter().any(|o| o.kind == "dedupe" && o.affected == 1));
    }

    #[test]
    fn clean_table_is_idempotent() {
        let ctx = ctx_with(
            "CREATE TABLE t (cat TEXT, price TEXT)",
            "INSERT INTO t VALUES (' Tech', '$5'), ('tech', '7')",
        );
        let cleaner = DataCleaner::new(ctx.clone()).with_options(CleanOptions::aggressive());
        cleaner.clean_table("t").unwrap();
        let second = cleaner.clean_table("t").unwrap();
        assert!(
            second.operations.is_empty(),
            "second pass should be a no-op: {:?}",
            second.operations
        );
        assert!(second.narrative().contains("already clean"));
    }

    #[test]
    fn unknown_table_errors() {
        let ctx = AppContext::local_default();
        assert!(matches!(
            DataCleaner::new(ctx).clean_table("ghost"),
            Err(AppError::Sql(_))
        ));
    }

    #[test]
    fn narrative_lists_operations() {
        let ctx = ctx_with(
            "CREATE TABLE t (p TEXT)",
            "INSERT INTO t VALUES ('$1'), ('2')",
        );
        let report = DataCleaner::new(ctx).clean_table("t").unwrap();
        let n = report.narrative();
        assert!(n.contains("converted `p`"), "{n}");
        assert!(n.contains("row(s) remain"), "{n}");
    }

    #[test]
    fn messy_number_parser() {
        assert_eq!(parse_messy_number("$1,200.50"), Some(1200.5));
        assert_eq!(parse_messy_number(" 42 "), Some(42.0));
        assert_eq!(parse_messy_number("€ 9"), Some(9.0));
        assert_eq!(parse_messy_number("abc"), None);
        assert_eq!(parse_messy_number(""), None);
        assert_eq!(parse_messy_number("$,"), None);
    }
}

/// The data-preparation specialist as a multi-agent citizen: hand it a
/// step like "standardize the revenue table" and it cleans the named
/// table, reporting its operations.
pub struct CleanAgent {
    cleaner: DataCleaner,
}

impl CleanAgent {
    /// Agent over a context (aggressive options — an agent asked to clean
    /// is expected to actually clean).
    pub fn new(ctx: AppContext) -> Self {
        CleanAgent {
            cleaner: DataCleaner::new(ctx).with_options(CleanOptions::aggressive()),
        }
    }
}

impl dbgpt_agents::Agent for CleanAgent {
    fn name(&self) -> &str {
        "data_cleaner"
    }

    fn role(&self) -> &str {
        "data_cleaner"
    }

    fn handle(
        &self,
        task: &dbgpt_agents::TaskRequest,
        _ctx: &dbgpt_agents::AgentContext,
    ) -> Result<dbgpt_agents::AgentReply, dbgpt_agents::AgentError> {
        // The table is the last word of the step description that names an
        // existing table.
        let table = {
            let engine = self.cleaner.ctx.engine.read();
            let db = engine.database();
            task.step
                .description
                .split(|c: char| !c.is_alphanumeric() && c != '_')
                .rev()
                .find(|w| db.has_table(w))
                .map(str::to_string)
        }
        .ok_or_else(|| {
            dbgpt_agents::AgentError::Llm(format!(
                "no known table named in step: {}",
                task.step.description
            ))
        })?;
        let report = self
            .cleaner
            .clean_table(&table)
            .map_err(|e| dbgpt_agents::AgentError::Llm(e.to_string()))?;
        Ok(dbgpt_agents::AgentReply::structured(
            serde_json::to_value(&report).expect("report serializes"),
            report.narrative(),
        ))
    }
}

#[cfg(test)]
mod agent_tests {
    use super::*;
    use dbgpt_agents::{Agent, AgentContext, HistoryArchive, LlmClient, TaskRequest};
    use dbgpt_llm::catalog::builtin_model;
    use std::sync::Arc;

    fn agent_ctx() -> AgentContext {
        AgentContext {
            llm: LlmClient::direct(builtin_model("sim-qwen").unwrap()),
            archive: Arc::new(HistoryArchive::in_memory()),
            seed: 0,
        }
    }

    fn task(desc: &str) -> TaskRequest {
        TaskRequest {
            conversation: "c".into(),
            goal: "g".into(),
            step: dbgpt_llm::skills::planner::PlanStep {
                id: 1,
                description: desc.into(),
                agent: "data_cleaner".into(),
                chart: None,
                dimension: None,
            },
            prior_results: vec![],
        }
    }

    #[test]
    fn clean_agent_finds_and_cleans_the_named_table() {
        let ctx = AppContext::local_default();
        ctx.seed_sql(&[
            "CREATE TABLE expenses (cost TEXT)",
            "INSERT INTO expenses VALUES ('$10'), ('20')",
        ])
        .unwrap();
        let agent = CleanAgent::new(ctx.clone());
        let reply = agent
            .handle(&task("please standardize the expenses table"), &agent_ctx())
            .unwrap();
        assert!(reply.summary.contains("expenses"));
        assert!(ctx.schema_ddl().contains("cost INT"));
    }

    #[test]
    fn clean_agent_rejects_unknown_tables() {
        let ctx = AppContext::local_default();
        let agent = CleanAgent::new(ctx);
        assert!(agent.handle(&task("clean the ghosts table"), &agent_ctx()).is_err());
    }
}
