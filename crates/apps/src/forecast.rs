//! Time-series forecasting — the paper's first future-work direction.
//!
//! §4: "introducing powerful agents providing more powerful abilities,
//! such as time series predictions based on historical data and predictive
//! decision abilities". This module implements that agent: it extracts a
//! time series from the live database (the monthly-trend resolution the
//! chart agents already use), fits a forecasting method, and returns the
//! history plus predictions as a line chart and a narrative.
//!
//! Methods are deliberately classical and fully deterministic — naive
//! (last value), moving average, and least-squares linear trend — because
//! the *agent wiring* (goal → data → model → chart → report) is what the
//! future-work item describes; the estimator is pluggable.

use serde::{Deserialize, Serialize};
use serde_json::json;

use dbgpt_agents::{Agent, AgentContext, AgentError, AgentReply, TaskRequest};
use dbgpt_vis::{chart::ChartType, ChartSpec, DataPoint};

use crate::analysis::resolve_dimension;
use crate::context::AppContext;
use crate::error::AppError;

/// A forecasting method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ForecastMethod {
    /// Repeat the last observation.
    Naive,
    /// Mean of the trailing `window` observations.
    MovingAverage(usize),
    /// Least-squares linear trend extrapolation.
    LinearTrend,
}

impl ForecastMethod {
    /// Short display name.
    pub fn name(&self) -> String {
        match self {
            ForecastMethod::Naive => "naive".into(),
            ForecastMethod::MovingAverage(w) => format!("moving-average({w})"),
            ForecastMethod::LinearTrend => "linear-trend".into(),
        }
    }

    /// Forecast `horizon` future values from `history`.
    ///
    /// Returns an empty vector when history is empty; a single observation
    /// is enough for `Naive`/`MovingAverage`, two for `LinearTrend`
    /// (which degrades to naive below that).
    pub fn forecast(&self, history: &[f64], horizon: usize) -> Vec<f64> {
        if history.is_empty() || horizon == 0 {
            return Vec::new();
        }
        match self {
            ForecastMethod::Naive => vec![*history.last().expect("non-empty"); horizon],
            ForecastMethod::MovingAverage(window) => {
                let mut extended: Vec<f64> = history.to_vec();
                let w = (*window).max(1);
                for _ in 0..horizon {
                    let start = extended.len().saturating_sub(w);
                    let tail = &extended[start..];
                    let mean = tail.iter().sum::<f64>() / tail.len() as f64;
                    extended.push(mean);
                }
                extended[history.len()..].to_vec()
            }
            ForecastMethod::LinearTrend => {
                if history.len() < 2 {
                    return vec![history[0]; horizon];
                }
                // Least squares over (0..n) → (slope, intercept).
                let n = history.len() as f64;
                let sum_x: f64 = (0..history.len()).map(|i| i as f64).sum();
                let sum_y: f64 = history.iter().sum();
                let sum_xy: f64 = history.iter().enumerate().map(|(i, y)| i as f64 * y).sum();
                let sum_x2: f64 = (0..history.len()).map(|i| (i * i) as f64).sum();
                let denom = n * sum_x2 - sum_x * sum_x;
                let slope = if denom.abs() < f64::EPSILON {
                    0.0
                } else {
                    (n * sum_xy - sum_x * sum_y) / denom
                };
                let intercept = (sum_y - slope * sum_x) / n;
                (0..horizon)
                    .map(|h| intercept + slope * (history.len() + h) as f64)
                    .collect()
            }
        }
    }
}

/// A forecast result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForecastReply {
    /// Method used.
    pub method: String,
    /// Observed series as `(label, value)`.
    pub history: Vec<(String, f64)>,
    /// Predicted future values (labels are `+1`, `+2`, …).
    pub predictions: Vec<f64>,
    /// Combined line chart (history + forecast points).
    pub chart: ChartSpec,
    /// One-sentence narrative.
    pub narrative: String,
    /// The SQL that produced the history.
    pub sql: String,
}

/// Parse a horizon like "next 3 months" from the question (default 2).
pub fn parse_horizon(question: &str) -> usize {
    let words: Vec<&str> = question.split_whitespace().collect();
    for (i, w) in words.iter().enumerate() {
        if w.eq_ignore_ascii_case("next") {
            if let Some(n) = words.get(i + 1).and_then(|x| x.parse::<usize>().ok()) {
                return n.clamp(1, 24);
            }
            // "next month" / "next quarter" → 1.
            if words.get(i + 1).is_some() {
                return 1;
            }
        }
    }
    2
}

/// Choose a method from question vocabulary (default linear trend).
pub fn parse_method(question: &str) -> ForecastMethod {
    let q = question.to_lowercase();
    if q.contains("average") || q.contains("smooth") {
        ForecastMethod::MovingAverage(3)
    } else if q.contains("naive") || q.contains("last value") {
        ForecastMethod::Naive
    } else {
        ForecastMethod::LinearTrend
    }
}

/// The forecasting app.
#[derive(Debug, Clone)]
pub struct Forecaster {
    ctx: AppContext,
}

impl Forecaster {
    /// App over a context.
    pub fn new(ctx: AppContext) -> Self {
        Forecaster { ctx }
    }

    /// Answer a forecasting question against the live database.
    pub fn ask(&self, question: &str) -> Result<ForecastReply, AppError> {
        let question = question.trim();
        if question.is_empty() {
            return Err(AppError::BadInput("empty question".into()));
        }
        // The history is the monthly trend of the dominant fact table.
        let query = {
            let engine = self.ctx.engine.read();
            resolve_dimension(engine.database(), "monthly trend")
        }
        .ok_or_else(|| {
            AppError::BadInput("no table with a time-like column to forecast from".into())
        })?;
        let result = self.ctx.engine.write().execute(&query.sql)?;
        if result.rows.is_empty() {
            return Err(AppError::BadInput("no historical data to forecast from".into()));
        }
        let history: Vec<(String, f64)> = result
            .rows
            .iter()
            .map(|r| (r[0].to_string(), r[1].as_f64().unwrap_or(0.0)))
            .collect();
        let values: Vec<f64> = history.iter().map(|(_, v)| *v).collect();

        let method = parse_method(question);
        let horizon = parse_horizon(question);
        let predictions = method.forecast(&values, horizon);

        // Build the combined chart.
        let mut chart = ChartSpec::new(ChartType::Line, format!("Forecast: {}", query.title))
            .with_value_label("value");
        for (label, v) in &history {
            chart.points.push(DataPoint {
                label: label.clone(),
                value: *v,
            });
        }
        for (i, p) in predictions.iter().enumerate() {
            chart.points.push(DataPoint {
                label: format!("+{}", i + 1),
                value: *p,
            });
        }

        let direction = match (values.last(), predictions.last()) {
            (Some(last), Some(pred)) if pred > last => "rising",
            (Some(last), Some(pred)) if pred < last => "falling",
            _ => "flat",
        };
        let narrative = format!(
            "Using the {} method over {} observed periods, the next {} period(s) are \
             predicted at {:?} — a {direction} trajectory.",
            method.name(),
            history.len(),
            horizon,
            predictions.iter().map(|p| (p * 100.0).round() / 100.0).collect::<Vec<_>>(),
        );
        Ok(ForecastReply {
            method: method.name(),
            history,
            predictions,
            chart,
            narrative,
            sql: query.sql,
        })
    }
}

/// The forecast specialist as a multi-agent framework citizen — the
/// "powerful agent" of §4, registrable next to the chart agents.
pub struct ForecastAgent {
    app: Forecaster,
}

impl ForecastAgent {
    /// Agent over a context.
    pub fn new(ctx: AppContext) -> Self {
        ForecastAgent {
            app: Forecaster::new(ctx),
        }
    }
}

impl Agent for ForecastAgent {
    fn name(&self) -> &str {
        "forecaster"
    }

    fn role(&self) -> &str {
        "forecaster"
    }

    fn handle(&self, task: &TaskRequest, _ctx: &AgentContext) -> Result<AgentReply, AgentError> {
        let reply = self
            .app
            .ask(&task.step.description)
            .map_err(|e| AgentError::Llm(format!("forecast failed: {e}")))?;
        Ok(AgentReply::structured(
            json!({
                "chart_spec": reply.chart,
                "sql": reply.sql,
                "predictions": reply.predictions,
                "method": reply.method,
            }),
            reply.narrative,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_repeats_last() {
        assert_eq!(ForecastMethod::Naive.forecast(&[1.0, 2.0, 5.0], 3), vec![5.0, 5.0, 5.0]);
    }

    #[test]
    fn moving_average_smooths_recursively() {
        let p = ForecastMethod::MovingAverage(2).forecast(&[2.0, 4.0], 2);
        assert_eq!(p[0], 3.0); // mean(2,4)
        assert_eq!(p[1], 3.5); // mean(4,3)
    }

    #[test]
    fn linear_trend_extrapolates_exactly_on_a_line() {
        let history = [1.0, 3.0, 5.0, 7.0]; // y = 2x + 1
        let p = ForecastMethod::LinearTrend.forecast(&history, 2);
        assert!((p[0] - 9.0).abs() < 1e-9);
        assert!((p[1] - 11.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(ForecastMethod::LinearTrend.forecast(&[], 3).is_empty());
        assert!(ForecastMethod::Naive.forecast(&[1.0], 0).is_empty());
        assert_eq!(ForecastMethod::LinearTrend.forecast(&[4.0], 2), vec![4.0, 4.0]);
        // Constant series stays constant under linear trend.
        let p = ForecastMethod::LinearTrend.forecast(&[3.0, 3.0, 3.0], 2);
        assert!((p[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn horizon_parsing() {
        assert_eq!(parse_horizon("forecast sales for the next 3 months"), 3);
        assert_eq!(parse_horizon("what happens next month?"), 1);
        assert_eq!(parse_horizon("predict the sales"), 2);
        assert_eq!(parse_horizon("next 999 months"), 24); // clamped
    }

    #[test]
    fn method_parsing() {
        assert_eq!(parse_method("forecast with a moving average"), ForecastMethod::MovingAverage(3));
        assert_eq!(parse_method("naive forecast please"), ForecastMethod::Naive);
        assert_eq!(parse_method("predict the trend"), ForecastMethod::LinearTrend);
    }

    #[test]
    fn forecaster_runs_on_demo_data() {
        let app = Forecaster::new(AppContext::local_default().with_sales_demo_data());
        let r = app.ask("forecast sales for the next 2 months").unwrap();
        assert_eq!(r.history.len(), 3); // jan, feb, mar
        assert_eq!(r.predictions.len(), 2);
        assert_eq!(r.chart.points.len(), 5);
        assert_eq!(r.chart.chart_type, ChartType::Line);
        assert!(r.narrative.contains("linear-trend"));
        assert!(r.sql.contains("GROUP BY month"));
    }

    #[test]
    fn forecaster_rejects_unforecastable_db() {
        let ctx = AppContext::local_default();
        ctx.seed_sql(&["CREATE TABLE t (a INT)", "INSERT INTO t VALUES (1)"]).unwrap();
        let app = Forecaster::new(ctx);
        assert!(matches!(
            app.ask("forecast the future"),
            Err(AppError::BadInput(_))
        ));
    }

    #[test]
    fn forecast_agent_in_the_orchestrator() {
        use dbgpt_agents::{LlmClient, Orchestrator};
        use dbgpt_llm::catalog::builtin_model;
        use std::sync::Arc;

        let ctx = AppContext::local_default().with_sales_demo_data();
        let mut orch = Orchestrator::new(LlmClient::direct(builtin_model("sim-qwen").unwrap()));
        orch.register_agent(Arc::new(ForecastAgent::new(ctx)));
        assert!(orch.roles().contains(&"forecaster".to_string()));
        // Drive the agent directly through a synthetic plan step.
        let agent = ForecastAgent::new(AppContext::local_default().with_sales_demo_data());
        let task = TaskRequest {
            conversation: "c".into(),
            goal: "g".into(),
            step: dbgpt_llm::skills::planner::PlanStep {
                id: 1,
                description: "forecast sales for the next 2 months".into(),
                agent: "forecaster".into(),
                chart: None,
                dimension: None,
            },
            prior_results: vec![],
        };
        let ctx2 = AgentContext {
            llm: LlmClient::direct(builtin_model("sim-qwen").unwrap()),
            archive: Arc::new(dbgpt_agents::HistoryArchive::in_memory()),
            seed: 0,
        };
        let reply = agent.handle(&task, &ctx2).unwrap();
        assert_eq!(reply.content["predictions"].as_array().unwrap().len(), 2);
    }
}
