//! Byte-identity properties of cross-crate span propagation.
//!
//! The companion of `crates/smmf/tests/obs_identity.rs`, one layer up:
//! the application, AWEL, agent and SQL-engine paths instrumented by the
//! end-to-end tracing work. Three guarantees:
//!
//! 1. **Off is free.** With `Obs::disabled()` (what every legacy
//!    constructor passes) the traced entry points take their untraced
//!    fast paths and produce byte-for-byte the same results; nothing is
//!    recorded.
//! 2. **On never perturbs.** Enabling observability changes no app
//!    semantics — replies, errors and row data are identical to a
//!    disabled run.
//! 3. **On is deterministic.** Two enabled runs under the same seeds dump
//!    byte-identical trace JSON, metric snapshots, folded flamegraphs and
//!    critical paths — and one chat2data pipeline request yields exactly
//!    one trace tree spanning the apps, AWEL, RAG, Text-to-SQL,
//!    SQL-engine and model layers.

use dbgpt_agents::{LlmClient, Orchestrator};
use dbgpt_apps::handlers::build_server;
use dbgpt_apps::{AppContext, Chat2Data, Chat2DataPipeline, KnowledgeQa};
use dbgpt_awel::{ops, DagBuilder, ExecutionMode, Scheduler};
use dbgpt_llm::catalog::builtin_model;
use dbgpt_obs::{Obs, ObsConfig, Profile, Span};
use dbgpt_server::Request;
use dbgpt_sqlengine::Engine;
use serde_json::json;

fn demo_ctx(obs: Obs) -> AppContext {
    let ctx = AppContext::local_default()
        .with_sales_demo_data()
        .with_obs(obs);
    ctx.kb.write().add_text(
        "orders-doc",
        "Orders record purchases. Each order has an amount and a category.",
    );
    ctx
}

/// Drive every instrumented app path once (including error paths) and
/// return the Debug-formatted outcomes — the byte-comparable semantics.
fn run_apps_workload(obs: Obs) -> String {
    let ctx = demo_ctx(obs);
    let c2d = Chat2Data::new(ctx.clone());
    let qa = KnowledgeQa::new(ctx.clone());
    let pipe = Chat2DataPipeline::new(ctx);
    let mut out = String::new();
    for q in [
        "how many orders are there?",
        "what is the total amount per category of orders?",
        "list all orders",
        "how many unicorns are there?", // Text-to-SQL error path
    ] {
        out.push_str(&format!("{:?}\n", c2d.ask(q)));
    }
    out.push_str(&format!("{:?}\n", qa.ask("what do orders record?")));
    out.push_str(&format!("{:?}\n", pipe.run("how many users are there?")));
    out.push_str(&format!("{:?}\n", pipe.run("   "))); // intent error path
    out
}

#[test]
fn enabling_observability_never_perturbs_app_semantics() {
    let off = Obs::disabled();
    let on = Obs::new(ObsConfig::enabled(7));
    assert_eq!(run_apps_workload(off.clone()), run_apps_workload(on.clone()));
    assert_eq!(off.span_count(), 0, "disabled handle records nothing");
    assert!(on.span_count() > 0, "enabled handle records the same runs");
    assert!(on.counter_value("app.chat2data.requests") >= 4);
    assert!(on.counter_value("app.chat2data.errors") >= 1);
    assert!(on.counter_value("app.kbqa.requests") >= 1);
    assert!(on.counter_value("app.pipeline.requests") >= 2);
}

#[test]
fn scheduler_traced_and_legacy_runs_agree_in_both_modes() {
    let build = || {
        DagBuilder::new("wf")
            .node("a", ops::map(|v| json!(v.as_i64().unwrap_or(0) + 1)))
            .node("b", ops::map(|v| json!(v.as_i64().unwrap_or(0) * 2)))
            .edge("a", "b")
            .build()
            .unwrap()
    };
    for mode in [ExecutionMode::Batch, ExecutionMode::Async] {
        let legacy = Scheduler::new().run(&build(), json!(20), mode).unwrap();
        let obs = Obs::new(ObsConfig::enabled(3));
        let traced = Scheduler::with_obs(obs.clone())
            .run(&build(), json!(20), mode)
            .unwrap();
        assert_eq!(legacy.sole_output(), traced.sole_output());
        assert_eq!(legacy.skipped, traced.skipped);
        // One awel.dag root + one awel.op per node.
        assert_eq!(obs.span_count(), 3);
        assert_eq!(obs.counter_value("awel.runs"), 1);
        assert_eq!(obs.counter_value("awel.ops_run"), 2);
    }
}

#[test]
fn orchestrator_traced_and_legacy_runs_agree() {
    let goal = "Build sales reports and analyze user orders from at least three distinct dimensions";
    let run = |obs: Option<Obs>| {
        let llm = LlmClient::direct(builtin_model("sim-qwen").unwrap());
        let mut o = Orchestrator::new(llm);
        if let Some(obs) = obs {
            o = o.with_obs(obs);
        }
        format!("{:?}", o.execute_goal(goal).unwrap())
    };
    let obs = Obs::new(ObsConfig::enabled(5));
    assert_eq!(run(None), run(Some(obs.clone())));
    assert_eq!(obs.counter_value("agents.goals"), 1);
    assert!(obs.counter_value("agents.messages") > 0);
    assert!(obs.span_count() >= 3, "goal + plan + steps + aggregate");
}

#[test]
fn execute_traced_with_noop_span_is_execute() {
    let mk = || {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        e.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap();
        e
    };
    let (mut plain, mut traced) = (mk(), mk());
    for sql in [
        "SELECT COUNT(*) FROM t",
        "SELECT a, b FROM t WHERE a > 1",
        "INSERT INTO t VALUES (3, 'z')",
        "SELECT nope FROM missing", // error path
    ] {
        assert_eq!(
            format!("{:?}", plain.execute(sql)),
            format!("{:?}", traced.execute_traced(sql, &Span::noop())),
            "{sql}"
        );
    }
}

#[test]
fn enabled_runs_dump_identical_bytes_across_the_stack() {
    let run = || {
        let obs = Obs::new(ObsConfig::enabled(11));
        let ctx = demo_ctx(obs.clone());
        let server = build_server(&ctx);
        for (i, q) in [
            "how many orders are there?",
            "what is the total amount per category of orders?",
        ]
        .iter()
        .enumerate()
        {
            server.handle(&Request::new(i as u64, "chat2data", *q));
        }
        server.handle(&Request::new(9, "kbqa", "what do orders record?"));
        Chat2DataPipeline::new(ctx)
            .run("how many users are there?")
            .unwrap();
        let spans = obs.finished_spans();
        let profile = Profile::from_spans(&spans);
        let root = spans.iter().find(|s| s.parent.is_none()).unwrap().id;
        (
            obs.trace_json(),
            obs.metrics_json(),
            profile.folded(),
            profile.critical_path(root).unwrap().render(),
        )
    };
    assert_eq!(run(), run(), "trace/metrics/flamegraph/critical-path bytes");
}

#[test]
fn one_pipeline_request_yields_one_trace_spanning_the_stack() {
    let obs = Obs::new(ObsConfig::enabled(21));
    let ctx = demo_ctx(obs.clone());
    let pipe = Chat2DataPipeline::new(ctx);
    pipe.run("how many orders are there?").unwrap();
    let spans = obs.finished_spans();
    let roots: Vec<_> = spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "one request, one trace tree");
    let trace = roots[0].trace;
    assert!(
        spans.iter().all(|s| s.trace == trace),
        "every span joins the request trace"
    );
    // ≥4 crates in one tree: apps, AWEL, RAG, Text-to-SQL, SQL engine,
    // and the model client.
    for prefix in [
        "app.chat2data.pipeline",
        "awel.dag",
        "awel.op",
        "rag.retrieve",
        "t2s.generate",
        "sql.execute",
        "llm.generate",
    ] {
        assert!(
            spans.iter().any(|s| s.name.starts_with(prefix)),
            "missing {prefix} span in\n{}",
            obs.render_traces()
        );
    }
    let profile = Profile::from_spans(&spans);
    let cp = profile.critical_path(trace).unwrap();
    assert!(cp.hops.len() >= 3, "critical path descends into the stack");
}

#[test]
fn server_requests_parent_app_spans_and_count_commands() {
    let obs = Obs::new(ObsConfig::enabled(31));
    let ctx = demo_ctx(obs.clone());
    let server = build_server(&ctx);
    server.handle(&Request::new(1, "chat2data", "how many orders are there?"));
    server.handle(&Request::new(2, "ghost", "x"));
    let spans = obs.finished_spans();
    let req = spans
        .iter()
        .find(|s| s.name == "server.request" && s.attr("app") == Some("chat2data"))
        .expect("server.request span");
    assert!(
        spans
            .iter()
            .any(|s| s.name == "app.chat2data" && s.parent == Some(req.id)),
        "app span nests under the request span"
    );
    assert_eq!(obs.counter_value("server.requests"), 2);
    assert_eq!(obs.counter_value("server.cmd.chat2data"), 1);
    assert_eq!(obs.counter_value("server.cmd.ghost"), 1);
    assert_eq!(obs.counter_value("server.status.ok"), 1);
    assert_eq!(obs.counter_value("server.status.bad_request"), 1);
}
