//! Per-node collectors and the deterministic central aggregator.
//!
//! Every node in a cluster owns its own [`Obs`](crate::Obs) handle; this
//! module joins those islands into one picture. A [`NodeDump`] freezes a
//! node's finished spans + metrics, a [`Collector`] gathers dumps, and
//! [`Collector::aggregate`] groups spans into **distributed traces** (by
//! the propagated trace id — see [`TraceContext`](crate::trace::TraceContext))
//! and applies **tail-based sampling**: complete traces are kept or
//! dropped *atomically* under a span budget, decided only after the whole
//! trace is visible — the policy always retains error traces, then
//! SLO-alert-correlated traces, then the slowest tail, then a seeded hash
//! sample of the rest. Dropped traffic is counted, never silent.
//!
//! Everything is deterministic: trace ordering is canonical
//! `(start, trace_id)`, the baseline sample is a SplitMix64 hash of
//! `seed ^ trace_id`, and the output [`Telemetry`] serializes to
//! byte-stable JSON.

use std::collections::{BTreeMap, BTreeSet};

use crate::json::ObjWriter;
use crate::metrics::MetricsSnapshot;
use crate::trace::{Obs, SpanId, SpanRecord};

/// SplitMix64 finalizer — the sampling hash (local copy; no RNG state).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One node's frozen telemetry: finished spans + a metrics snapshot.
#[derive(Debug, Clone)]
pub struct NodeDump {
    /// Node name, e.g. `gateway` or `node-02`.
    pub node: String,
    /// The node's finished spans (already `(trace, start, id)`-sorted).
    pub spans: Vec<SpanRecord>,
    /// The node's metrics at dump time.
    pub metrics: MetricsSnapshot,
}

impl NodeDump {
    /// Snapshot `obs` as node `node`.
    pub fn of(node: &str, obs: &Obs) -> Self {
        NodeDump {
            node: node.to_string(),
            spans: obs.finished_spans(),
            metrics: obs.metrics_snapshot(),
        }
    }
}

/// The tail-sampling policy. All decisions are per-*trace*, never
/// per-span, so a kept trace is always complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplePolicy {
    /// Hard cap on spans kept in the store. Error traces are exempt from
    /// the cap (they are never dropped) but still count against it.
    pub span_budget: usize,
    /// How many of the slowest non-error traces to retain (the p99 tail).
    pub slow_quota: usize,
    /// Baseline keep rate for unremarkable traces, per mille (0..=1000).
    pub keep_per_mille: u32,
    /// Seed for the baseline sampling hash.
    pub seed: u64,
}

impl SamplePolicy {
    /// Keep everything — the policy for small runs and tests.
    pub fn keep_all() -> Self {
        SamplePolicy {
            span_budget: usize::MAX,
            slow_quota: 0,
            keep_per_mille: 1000,
            seed: 0,
        }
    }

    /// A budgeted policy with a slow-tail quota and a sparse baseline.
    pub fn budgeted(span_budget: usize, slow_quota: usize, keep_per_mille: u32, seed: u64) -> Self {
        SamplePolicy {
            span_budget,
            slow_quota,
            keep_per_mille,
            seed,
        }
    }
}

/// Why a trace survived sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum KeepReason {
    /// At least one span recorded a non-ok outcome — always retained.
    Error,
    /// The trace overlaps an SLO alert's fire→resolve window.
    AlertWindow,
    /// One of the `slow_quota` slowest traces (the latency tail).
    SlowTail,
    /// Survived the seeded baseline hash sample.
    Sampled,
}

impl KeepReason {
    /// Stable lowercase token (used in JSON and the SQL store).
    pub fn as_str(&self) -> &'static str {
        match self {
            KeepReason::Error => "error",
            KeepReason::AlertWindow => "alert",
            KeepReason::SlowTail => "slow",
            KeepReason::Sampled => "sampled",
        }
    }
}

/// A kept span plus the node that recorded it and its trace's tenant.
#[derive(Debug, Clone)]
pub struct TaggedSpan {
    /// Recording node's name.
    pub node: String,
    /// Tenant of the owning trace (empty if untagged).
    pub tenant: String,
    /// The span itself.
    pub span: SpanRecord,
}

/// Aggregate facts about one distributed trace (kept for *every* trace,
/// sampled or not — summaries are cheap; spans are what the budget caps).
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// The trace id.
    pub trace: SpanId,
    /// Root span's name (earliest span's name if no root was captured).
    pub root_name: String,
    /// Tenant tag (empty if no span carried one).
    pub tenant: String,
    /// Earliest span start across all nodes.
    pub start_us: u64,
    /// Latest end minus earliest start across all nodes.
    pub duration_us: u64,
    /// Spans in the trace, across all nodes.
    pub span_count: u64,
    /// Distinct nodes that contributed spans.
    pub node_count: u64,
    /// Did any span record a failure outcome?
    pub error: bool,
    /// `Some(reason)` if the trace was kept, `None` if dropped.
    pub kept: Option<KeepReason>,
}

/// The aggregated, sampled, cluster-wide telemetry.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Kept spans, sorted `(trace, start_us, id)` — the store's contents.
    pub spans: Vec<TaggedSpan>,
    /// Per-node metric snapshots, in collection order.
    pub metrics: Vec<(String, MetricsSnapshot)>,
    /// One summary per trace (kept *and* dropped), in canonical order.
    pub summaries: Vec<TraceSummary>,
    /// The policy's span budget (`u64::MAX` for keep-all).
    pub span_budget: u64,
    /// Spans seen across all dumps.
    pub spans_total: u64,
    /// Spans kept.
    pub spans_kept: u64,
    /// Spans dropped (`total - kept`).
    pub spans_dropped: u64,
    /// Traces seen.
    pub traces_total: u64,
    /// Traces kept.
    pub traces_kept: u64,
    /// Traces dropped.
    pub traces_dropped: u64,
    /// Traces dropped because keeping them would exceed the span budget.
    pub dropped_by_budget: u64,
    /// Traces dropped by the baseline hash sample.
    pub dropped_by_sampling: u64,
}

impl Telemetry {
    /// Kept-trace counts per [`KeepReason`] token.
    pub fn kept_by_reason(&self) -> BTreeMap<&'static str, u64> {
        let mut m = BTreeMap::new();
        for s in &self.summaries {
            if let Some(r) = s.kept {
                *m.entry(r.as_str()).or_insert(0) += 1;
            }
        }
        m
    }

    /// Error-trace retention check: `(errors_total, errors_kept)`.
    pub fn error_retention(&self) -> (u64, u64) {
        let total = self.summaries.iter().filter(|s| s.error).count() as u64;
        let kept = self
            .summaries
            .iter()
            .filter(|s| s.error && s.kept.is_some())
            .count() as u64;
        (total, kept)
    }

    /// The in-memory answer to "top `k` slowest `name` spans per tenant"
    /// over the *kept* spans — the oracle the SQL store is checked
    /// against. Values are `(duration_us, trace, span)` sorted slowest
    /// first, ties broken by `(trace, span)` ascending (exactly the SQL
    /// `ORDER BY duration_us DESC, trace, span`).
    pub fn slowest_spans_per_tenant(
        &self,
        name: &str,
        k: usize,
    ) -> BTreeMap<String, Vec<(u64, SpanId, SpanId)>> {
        let mut per: BTreeMap<String, Vec<(u64, SpanId, SpanId)>> = BTreeMap::new();
        for t in &self.spans {
            if t.span.name == name && !t.tenant.is_empty() {
                per.entry(t.tenant.clone()).or_default().push((
                    t.span.duration_us(),
                    t.span.trace,
                    t.span.id,
                ));
            }
        }
        for v in per.values_mut() {
            v.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| (a.1, a.2).cmp(&(b.1, b.2))));
            v.truncate(k);
        }
        per
    }

    /// Just the kept [`SpanRecord`]s (for rendering / profiling).
    pub fn merged_spans(&self) -> Vec<SpanRecord> {
        self.spans.iter().map(|t| t.span.clone()).collect()
    }

    /// Deterministic JSON of the sampling outcome (counters only — the
    /// spans themselves live in the SQL store).
    pub fn summary_json(&self) -> String {
        let mut reasons = String::from("{");
        for (i, (k, v)) in self.kept_by_reason().iter().enumerate() {
            if i > 0 {
                reasons.push(',');
            }
            reasons.push('"');
            reasons.push_str(k);
            reasons.push_str("\":");
            reasons.push_str(&v.to_string());
        }
        reasons.push('}');
        let (err_total, err_kept) = self.error_retention();
        let mut o = ObjWriter::new();
        o.u64_field("span_budget", self.span_budget)
            .u64_field("spans_total", self.spans_total)
            .u64_field("spans_kept", self.spans_kept)
            .u64_field("spans_dropped", self.spans_dropped)
            .u64_field("traces_total", self.traces_total)
            .u64_field("traces_kept", self.traces_kept)
            .u64_field("traces_dropped", self.traces_dropped)
            .u64_field("dropped_by_budget", self.dropped_by_budget)
            .u64_field("dropped_by_sampling", self.dropped_by_sampling)
            .u64_field("error_traces", err_total)
            .u64_field("error_traces_kept", err_kept)
            .raw_field("kept_by_reason", &reasons);
        o.finish()
    }
}

/// Does this span record a failure? The convention across the repo: an
/// `outcome` attribute of `ok` (or a Debug-formatted `Ok {..}`) is
/// success; anything else — `err:*`, `throttled`, `unavailable:*` — is a
/// failure. An explicit `error` attribute also counts.
fn span_is_error(s: &SpanRecord) -> bool {
    if s.attr("error").is_some() {
        return true;
    }
    match s.attr("outcome") {
        Some(v) => !(v == "ok" || v.starts_with("Ok")),
        None => false,
    }
}

/// Internal per-trace accumulation during aggregation.
struct TraceGroup {
    trace: SpanId,
    /// Indices `(dump, span)` of member spans.
    members: Vec<(usize, usize)>,
    start_us: u64,
    end_us: u64,
    tenant: String,
    root_name: String,
    root_start: u64,
    nodes: BTreeSet<usize>,
    error: bool,
}

/// Gathers [`NodeDump`]s and aggregates them (see module docs).
#[derive(Debug, Clone, Default)]
pub struct Collector {
    dumps: Vec<NodeDump>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Add a pre-built dump.
    pub fn add(&mut self, dump: NodeDump) {
        self.dumps.push(dump);
    }

    /// Snapshot `obs` as node `node` and add it.
    pub fn add_obs(&mut self, node: &str, obs: &Obs) {
        self.add(NodeDump::of(node, obs));
    }

    /// Number of dumps collected.
    pub fn len(&self) -> usize {
        self.dumps.len()
    }

    /// No dumps collected yet?
    pub fn is_empty(&self) -> bool {
        self.dumps.is_empty()
    }

    /// Group spans into distributed traces and tail-sample them under
    /// `policy`. `alert_windows` are `(fired_us, resolved_us)` intervals
    /// from the SLO engine — traces overlapping one are kept with
    /// priority right after errors.
    pub fn aggregate(&self, policy: &SamplePolicy, alert_windows: &[(u64, u64)]) -> Telemetry {
        // 1. Group member spans by trace id across every dump.
        let mut groups: BTreeMap<SpanId, TraceGroup> = BTreeMap::new();
        let mut spans_total: u64 = 0;
        for (di, dump) in self.dumps.iter().enumerate() {
            for (si, span) in dump.spans.iter().enumerate() {
                spans_total += 1;
                let g = groups.entry(span.trace).or_insert_with(|| TraceGroup {
                    trace: span.trace,
                    members: Vec::new(),
                    start_us: u64::MAX,
                    end_us: 0,
                    tenant: String::new(),
                    root_name: String::new(),
                    root_start: u64::MAX,
                    nodes: BTreeSet::new(),
                    error: false,
                });
                g.members.push((di, si));
                g.start_us = g.start_us.min(span.start_us);
                g.end_us = g.end_us.max(span.end_us);
                g.nodes.insert(di);
                g.error |= span_is_error(span);
                if g.tenant.is_empty() {
                    if let Some(t) = span.attr("tenant") {
                        g.tenant = t.to_string();
                    }
                }
                // Prefer the true root's name; fall back to the earliest span.
                if span.parent.is_none() || span.id == span.trace {
                    g.root_name = span.name.clone();
                    g.root_start = 0; // pin: nothing beats the root
                } else if span.start_us < g.root_start && g.root_start != 0 {
                    g.root_name = span.name.clone();
                    g.root_start = span.start_us;
                }
            }
        }

        // 2. Canonical trace order: (earliest start, trace id).
        let mut order: Vec<SpanId> = groups.keys().copied().collect();
        order.sort_by_key(|t| (groups[t].start_us, *t));

        // 3. Classify + sample, whole traces at a time.
        let overlaps_alert = |g: &TraceGroup| {
            alert_windows
                .iter()
                .any(|&(a, b)| g.start_us <= b && g.end_us >= a)
        };
        let mut kept: BTreeMap<SpanId, KeepReason> = BTreeMap::new();
        // Traces some pass wanted but the budget refused. A trace may be
        // refused in one pass and re-considered in a later one; it is
        // classified exactly once at the end — budget-blocked beats
        // sampled-out, so the identity `dropped_by_budget +
        // dropped_by_sampling == traces_dropped` always holds.
        let mut budget_blocked: BTreeSet<SpanId> = BTreeSet::new();
        let mut kept_spans: usize = 0;

        // Pass 1 — errors, unconditionally (they still consume budget).
        for t in &order {
            let g = &groups[t];
            if g.error {
                kept.insert(*t, KeepReason::Error);
                kept_spans += g.members.len();
            }
        }
        // Pass 2 — alert-correlated traces, budget permitting.
        for t in &order {
            let g = &groups[t];
            if !kept.contains_key(t) && overlaps_alert(g) {
                if kept_spans + g.members.len() <= policy.span_budget {
                    kept.insert(*t, KeepReason::AlertWindow);
                    kept_spans += g.members.len();
                } else {
                    budget_blocked.insert(*t);
                }
            }
        }
        // Pass 3 — the slowest tail, up to the quota.
        let mut by_slowness: Vec<SpanId> = order
            .iter()
            .copied()
            .filter(|t| !kept.contains_key(t))
            .collect();
        by_slowness.sort_by_key(|t| {
            let g = &groups[t];
            (std::cmp::Reverse(g.end_us.saturating_sub(g.start_us)), *t)
        });
        let mut slow_kept = 0usize;
        for t in &by_slowness {
            if slow_kept >= policy.slow_quota {
                break;
            }
            let g = &groups[t];
            if kept_spans + g.members.len() <= policy.span_budget {
                kept.insert(*t, KeepReason::SlowTail);
                kept_spans += g.members.len();
                slow_kept += 1;
            } else {
                budget_blocked.insert(*t);
            }
        }
        // Pass 4 — seeded baseline sample over whatever remains.
        let mut sampled_out: BTreeSet<SpanId> = BTreeSet::new();
        for t in &order {
            if kept.contains_key(t) {
                continue;
            }
            let g = &groups[t];
            if mix(policy.seed ^ *t) % 1000 < policy.keep_per_mille as u64 {
                if kept_spans + g.members.len() <= policy.span_budget {
                    kept.insert(*t, KeepReason::Sampled);
                    kept_spans += g.members.len();
                    budget_blocked.remove(t);
                } else {
                    budget_blocked.insert(*t);
                }
            } else {
                sampled_out.insert(*t);
            }
        }
        let dropped_by_budget = order
            .iter()
            .filter(|t| !kept.contains_key(t) && budget_blocked.contains(t))
            .count() as u64;
        let dropped_by_sampling = order
            .iter()
            .filter(|t| {
                !kept.contains_key(t) && !budget_blocked.contains(t) && sampled_out.contains(t)
            })
            .count() as u64;

        // 4. Materialize: kept spans (tagged) + per-trace summaries.
        let mut spans: Vec<TaggedSpan> = Vec::with_capacity(kept_spans);
        let mut summaries: Vec<TraceSummary> = Vec::with_capacity(order.len());
        for t in &order {
            let g = &groups[t];
            let reason = kept.get(t).copied();
            summaries.push(TraceSummary {
                trace: g.trace,
                root_name: g.root_name.clone(),
                tenant: g.tenant.clone(),
                start_us: g.start_us,
                duration_us: g.end_us.saturating_sub(g.start_us),
                span_count: g.members.len() as u64,
                node_count: g.nodes.len() as u64,
                error: g.error,
                kept: reason,
            });
            if reason.is_some() {
                for &(di, si) in &g.members {
                    spans.push(TaggedSpan {
                        node: self.dumps[di].node.clone(),
                        tenant: g.tenant.clone(),
                        span: self.dumps[di].spans[si].clone(),
                    });
                }
            }
        }
        spans.sort_by(|a, b| {
            (a.span.trace, a.span.start_us, a.span.id).cmp(&(
                b.span.trace,
                b.span.start_us,
                b.span.id,
            ))
        });

        let traces_total = order.len() as u64;
        let traces_kept = kept.len() as u64;
        Telemetry {
            spans,
            metrics: self
                .dumps
                .iter()
                .map(|d| (d.node.clone(), d.metrics.clone()))
                .collect(),
            summaries,
            span_budget: if policy.span_budget == usize::MAX {
                u64::MAX
            } else {
                policy.span_budget as u64
            },
            spans_total,
            spans_kept: kept_spans as u64,
            spans_dropped: spans_total - kept_spans as u64,
            traces_total,
            traces_kept,
            traces_dropped: traces_total - traces_kept,
            dropped_by_budget,
            dropped_by_sampling,
        }
    }
}

/// Keep only spans of traces whose **root** span carries `key == value` —
/// e.g. a per-tenant flamegraph cut from one merged dump:
/// `filter_by_root_attr(&spans, "tenant", "tenant-003")`.
pub fn filter_by_root_attr(spans: &[SpanRecord], key: &str, value: &str) -> Vec<SpanRecord> {
    let matching: BTreeSet<SpanId> = spans
        .iter()
        .filter(|s| s.parent.is_none() && s.attr(key) == Some(value))
        .map(|s| s.trace)
        .collect();
    spans
        .iter()
        .filter(|s| matching.contains(&s.trace))
        .cloned()
        .collect()
}

/// Per-tenant usage rollup for one tenant (all counters cumulative).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantUsage {
    /// Requests routed for the tenant (any outcome).
    pub requests: u64,
    /// Requests acknowledged OK.
    pub ok: u64,
    /// Requests failed (unavailable, upstream error).
    pub failed: u64,
    /// Requests shed by admission control.
    pub throttled: u64,
    /// LLM prompt tokens consumed (from `llm::Usage`).
    pub prompt_tokens: u64,
    /// LLM completion tokens generated.
    pub completion_tokens: u64,
    /// Rows written into the tenant's SQL shard (sql.exec counters).
    pub rows_written: u64,
    /// Sum of acknowledged request latencies, µs.
    pub latency_sum_us: u64,
    /// Largest acknowledged request latency, µs.
    pub latency_max_us: u64,
}

impl TenantUsage {
    /// Total LLM tokens (prompt + completion).
    pub fn total_tokens(&self) -> u64 {
        self.prompt_tokens + self.completion_tokens
    }

    /// Mean acknowledged latency, µs (0 when no request succeeded).
    pub fn latency_mean_us(&self) -> u64 {
        self.latency_sum_us.checked_div(self.ok).unwrap_or(0)
    }
}

/// Per-tenant usage accounting — token/row/latency rollups the admission
/// layer can read back to see *who* is consuming the cluster.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UsageLedger {
    tenants: BTreeMap<String, TenantUsage>,
}

impl UsageLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        UsageLedger::default()
    }

    /// Record one acknowledged request.
    pub fn record_ok(
        &mut self,
        tenant: &str,
        prompt_tokens: u64,
        completion_tokens: u64,
        rows_written: u64,
        latency_us: u64,
    ) {
        let u = self.tenants.entry(tenant.to_string()).or_default();
        u.requests += 1;
        u.ok += 1;
        u.prompt_tokens += prompt_tokens;
        u.completion_tokens += completion_tokens;
        u.rows_written += rows_written;
        u.latency_sum_us += latency_us;
        u.latency_max_us = u.latency_max_us.max(latency_us);
    }

    /// Record one failed request.
    pub fn record_failed(&mut self, tenant: &str) {
        let u = self.tenants.entry(tenant.to_string()).or_default();
        u.requests += 1;
        u.failed += 1;
    }

    /// Record one admission-shed request.
    pub fn record_throttled(&mut self, tenant: &str) {
        let u = self.tenants.entry(tenant.to_string()).or_default();
        u.requests += 1;
        u.throttled += 1;
    }

    /// One tenant's rollup.
    pub fn get(&self, tenant: &str) -> Option<&TenantUsage> {
        self.tenants.get(tenant)
    }

    /// Iterate tenants in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &TenantUsage)> {
        self.tenants.iter()
    }

    /// Number of tenants with any recorded usage.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Deterministic JSON: `{"tenant-000":{...},...}` with fixed fields.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, u)) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::write_str(&mut out, k);
            out.push(':');
            let mut o = ObjWriter::new();
            o.u64_field("requests", u.requests)
                .u64_field("ok", u.ok)
                .u64_field("failed", u.failed)
                .u64_field("throttled", u.throttled)
                .u64_field("prompt_tokens", u.prompt_tokens)
                .u64_field("completion_tokens", u.completion_tokens)
                .u64_field("rows_written", u.rows_written)
                .u64_field("latency_sum_us", u.latency_sum_us)
                .u64_field("latency_max_us", u.latency_max_us);
            out.push_str(&o.finish());
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Obs, ObsConfig};

    /// Build a gateway + two nodes, `n` traces; trace `i` is an error when
    /// `i % err_every == 0` (err_every = 0 disables errors).
    fn cluster_dumps(n: u64, err_every: u64) -> (Collector, Vec<SpanId>) {
        let gw = Obs::new(ObsConfig::enabled(1));
        let n0 = Obs::new(ObsConfig::enabled(2));
        let n1 = Obs::new(ObsConfig::enabled(3));
        let mut roots = Vec::new();
        for i in 0..n {
            let at = i * 100;
            let root = gw.span("gateway.request", at);
            root.attr("tenant", format!("tenant-{:03}", i % 3));
            let ctx = root.context(&format!("tenant-{:03}", i % 3)).unwrap();
            let node = if i % 2 == 0 { &n0 } else { &n1 };
            let serve = node.span_in_context("node.serve", at + 5, &ctx);
            let is_err = err_every != 0 && i % err_every == 0;
            serve.attr("outcome", if is_err { "err:boom" } else { "ok" });
            serve.end(at + 5 + 10 + i); // duration grows with i
            root.attr("outcome", if is_err { "err:boom" } else { "ok" });
            root.end(at + 20 + i);
            roots.push(root.id().unwrap());
        }
        let mut c = Collector::new();
        c.add_obs("gateway", &gw);
        c.add_obs("node-00", &n0);
        c.add_obs("node-01", &n1);
        (c, roots)
    }

    #[test]
    fn keep_all_joins_cross_node_traces() {
        let (c, roots) = cluster_dumps(4, 0);
        let t = c.aggregate(&SamplePolicy::keep_all(), &[]);
        assert_eq!(t.traces_total, 4);
        assert_eq!(t.traces_kept, 4);
        assert_eq!(t.spans_total, 8, "root + serve per trace");
        assert_eq!(t.spans_dropped, 0);
        for s in &t.summaries {
            assert_eq!(s.span_count, 2);
            assert_eq!(s.node_count, 2, "gateway + one node");
            assert!(roots.contains(&s.trace));
            assert!(!s.tenant.is_empty());
            assert_eq!(s.root_name, "gateway.request");
        }
    }

    #[test]
    fn errors_survive_any_budget_and_drops_are_counted() {
        let (c, _) = cluster_dumps(10, 5); // traces 0 and 5 are errors
        let policy = SamplePolicy::budgeted(6, 1, 0, 42);
        let t = c.aggregate(&policy, &[]);
        let (err_total, err_kept) = t.error_retention();
        assert_eq!(err_total, 2);
        assert_eq!(err_kept, 2, "error traces are never dropped");
        assert!(t.spans_kept <= 6, "store stays under the budget");
        assert!(t.spans_dropped > 0);
        assert_eq!(t.traces_kept + t.traces_dropped, t.traces_total);
        assert_eq!(
            t.dropped_by_budget + t.dropped_by_sampling,
            t.traces_dropped,
            "every dropped trace is accounted for"
        );
        // The slow-tail pick is the slowest non-error trace (trace 9).
        let slow: Vec<_> = t
            .summaries
            .iter()
            .filter(|s| s.kept == Some(KeepReason::SlowTail))
            .collect();
        assert_eq!(slow.len(), 1);
        let max_dur = t
            .summaries
            .iter()
            .filter(|s| !s.error)
            .map(|s| s.duration_us)
            .max()
            .unwrap();
        assert_eq!(slow[0].duration_us, max_dur);
    }

    #[test]
    fn traces_are_kept_or_dropped_atomically() {
        let (c, _) = cluster_dumps(10, 0);
        let t = c.aggregate(&SamplePolicy::budgeted(7, 2, 500, 7), &[]);
        // Every kept trace contributes *all* of its spans.
        let mut per_trace: BTreeMap<SpanId, usize> = BTreeMap::new();
        for s in &t.spans {
            *per_trace.entry(s.span.trace).or_insert(0) += 1;
        }
        for (trace, n) in per_trace {
            let summary = t.summaries.iter().find(|s| s.trace == trace).unwrap();
            assert_eq!(n as u64, summary.span_count, "no partial traces");
        }
    }

    #[test]
    fn alert_windows_prioritize_overlapping_traces() {
        let (c, _) = cluster_dumps(6, 0);
        // Trace i spans [i*100, i*100+20+i]; alert window covers trace 3 only.
        let t = c.aggregate(&SamplePolicy::budgeted(4, 0, 0, 1), &[(300, 330)]);
        let kept: Vec<_> = t.summaries.iter().filter(|s| s.kept.is_some()).collect();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].kept, Some(KeepReason::AlertWindow));
        assert_eq!(kept[0].start_us, 300);
    }

    #[test]
    fn aggregation_is_deterministic() {
        let run = || {
            let (c, _) = cluster_dumps(20, 7);
            c.aggregate(&SamplePolicy::budgeted(20, 3, 250, 99), &[(100, 400)])
                .summary_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn slowest_per_tenant_orders_and_truncates() {
        let (c, _) = cluster_dumps(9, 0);
        let t = c.aggregate(&SamplePolicy::keep_all(), &[]);
        let per = t.slowest_spans_per_tenant("node.serve", 2);
        assert_eq!(per.len(), 3, "three tenants");
        for (_, rows) in per {
            assert_eq!(rows.len(), 2);
            assert!(rows[0].0 >= rows[1].0, "slowest first");
        }
    }

    #[test]
    fn filter_by_root_attr_cuts_one_tenant() {
        let (c, _) = cluster_dumps(6, 0);
        let t = c.aggregate(&SamplePolicy::keep_all(), &[]);
        let all = t.merged_spans();
        let one = filter_by_root_attr(&all, "tenant", "tenant-001");
        assert!(!one.is_empty());
        assert!(one.len() < all.len());
        let traces: BTreeSet<_> = one.iter().map(|s| s.trace).collect();
        for s in &t.summaries {
            assert_eq!(
                traces.contains(&s.trace),
                s.tenant == "tenant-001",
                "exactly the tenant's traces survive the cut"
            );
        }
    }

    #[test]
    fn usage_ledger_rolls_up_and_serializes() {
        let mut l = UsageLedger::new();
        l.record_ok("tenant-001", 10, 20, 1, 500);
        l.record_ok("tenant-001", 5, 5, 1, 1500);
        l.record_failed("tenant-001");
        l.record_throttled("tenant-000");
        let u = l.get("tenant-001").unwrap();
        assert_eq!(u.requests, 3);
        assert_eq!(u.ok, 2);
        assert_eq!(u.total_tokens(), 40);
        assert_eq!(u.rows_written, 2);
        assert_eq!(u.latency_mean_us(), 1000);
        assert_eq!(u.latency_max_us, 1500);
        assert_eq!(l.tenant_count(), 2);
        let json = l.to_json();
        assert!(json.starts_with("{\"tenant-000\":{\"requests\":1,"));
        assert_eq!(json, l.clone().to_json());
    }
}
