//! A tiny deterministic JSON writer.
//!
//! `serde_json` would work, but the whole point of this crate is that a
//! trace dump is a *stable artifact*: byte-identical across runs, diffable
//! in CI, committable under `results/`. Hand-writing the serializer keeps
//! the crate dependency-free and makes the byte layout explicit — keys are
//! emitted in the order the caller provides (callers use `BTreeMap`s or
//! fixed field orders), numbers are integers or shortest-form floats, and
//! strings are escaped per RFC 8259.

use std::fmt::Write;

/// Escape and double-quote `s` into `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Write an `f64` deterministically: integers without a fraction are
/// printed as `N.0`, everything else through Rust's shortest round-trip
/// formatting (stable for a given value).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{:.1}", v);
    } else {
        let _ = write!(out, "{}", v);
    }
}

/// A growing JSON object literal: `{"k":v,...}` with caller-ordered keys.
pub struct ObjWriter {
    buf: String,
    first: bool,
}

impl ObjWriter {
    /// Start an object.
    pub fn new() -> Self {
        ObjWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_str(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Add a string field.
    pub fn str_field(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        write_str(&mut self.buf, v);
        self
    }

    /// Add an unsigned integer field.
    pub fn u64_field(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add a signed integer field.
    pub fn i64_field(&mut self, k: &str, v: i64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add a float field.
    pub fn f64_field(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        write_f64(&mut self.buf, v);
        self
    }

    /// Add a field whose value is already-serialized JSON.
    pub fn raw_field(&mut self, k: &str, raw: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(raw);
        self
    }

    /// Close the object and return the JSON string.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for ObjWriter {
    fn default() -> Self {
        ObjWriter::new()
    }
}

/// Serialize a list of already-serialized JSON values as an array.
pub fn array_of(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_chars() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn floats_are_stable() {
        let mut s = String::new();
        write_f64(&mut s, 2.0);
        assert_eq!(s, "2.0");
        let mut s = String::new();
        write_f64(&mut s, 0.125);
        assert_eq!(s, "0.125");
    }

    #[test]
    fn object_field_order_is_caller_order() {
        let mut o = ObjWriter::new();
        o.str_field("b", "x").u64_field("a", 7).f64_field("r", 0.5);
        assert_eq!(o.finish(), "{\"b\":\"x\",\"a\":7,\"r\":0.5}");
    }

    #[test]
    fn arrays_join_raw_items() {
        assert_eq!(array_of(["1".into(), "2".into()]), "[1,2]");
        assert_eq!(array_of(Vec::<String>::new()), "[]");
    }
}
