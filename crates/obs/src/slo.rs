//! Declarative SLOs with multi-window burn-rate alerts.
//!
//! An [`SloDef`] states an objective over named metrics — a latency
//! histogram must keep a quantile under a target, or an error/total
//! counter pair must stay under an error budget. The [`SloEngine`]
//! consumes a time-ordered series of *cumulative* metrics snapshots
//! (exactly what [`crate::Obs::metrics_snapshot`] yields) and evaluates
//! Google-SRE-style multi-window burn-rate rules on the deltas: an alert
//! fires when both a short and a long trailing window burn the error
//! budget faster than a threshold multiple of the sustainable rate, and
//! resolves when they stop. Windows are measured in snapshots, burn rates
//! in fixed two-decimal formatting — the alert log is byte-reproducible.

use crate::json::{array_of, ObjWriter};
use crate::metrics::MetricsSnapshot;

/// What one SLO protects.
#[derive(Debug, Clone, PartialEq)]
pub enum Objective {
    /// Quantile `quantile` of histogram `histogram` stays at or under
    /// `target_us`; the implied error budget is `1 - quantile` (p99 → 1%).
    /// "Bad" events are observations over the target, counted at bucket
    /// resolution via [`crate::Histogram::count_le`].
    LatencyQuantile {
        /// Histogram metric name.
        histogram: String,
        /// Target quantile in (0, 1), e.g. 0.99.
        quantile: f64,
        /// Latency target for that quantile (same unit the histogram
        /// observes; a bucket upper bound makes the count exact).
        target_us: u64,
    },
    /// Ratio of counter `errors` to counter `total` stays under `budget`.
    ErrorRate {
        /// Error-count counter name.
        errors: String,
        /// Total-count counter name.
        total: String,
        /// Allowed bad fraction, e.g. 0.05.
        budget: f64,
    },
}

/// A named objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloDef {
    /// Objective name as it appears in alerts and reports.
    pub name: String,
    /// The protected objective.
    pub objective: Objective,
}

impl SloDef {
    /// A latency-quantile objective.
    pub fn latency(name: &str, histogram: &str, quantile: f64, target_us: u64) -> Self {
        SloDef {
            name: name.to_string(),
            objective: Objective::LatencyQuantile {
                histogram: histogram.to_string(),
                quantile,
                target_us,
            },
        }
    }

    /// An error-rate objective.
    pub fn error_rate(name: &str, errors: &str, total: &str, budget: f64) -> Self {
        SloDef {
            name: name.to_string(),
            objective: Objective::ErrorRate {
                errors: errors.to_string(),
                total: total.to_string(),
                budget,
            },
        }
    }

    /// The error budget as a fraction of events.
    pub fn budget(&self) -> f64 {
        match &self.objective {
            Objective::LatencyQuantile { quantile, .. } => (1.0 - quantile).max(1e-9),
            Objective::ErrorRate { budget, .. } => budget.max(1e-9),
        }
    }

    /// Cumulative `(bad, total)` event counts in `snap` (0, 0 when the
    /// metric has not been touched yet).
    fn totals(&self, snap: &MetricsSnapshot) -> (u64, u64) {
        match &self.objective {
            Objective::LatencyQuantile {
                histogram,
                target_us,
                ..
            } => match snap.histograms.get(histogram) {
                Some(h) => (h.count().saturating_sub(h.count_le(*target_us)), h.count()),
                None => (0, 0),
            },
            Objective::ErrorRate { errors, total, .. } => (
                snap.counters.get(errors).copied().unwrap_or(0),
                snap.counters.get(total).copied().unwrap_or(0),
            ),
        }
    }
}

/// One burn-rate rule: alert when both the short and the long trailing
/// window burn the budget at `>= threshold`× the sustainable rate.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnRule {
    /// Rule name as it appears in alerts (`fast`, `slow`, ...).
    pub name: String,
    /// Short window length, in snapshots.
    pub short_windows: usize,
    /// Long window length, in snapshots (the short window guards against
    /// alerting on long-ago burn; the long one against flapping).
    pub long_windows: usize,
    /// Burn-rate multiple that trips the rule.
    pub threshold: f64,
}

impl BurnRule {
    /// The classic fast/slow pair, in snapshot-window units: `fast` pages
    /// on a sharp spike (1/6-snapshot windows at 8×), `slow` catches
    /// sustained burn (6/24 at 2×).
    pub fn classic() -> Vec<BurnRule> {
        vec![
            BurnRule {
                name: "fast".to_string(),
                short_windows: 1,
                long_windows: 6,
                threshold: 8.0,
            },
            BurnRule {
                name: "slow".to_string(),
                short_windows: 6,
                long_windows: 24,
                threshold: 2.0,
            },
        ]
    }
}

/// One alert-state transition.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Snapshot timestamp at which the transition happened.
    pub at_us: u64,
    /// Objective name.
    pub slo: String,
    /// Rule name.
    pub rule: String,
    /// `true` on fire, `false` on resolve.
    pub firing: bool,
    /// Short-window burn rate at the transition.
    pub burn_short: f64,
    /// Long-window burn rate at the transition.
    pub burn_long: f64,
}

impl Alert {
    /// The deterministic log line for this transition.
    pub fn line(&self) -> String {
        format!(
            "@{}us slo={} rule={} {} burn_short={:.2} burn_long={:.2}",
            self.at_us,
            self.slo,
            self.rule,
            if self.firing { "FIRING" } else { "resolved" },
            self.burn_short,
            self.burn_long,
        )
    }

    /// Deterministic JSON with a fixed field order.
    pub fn to_json(&self) -> String {
        let mut o = ObjWriter::new();
        o.u64_field("at_us", self.at_us)
            .str_field("slo", &self.slo)
            .str_field("rule", &self.rule)
            .str_field("state", if self.firing { "firing" } else { "resolved" })
            .raw_field("burn_short", &format!("{:.2}", self.burn_short))
            .raw_field("burn_long", &format!("{:.2}", self.burn_long));
        o.finish()
    }
}

/// The evaluator (see module docs). Feed it cumulative snapshots in time
/// order; read back transitions, the current state table and the log.
#[derive(Debug, Clone)]
pub struct SloEngine {
    defs: Vec<SloDef>,
    rules: Vec<BurnRule>,
    /// `series[def][snapshot]` — cumulative (bad, total) per objective.
    series: Vec<Vec<(u64, u64)>>,
    /// `firing[def * rules.len() + rule]`.
    firing: Vec<bool>,
    /// Last evaluated burn rates, same indexing as `firing`.
    burns: Vec<(f64, f64)>,
    alerts: Vec<Alert>,
    last_at_us: u64,
}

impl SloEngine {
    /// Engine over `defs` with the [`BurnRule::classic`] rule pair.
    pub fn new(defs: Vec<SloDef>) -> Self {
        SloEngine::with_rules(defs, BurnRule::classic())
    }

    /// Engine with explicit rules.
    pub fn with_rules(defs: Vec<SloDef>, rules: Vec<BurnRule>) -> Self {
        let n = defs.len() * rules.len();
        SloEngine {
            series: vec![Vec::new(); defs.len()],
            firing: vec![false; n],
            burns: vec![(0.0, 0.0); n],
            defs,
            rules,
            alerts: Vec::new(),
            last_at_us: 0,
        }
    }

    /// The configured objectives.
    pub fn defs(&self) -> &[SloDef] {
        &self.defs
    }

    /// Burn rate over the last `windows` snapshots of objective `def`:
    /// (bad delta / total delta) / budget. 0 when nothing happened.
    fn window_burn(&self, def: usize, windows: usize) -> f64 {
        let s = &self.series[def];
        let n = s.len();
        if n == 0 {
            return 0.0;
        }
        let cur = s[n - 1];
        // Before enough history exists, the window reaches back to an
        // implicit all-zero origin snapshot.
        let base = if n > windows { s[n - 1 - windows] } else { (0, 0) };
        let bad = cur.0.saturating_sub(base.0);
        let total = cur.1.saturating_sub(base.1);
        if total == 0 {
            return 0.0;
        }
        (bad as f64 / total as f64) / self.defs[def].budget()
    }

    /// Ingest the cumulative snapshot taken at `at_us`, re-evaluate every
    /// rule, and append any state transitions to the alert log. Returns
    /// the number of transitions this snapshot caused.
    pub fn push_snapshot(&mut self, at_us: u64, snap: &MetricsSnapshot) -> usize {
        self.last_at_us = at_us;
        for (d, def) in self.defs.iter().enumerate() {
            let t = def.totals(snap);
            self.series[d].push(t);
        }
        let mut transitions = 0;
        for d in 0..self.defs.len() {
            for (r, rule) in self.rules.iter().enumerate() {
                let burn_short = self.window_burn(d, rule.short_windows);
                let burn_long = self.window_burn(d, rule.long_windows);
                let idx = d * self.rules.len() + r;
                self.burns[idx] = (burn_short, burn_long);
                let now = burn_short >= rule.threshold && burn_long >= rule.threshold;
                if now != self.firing[idx] {
                    self.firing[idx] = now;
                    self.alerts.push(Alert {
                        at_us,
                        slo: self.defs[d].name.clone(),
                        rule: rule.name.clone(),
                        firing: now,
                        burn_short,
                        burn_long,
                    });
                    transitions += 1;
                }
            }
        }
        transitions
    }

    /// Every state transition so far, in evaluation order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Number of resolve transitions recorded so far.
    pub fn resolved_count(&self) -> usize {
        self.alerts.iter().filter(|a| !a.firing).count()
    }

    /// Number of fire transitions recorded so far (an alert that fires,
    /// resolves, and fires again counts twice).
    pub fn fired_count(&self) -> usize {
        self.alerts.iter().filter(|a| a.firing).count()
    }

    /// Number of (slo, rule) pairs currently firing.
    pub fn firing_count(&self) -> usize {
        self.firing.iter().filter(|f| **f).count()
    }

    /// The alert log: one [`Alert::line`] per transition.
    pub fn alert_log(&self) -> String {
        let mut out = String::new();
        for a in &self.alerts {
            out.push_str(&a.line());
            out.push('\n');
        }
        out
    }

    /// Deterministic JSON array of every transition.
    pub fn alert_log_json(&self) -> String {
        array_of(self.alerts.iter().map(|a| a.to_json()))
    }

    /// Current state table: one line per (slo, rule) with the latest burn
    /// rates — the "SLO report" view.
    pub fn report(&self) -> String {
        let mut out = format!(
            "{:<26} {:<6} {:>10} {:>10} {:>9}\n",
            "slo", "rule", "burn_short", "burn_long", "state"
        );
        for (d, def) in self.defs.iter().enumerate() {
            for (r, rule) in self.rules.iter().enumerate() {
                let idx = d * self.rules.len() + r;
                out.push_str(&format!(
                    "{:<26} {:<6} {:>10.2} {:>10.2} {:>9}\n",
                    def.name,
                    rule.name,
                    self.burns[idx].0,
                    self.burns[idx].1,
                    if self.firing[idx] { "FIRING" } else { "ok" },
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    /// One latency objective over a live registry; drive it with `good`
    /// (50us) and `bad` (50_000us) observations against a 1_000us p90
    /// target and a single tight rule.
    fn engine() -> SloEngine {
        SloEngine::with_rules(
            vec![SloDef::latency("req_p90_1ms", "lat_us", 0.90, 1_000)],
            vec![BurnRule {
                name: "fast".to_string(),
                short_windows: 1,
                long_windows: 2,
                threshold: 5.0,
            }],
        )
    }

    #[test]
    fn alert_fires_on_a_latency_spike_and_resolves_after() {
        let m = Metrics::new();
        let mut e = engine();
        // Two healthy windows: 10 good observations each.
        for w in 0..2u64 {
            for _ in 0..10 {
                m.observe_with("lat_us", &[1_000, 10_000], 50);
            }
            assert_eq!(e.push_snapshot(1_000 * (w + 1), &m.snapshot()), 0);
        }
        assert_eq!(e.firing_count(), 0);
        // A spike window: every request blows the target. Bad fraction 1.0
        // against a 0.1 budget → burn 10 ≥ 5 on both windows.
        for _ in 0..10 {
            m.observe_with("lat_us", &[1_000, 10_000], 50_000);
        }
        assert_eq!(e.push_snapshot(3_000, &m.snapshot()), 1);
        assert_eq!(e.firing_count(), 1);
        // Recovery: two good windows flush the long window; resolves.
        for w in 0..2u64 {
            for _ in 0..10 {
                m.observe_with("lat_us", &[1_000, 10_000], 50);
            }
            e.push_snapshot(4_000 + 1_000 * w, &m.snapshot());
        }
        assert_eq!(e.firing_count(), 0);
        let log = e.alert_log();
        assert!(log.contains("@3000us slo=req_p90_1ms rule=fast FIRING burn_short=10.00"));
        assert!(log.contains("resolved"));
        assert_eq!(e.alerts().len(), 2, "one fire + one resolve");
    }

    #[test]
    fn error_rate_objective_counts_counters() {
        let m = Metrics::new();
        let mut e = SloEngine::with_rules(
            vec![SloDef::error_rate("err_budget", "errs", "reqs", 0.05)],
            vec![BurnRule {
                name: "fast".to_string(),
                short_windows: 1,
                long_windows: 1,
                threshold: 4.0,
            }],
        );
        m.counter("reqs", 10);
        e.push_snapshot(1, &m.snapshot());
        assert_eq!(e.firing_count(), 0, "no errors, no burn");
        m.counter("reqs", 10);
        m.counter("errs", 5); // window bad fraction 0.5 / budget 0.05 = 10×
        e.push_snapshot(2, &m.snapshot());
        assert_eq!(e.firing_count(), 1);
    }

    #[test]
    fn missing_metrics_burn_nothing() {
        let m = Metrics::new();
        let mut e = engine();
        assert_eq!(e.push_snapshot(1, &m.snapshot()), 0);
        assert_eq!(e.firing_count(), 0);
        assert_eq!(e.alert_log(), "");
        assert_eq!(e.alert_log_json(), "[]");
    }

    #[test]
    fn log_and_report_are_byte_deterministic() {
        let run = || {
            let m = Metrics::new();
            let mut e = engine();
            for _ in 0..10 {
                m.observe_with("lat_us", &[1_000, 10_000], 50_000);
            }
            e.push_snapshot(1_000, &m.snapshot());
            (e.alert_log(), e.alert_log_json(), e.report())
        };
        let (log_a, json_a, rep_a) = run();
        assert_eq!((log_a.clone(), json_a.clone(), rep_a.clone()), run());
        assert!(rep_a.contains("FIRING"));
        assert!(json_a.contains("\"state\":\"firing\""));
    }

    #[test]
    fn burn_exactly_at_threshold_does_not_flap() {
        // A burn rate oscillating *exactly at* the threshold across
        // consecutive snapshots is one sustained incident: one fire when
        // it reaches the threshold, one resolve when it recovers — never
        // a fire/resolve pair per snapshot. Budget 0.1, threshold 5.0 →
        // a steady 50% bad fraction burns at exactly 5.00.
        let m = Metrics::new();
        let mut e = engine();
        for w in 0..6u64 {
            for _ in 0..5 {
                m.observe_with("lat_us", &[1_000, 10_000], 50);
            }
            for _ in 0..5 {
                m.observe_with("lat_us", &[1_000, 10_000], 50_000);
            }
            e.push_snapshot(1_000 * (w + 1), &m.snapshot());
            assert_eq!(
                e.fired_count(),
                1,
                "snapshot {w}: at-threshold burn must not re-fire"
            );
            assert_eq!(e.resolved_count(), 0);
        }
        assert_eq!(e.firing_count(), 1, "still one sustained incident");
        // Recovery: all-good windows clear both burn windows → one resolve.
        for w in 0..3u64 {
            for _ in 0..10 {
                m.observe_with("lat_us", &[1_000, 10_000], 50);
            }
            e.push_snapshot(7_000 + 1_000 * w, &m.snapshot());
        }
        assert_eq!(e.fired_count(), 1, "exactly one fire for the whole episode");
        assert_eq!(e.resolved_count(), 1, "exactly one resolve");
        assert_eq!(e.firing_count(), 0);
        assert_eq!(e.alerts().len(), 2, "one fire/resolve pair, not one per snapshot");
    }

    #[test]
    fn burn_windows_reach_back_to_a_zero_origin() {
        // First-ever snapshot already carries burn (delta against zero).
        let m = Metrics::new();
        let mut e = engine();
        for _ in 0..10 {
            m.observe_with("lat_us", &[1_000, 10_000], 50_000);
        }
        assert_eq!(e.push_snapshot(1, &m.snapshot()), 1, "fires on the first window");
    }
}
