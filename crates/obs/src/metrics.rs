//! The metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Modeled on the serving metrics a vLLM-style inference server exports
//! (request latency, queue wait, batch occupancy, cache hit rate), but
//! fully deterministic: histograms use *fixed* bucket bounds chosen at
//! first touch, every map is a `BTreeMap`, and [`Metrics::snapshot`]
//! serializes to byte-stable JSON with sorted keys.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::json::{array_of, write_str, ObjWriter};

/// Default histogram bounds for simulated-latency observations, µs.
/// (Upper bounds; one implicit overflow bucket follows the last bound.)
pub const LATENCY_BUCKETS_US: &[u64] = &[
    100,
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
];

/// Default bounds for small-integer observations (batch occupancy, queue
/// depth, candidate counts).
pub const COUNT_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 1024];

/// One exemplar: the largest value a bucket has seen, linked to the trace
/// that produced it — the bridge from an aggregate (p99 bucket) back to a
/// concrete trace tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The observed value.
    pub value: u64,
    /// Trace id of the span active when the value was recorded.
    pub trace: u64,
}

/// A fixed-bucket histogram with running count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets; the last catches values above every bound.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// Per-bucket exemplar (same length as `counts`); kept out of
    /// [`Histogram::to_json`] so pinned metric bytes are unchanged.
    exemplars: Vec<Option<Exemplar>>,
}

impl Histogram {
    /// Histogram over ascending upper `bounds` (plus an overflow bucket).
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            exemplars: vec![None; bounds.len() + 1],
        }
    }

    /// Record one value.
    pub fn observe(&mut self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record one value and remember it as the bucket's exemplar if it is
    /// the largest seen there (ties keep the first, so replays agree).
    pub fn observe_exemplar(&mut self, v: u64, trace: u64) {
        self.observe(v);
        let idx = self.bounds.partition_point(|&b| b < v);
        let slot = &mut self.exemplars[idx];
        if slot.is_none_or(|e| v > e.value) {
            *slot = Some(Exemplar { value: v, trace });
        }
    }

    /// Per-bucket exemplars (`bounds.len() + 1` entries, last is overflow).
    pub fn exemplars(&self) -> &[Option<Exemplar>] {
        &self.exemplars
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last is overflow).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations provably `<= threshold` at bucket resolution: the sum
    /// of counts in buckets whose upper bound is within the threshold.
    /// This is the "good event" count an SLO latency objective needs.
    pub fn count_le(&self, threshold: u64) -> u64 {
        self.bounds
            .iter()
            .zip(&self.counts)
            .filter(|(b, _)| **b <= threshold)
            .map(|(_, c)| *c)
            .sum()
    }

    /// Upper bound of the bucket containing quantile `q` (0..=1), clamped
    /// to the recorded max so a value sitting exactly on a bucket edge
    /// never reports past the largest observation; the recorded max for
    /// the overflow bucket, 0 when empty. Deterministic
    /// (bucket-resolution) rather than exact.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i < self.bounds.len() {
                    self.bounds[i].min(self.max)
                } else {
                    self.max
                };
            }
        }
        self.max
    }

    fn to_json(&self) -> String {
        let mut o = ObjWriter::new();
        o.raw_field(
            "bounds",
            &array_of(self.bounds.iter().map(|b| b.to_string())),
        )
        .raw_field(
            "counts",
            &array_of(self.counts.iter().map(|c| c.to_string())),
        )
        .u64_field("count", self.count)
        .u64_field("sum", self.sum)
        .u64_field("min", if self.count == 0 { 0 } else { self.min })
        .u64_field("max", self.max)
        .f64_field("mean", self.mean())
        .u64_field("p50", self.quantile(0.50))
        .u64_field("p90", self.quantile(0.90))
        .u64_field("p99", self.quantile(0.99));
        o.finish()
    }
}

/// An immutable copy of one histogram (see [`Metrics::snapshot`]).
pub type HistogramSnapshot = Histogram;

/// The registry (see module docs). All methods take `&self`; interior
/// mutexes keep it shareable behind an `Arc`.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, i64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Add `delta` to counter `name` (created at 0 on first touch).
    pub fn counter(&self, name: &str, delta: u64) {
        let mut m = self.counters.lock().expect("counters lock");
        match m.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                m.insert(name.to_string(), delta);
            }
        }
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .expect("counters lock")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Set gauge `name` to `value`.
    pub fn gauge(&self, name: &str, value: i64) {
        self.gauges
            .lock()
            .expect("gauges lock")
            .insert(name.to_string(), value);
    }

    /// Record `v` into histogram `name` with the default latency buckets.
    pub fn observe(&self, name: &str, v: u64) {
        self.observe_with(name, LATENCY_BUCKETS_US, v);
    }

    /// Record `v` into histogram `name`; `bounds` apply on first touch
    /// (later calls reuse the existing buckets, whatever they were).
    pub fn observe_with(&self, name: &str, bounds: &[u64], v: u64) {
        let mut m = self.histograms.lock().expect("histograms lock");
        match m.get_mut(name) {
            Some(h) => h.observe(v),
            None => {
                let mut h = Histogram::new(bounds);
                h.observe(v);
                m.insert(name.to_string(), h);
            }
        }
    }

    /// Like [`Metrics::observe_with`], additionally linking the value to
    /// `trace` as the landing bucket's exemplar.
    pub fn observe_exemplar(&self, name: &str, bounds: &[u64], v: u64, trace: u64) {
        let mut m = self.histograms.lock().expect("histograms lock");
        match m.get_mut(name) {
            Some(h) => h.observe_exemplar(v, trace),
            None => {
                let mut h = Histogram::new(bounds);
                h.observe_exemplar(v, trace);
                m.insert(name.to_string(), h);
            }
        }
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.lock().expect("counters lock").clone(),
            gauges: self.gauges.lock().expect("gauges lock").clone(),
            histograms: self.histograms.lock().expect("histograms lock").clone(),
        }
    }
}

/// A point-in-time copy of the registry; serializes deterministically
/// (sorted names, fixed field order).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Deterministic JSON: `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut counters = String::from("{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                counters.push(',');
            }
            write_str(&mut counters, k);
            counters.push(':');
            counters.push_str(&v.to_string());
        }
        counters.push('}');
        let mut gauges = String::from("{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                gauges.push(',');
            }
            write_str(&mut gauges, k);
            gauges.push(':');
            gauges.push_str(&v.to_string());
        }
        gauges.push('}');
        let mut hists = String::from("{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                hists.push(',');
            }
            write_str(&mut hists, k);
            hists.push(':');
            hists.push_str(&h.to_json());
        }
        hists.push('}');
        let mut o = ObjWriter::new();
        o.raw_field("counters", &counters)
            .raw_field("gauges", &gauges)
            .raw_field("histograms", &hists);
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let m = Metrics::new();
        m.counter("a", 1);
        m.counter("a", 2);
        m.counter("b", 5);
        assert_eq!(m.counter_value("a"), 3);
        assert_eq!(m.counter_value("b"), 5);
        assert_eq!(m.counter_value("ghost"), 0);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        for v in [5, 10, 11, 99, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5 + 10 + 11 + 99 + 5000);
        // Buckets: <=10 gets {5, 10}; <=100 gets {11, 99}; <=1000 none; overflow {5000}.
        assert_eq!(h.counts, vec![2, 2, 0, 1]);
        assert_eq!(h.min, 5);
        assert_eq!(h.max, 5000);
        assert_eq!(h.quantile(0.5), 100, "p50 lands in the <=100 bucket");
        assert_eq!(h.quantile(1.0), 5000, "p100 reports the true max");
    }

    #[test]
    fn empty_histogram_is_harmless() {
        let h = Histogram::new(LATENCY_BUCKETS_US);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.to_json().contains("\"count\":0"));
    }

    #[test]
    fn snapshot_json_is_sorted_and_stable() {
        let m = Metrics::new();
        m.counter("z.last", 1);
        m.counter("a.first", 2);
        m.gauge("g", -3);
        m.observe_with("h", &[1, 2], 2);
        let a = m.snapshot().to_json();
        let b = m.snapshot().to_json();
        assert_eq!(a, b);
        let za = a.find("z.last").unwrap();
        let aa = a.find("a.first").unwrap();
        assert!(aa < za, "keys must serialize sorted");
        assert!(a.contains("\"gauges\":{\"g\":-3}"));
        assert!(a.contains("\"bounds\":[1,2]"));
    }

    #[test]
    fn count_le_sums_buckets_within_the_threshold() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        for v in [5, 10, 11, 99, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count_le(10), 2, "{{5,10}} land in the <=10 bucket");
        assert_eq!(h.count_le(100), 4);
        assert_eq!(h.count_le(1000), 4, "nothing in (100,1000]");
        assert_eq!(h.count_le(9), 0, "threshold below the first bound proves nothing");
        assert_eq!(h.count() - h.count_le(100), 1, "one observation over a 100us target");
    }

    #[test]
    fn histogram_json_pins_quantile_bytes() {
        let mut h = Histogram::new(&[10, 100]);
        for v in [5, 20, 20, 200] {
            h.observe(v);
        }
        assert_eq!(
            h.to_json(),
            "{\"bounds\":[10,100],\"counts\":[1,2,1],\"count\":4,\"sum\":245,\
             \"min\":5,\"max\":200,\"mean\":61.25,\"p50\":100,\"p90\":200,\"p99\":200}"
        );
    }

    #[test]
    fn empty_histogram_json_quantiles_are_zero() {
        let h = Histogram::new(&[10]);
        assert_eq!(
            h.to_json(),
            "{\"bounds\":[10],\"counts\":[0,0],\"count\":0,\"sum\":0,\
             \"min\":0,\"max\":0,\"mean\":0.0,\"p50\":0,\"p90\":0,\"p99\":0}"
        );
    }

    #[test]
    fn quantile_at_bucket_boundary_never_exceeds_observed_max() {
        // Regression: every value sits exactly on the first bucket's upper
        // edge (10). The rank bucket's bound is 10, but before the clamp a
        // distribution maxing out *below* a bound would overshoot — e.g.
        // observing only 7s in bounds [10, 100] reported p99 = 10.
        let mut h = Histogram::new(&[10, 100]);
        for _ in 0..4 {
            h.observe(7);
        }
        assert_eq!(h.max(), 7);
        assert_eq!(h.quantile(0.50), 7, "p50 clamps to the observed max");
        assert_eq!(h.quantile(0.99), 7, "p99 clamps to the observed max");
        // Pin the serialized bytes so the clamp semantics can't silently drift.
        assert_eq!(
            h.to_json(),
            "{\"bounds\":[10,100],\"counts\":[4,0,0],\"count\":4,\"sum\":28,\
             \"min\":7,\"max\":7,\"mean\":7.0,\"p50\":7,\"p90\":7,\"p99\":7}"
        );
        // A value exactly equal to the edge still reports the edge.
        let mut g = Histogram::new(&[10, 100]);
        g.observe(10);
        assert_eq!(g.quantile(0.99), 10, "edge value reports the edge, not the next bucket");
    }

    #[test]
    fn exemplars_keep_the_largest_value_per_bucket() {
        let mut h = Histogram::new(&[10, 100]);
        h.observe_exemplar(5, 111);
        h.observe_exemplar(9, 222);
        h.observe_exemplar(9, 333); // tie: first stays, replays agree
        h.observe_exemplar(5000, 444);
        let ex = h.exemplars();
        assert_eq!(ex.len(), 3);
        assert_eq!(ex[0], Some(Exemplar { value: 9, trace: 222 }));
        assert_eq!(ex[1], None);
        assert_eq!(ex[2], Some(Exemplar { value: 5000, trace: 444 }));
        assert_eq!(h.count(), 4, "exemplar observations still count");
    }

    #[test]
    fn registry_exemplars_roundtrip_through_snapshot() {
        let m = Metrics::new();
        m.observe_exemplar("lat", &[10, 100], 42, 0xabc);
        m.observe_with("lat", &[1], 7); // plain observe on the same histogram
        let snap = m.snapshot();
        let h = &snap.histograms["lat"];
        assert_eq!(h.exemplars()[1], Some(Exemplar { value: 42, trace: 0xabc }));
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn observe_with_keeps_first_bounds() {
        let m = Metrics::new();
        m.observe_with("h", &[10], 3);
        m.observe_with("h", &[99999], 20); // bounds ignored after first touch
        let snap = m.snapshot();
        let h = &snap.histograms["h"];
        assert_eq!(h.counts, vec![1, 1]);
    }
}
