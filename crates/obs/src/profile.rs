//! Deterministic flamegraph profiler over finished span trees.
//!
//! [`Profile::from_spans`] folds a tracer's finished [`SpanRecord`] list
//! into Brendan-Gregg-style folded stacks (`root;awel.op;smmf.chat 1234`,
//! one line per unique stack, value = accumulated *self* time), aggregates
//! self/total time per span name, and extracts the critical path of a
//! trace — the chain of maximal-duration children from the root down —
//! with percentage attribution. Everything is a pure function of the
//! records, so the outputs inherit the tracer's byte-determinism.
//!
//! Clock domains: spans carry whatever clock their recorder used
//! (simulated µs in SMMF/the batch engine, logical ticks elsewhere), so a
//! cross-crate trace can mix units. Self time saturates at zero when a
//! child's clock outruns its parent's, and critical-path percentages are
//! computed hop-to-parent and capped at 100 — deterministic either way.

use std::collections::BTreeMap;

use crate::json::{array_of, ObjWriter};
use crate::trace::{SpanId, SpanRecord};

/// Aggregated timing for one span name across a profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotSpot {
    /// Span name (e.g. `smmf.attempt`).
    pub name: String,
    /// Number of finished spans with this name.
    pub count: u64,
    /// Sum of span durations, children included.
    pub total_us: u64,
    /// Sum of self time: duration minus the durations of direct children
    /// (saturating — overlapping parallel children can exceed the parent).
    pub self_us: u64,
}

/// One hop on a critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalHop {
    /// Span name.
    pub name: String,
    /// Span id.
    pub id: SpanId,
    /// Span start timestamp (its recorder's clock).
    pub start_us: u64,
    /// Span end timestamp.
    pub end_us: u64,
    /// Span duration.
    pub duration_us: u64,
    /// Share of the parent hop's duration, percent, capped at 100
    /// (100 for the root).
    pub pct_of_parent: f64,
}

/// The critical path of one trace: from the root, repeatedly descend into
/// the longest-duration child (ties: earliest start, then lowest id).
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Root span id of the trace.
    pub trace: SpanId,
    /// Hops from the root down to the deepest span on the path.
    pub hops: Vec<CriticalHop>,
}

impl CriticalPath {
    /// Text rendering, one hop per line with indentation and attribution.
    pub fn render(&self) -> String {
        let mut out = format!("critical path · trace {:016x}\n", self.trace);
        for (depth, h) in self.hops.iter().enumerate() {
            out.push_str(&format!(
                "{}{} [{}..{}us] {}us ({:.1}% of parent)\n",
                "  ".repeat(depth),
                h.name,
                h.start_us,
                h.end_us,
                h.duration_us,
                h.pct_of_parent,
            ));
        }
        out
    }
}

/// A folded profile over a set of finished spans (see module docs).
#[derive(Debug, Clone)]
pub struct Profile {
    stacks: BTreeMap<String, u64>,
    hotspots: Vec<HotSpot>,
    spans: Vec<SpanRecord>,
}

impl Profile {
    /// Fold `spans` (any tracer dump; multiple traces welcome) into a
    /// profile. Orphans (parent not in the set) are treated as roots.
    pub fn from_spans(spans: &[SpanRecord]) -> Profile {
        let mut sorted: Vec<SpanRecord> = spans.to_vec();
        sorted.sort_by_key(|s| (s.trace, s.start_us, s.id));

        let present: BTreeMap<SpanId, usize> =
            sorted.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        let mut children: BTreeMap<SpanId, Vec<usize>> = BTreeMap::new();
        let mut roots: Vec<usize> = Vec::new();
        for (i, s) in sorted.iter().enumerate() {
            match s.parent.filter(|p| present.contains_key(p)) {
                Some(p) => children.entry(p).or_default().push(i),
                None => roots.push(i),
            }
        }

        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        let mut agg: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
        // Explicit stack: (index, folded path including this span).
        let mut todo: Vec<(usize, String)> = roots
            .iter()
            .rev()
            .map(|&i| (i, sorted[i].name.clone()))
            .collect();
        while let Some((i, path)) = todo.pop() {
            let s = &sorted[i];
            let kids = children.get(&s.id);
            let child_total: u64 = kids
                .map(|c| c.iter().map(|&j| sorted[j].duration_us()).sum())
                .unwrap_or(0);
            let self_us = s.duration_us().saturating_sub(child_total);
            *stacks.entry(path.clone()).or_insert(0) += self_us;
            let e = agg.entry(s.name.as_str()).or_insert((0, 0, 0));
            e.0 += 1;
            e.1 += s.duration_us();
            e.2 += self_us;
            if let Some(kids) = kids {
                for &j in kids.iter().rev() {
                    todo.push((j, format!("{path};{}", sorted[j].name)));
                }
            }
        }

        let mut hotspots: Vec<HotSpot> = agg
            .into_iter()
            .map(|(name, (count, total_us, self_us))| HotSpot {
                name: name.to_string(),
                count,
                total_us,
                self_us,
            })
            .collect();
        hotspots.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.name.cmp(&b.name)));

        Profile {
            stacks,
            hotspots,
            spans: sorted,
        }
    }

    /// Folded flamegraph text: one `stack;path self_us` line per unique
    /// stack, sorted by stack string — feedable to any flamegraph tool.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (stack, v) in &self.stacks {
            out.push_str(&format!("{stack} {v}\n"));
        }
        out
    }

    /// Per-span-name aggregates, sorted by self time descending (ties:
    /// name ascending).
    pub fn hotspots(&self) -> &[HotSpot] {
        &self.hotspots
    }

    /// Fixed-width text table of [`Profile::hotspots`].
    pub fn hotspot_table(&self) -> String {
        let mut out = format!(
            "{:<28} {:>7} {:>12} {:>12}\n",
            "span", "count", "total_us", "self_us"
        );
        for h in &self.hotspots {
            out.push_str(&format!(
                "{:<28} {:>7} {:>12} {:>12}\n",
                h.name, h.count, h.total_us, h.self_us
            ));
        }
        out
    }

    /// Critical path of the trace rooted at span id `trace` (`None` if the
    /// root is not in this profile).
    pub fn critical_path(&self, trace: SpanId) -> Option<CriticalPath> {
        let mut cur = self.spans.iter().find(|s| s.id == trace)?;
        let mut hops = vec![CriticalHop {
            name: cur.name.clone(),
            id: cur.id,
            start_us: cur.start_us,
            end_us: cur.end_us,
            duration_us: cur.duration_us(),
            pct_of_parent: 100.0,
        }];
        loop {
            let next = self
                .spans
                .iter()
                .filter(|s| s.parent == Some(cur.id))
                .max_by(|a, b| {
                    a.duration_us()
                        .cmp(&b.duration_us())
                        .then(b.start_us.cmp(&a.start_us))
                        .then(b.id.cmp(&a.id))
                });
            let Some(next) = next else { break };
            let parent_us = cur.duration_us();
            let pct = if parent_us == 0 {
                100.0
            } else {
                (100.0 * next.duration_us() as f64 / parent_us as f64).min(100.0)
            };
            hops.push(CriticalHop {
                name: next.name.clone(),
                id: next.id,
                start_us: next.start_us,
                end_us: next.end_us,
                duration_us: next.duration_us(),
                pct_of_parent: pct,
            });
            cur = next;
        }
        Some(CriticalPath { trace, hops })
    }

    /// Deterministic JSON: `{"stacks":[...],"hotspots":[...]}`.
    pub fn to_json(&self) -> String {
        let stacks = array_of(self.stacks.iter().map(|(stack, v)| {
            let mut o = ObjWriter::new();
            o.str_field("stack", stack).u64_field("self_us", *v);
            o.finish()
        }));
        let hotspots = array_of(self.hotspots.iter().map(|h| {
            let mut o = ObjWriter::new();
            o.str_field("name", &h.name)
                .u64_field("count", h.count)
                .u64_field("total_us", h.total_us)
                .u64_field("self_us", h.self_us);
            o.finish()
        }));
        let mut o = ObjWriter::new();
        o.raw_field("stacks", &stacks).raw_field("hotspots", &hotspots);
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Obs, ObsConfig};

    /// root [0..100] with a [0..30] (child a1 [0..10]) and b [30..90].
    fn sample() -> (Obs, SpanId) {
        let obs = Obs::new(ObsConfig::enabled(9));
        let root = obs.span("root", 0);
        let a = root.child("a", 0);
        let a1 = a.child("a1", 0);
        a1.end(10);
        a.end(30);
        let b = root.child("b", 30);
        b.end(90);
        root.end(100);
        (obs, root.id().unwrap())
    }

    #[test]
    fn folded_stacks_accumulate_self_time() {
        let (obs, _) = sample();
        let p = Profile::from_spans(&obs.finished_spans());
        // root: 100 - (30 + 60) = 10; a: 30 - 10 = 20; a1: 10; b: 60.
        assert_eq!(p.folded(), "root 10\nroot;a 20\nroot;a;a1 10\nroot;b 60\n");
    }

    #[test]
    fn self_time_saturates_when_children_overlap() {
        let obs = Obs::new(ObsConfig::enabled(1));
        let root = obs.span("r", 0);
        let a = root.child("a", 0);
        a.end(80);
        let b = root.child("b", 0); // overlaps a: 80 + 80 > 100
        b.end(80);
        root.end(100);
        let p = Profile::from_spans(&obs.finished_spans());
        assert!(p.folded().contains("r 0\n"), "self time saturates at zero");
    }

    #[test]
    fn hotspots_sort_by_self_time_then_name() {
        let (obs, _) = sample();
        let p = Profile::from_spans(&obs.finished_spans());
        let names: Vec<&str> = p.hotspots().iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, ["b", "a", "a1", "root"]);
        let b = &p.hotspots()[0];
        assert_eq!((b.count, b.total_us, b.self_us), (1, 60, 60));
        assert!(p.hotspot_table().starts_with("span"));
    }

    #[test]
    fn critical_path_descends_longest_children() {
        let (obs, root) = sample();
        let p = Profile::from_spans(&obs.finished_spans());
        let cp = p.critical_path(root).unwrap();
        let names: Vec<&str> = cp.hops.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, ["root", "b"], "b (60us) beats a (30us)");
        assert_eq!(cp.hops[1].pct_of_parent, 60.0);
        assert!(cp.render().starts_with("critical path"));
        assert!(p.critical_path(0xdead).is_none());
    }

    #[test]
    fn critical_path_ties_break_on_start_then_id() {
        let obs = Obs::new(ObsConfig::enabled(1));
        let root = obs.span("r", 0);
        let late = root.child("late", 10);
        late.end(40);
        let early = root.child("early", 0);
        early.end(30);
        root.end(50);
        let p = Profile::from_spans(&obs.finished_spans());
        let cp = p.critical_path(root.id().unwrap()).unwrap();
        assert_eq!(cp.hops[1].name, "early", "equal 30us durations: earliest start wins");
    }

    #[test]
    fn profile_outputs_are_deterministic() {
        let run = || {
            let (obs, root) = sample();
            let p = Profile::from_spans(&obs.finished_spans());
            (p.folded(), p.to_json(), p.critical_path(root).unwrap().render())
        };
        assert_eq!(run(), run());
    }
}
