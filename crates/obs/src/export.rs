//! The SQL-queryable telemetry store.
//!
//! Turns an aggregated [`Telemetry`] + [`UsageLedger`] into plain SQL —
//! `CREATE TABLE` + `INSERT` statements over four tables — so trace
//! analytics ("top 5 slowest `sql.exec` spans per tenant") run as
//! ordinary `SELECT`s through the repository's own `dbgpt-sqlengine`,
//! and can even be asked in natural language via Chat2Data. This module
//! only *emits* statements (obs cannot depend on sqlengine — sqlengine
//! already traces through obs); the cluster layer feeds them to an
//! `Engine` over paged storage.
//!
//! Tables:
//!
//! - `obs_spans(trace, span, parent, node, tenant, name, start_us,
//!   end_us, duration_us, outcome, keep_reason)` — the sampled spans.
//!   Ids are 16-char lowercase hex, so text ordering == numeric ordering.
//! - `obs_metrics(node, name, kind, value, count, sum, p50, p90, p99)` —
//!   every counter/gauge/histogram from every node's snapshot.
//! - `obs_exemplars(node, metric, bucket_le, value, trace)` — histogram
//!   bucket → representative trace links (`bucket_le = -1` is overflow).
//! - `obs_tenant_usage(tenant, requests, ok, failed, throttled,
//!   prompt_tokens, completion_tokens, rows_written, latency_sum_us,
//!   latency_max_us)` — the per-tenant accounting rollup.

use crate::collect::{Telemetry, UsageLedger};
use crate::trace::TraceContext;

/// Quote a string as a SQL literal, doubling embedded quotes.
fn lit(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('\'');
    for c in s.chars() {
        if c == '\'' {
            out.push('\'');
        }
        out.push(c);
    }
    out.push('\'');
    out
}

/// `CREATE TABLE` statements for the four telemetry tables.
pub fn schema_sql() -> Vec<String> {
    vec![
        "CREATE TABLE obs_spans (trace TEXT, span TEXT, parent TEXT, node TEXT, \
         tenant TEXT, name TEXT, start_us INT, end_us INT, duration_us INT, \
         outcome TEXT, keep_reason TEXT)"
            .to_string(),
        "CREATE TABLE obs_metrics (node TEXT, name TEXT, kind TEXT, value INT, \
         count INT, sum INT, p50 INT, p90 INT, p99 INT)"
            .to_string(),
        "CREATE TABLE obs_exemplars (node TEXT, metric TEXT, bucket_le INT, \
         value INT, trace TEXT)"
            .to_string(),
        "CREATE TABLE obs_tenant_usage (tenant TEXT, requests INT, ok INT, \
         failed INT, throttled INT, prompt_tokens INT, completion_tokens INT, \
         rows_written INT, latency_sum_us INT, latency_max_us INT)"
            .to_string(),
    ]
}

/// `INSERT` statements materializing `t` + `usage` (deterministic order:
/// spans as sorted in `t`, metrics per node then name, usage per tenant).
pub fn insert_sql(t: &Telemetry, usage: &UsageLedger) -> Vec<String> {
    let mut out = Vec::new();
    // Kept spans, with their trace's keep reason denormalized on.
    let mut reason_of = std::collections::BTreeMap::new();
    for s in &t.summaries {
        if let Some(r) = s.kept {
            reason_of.insert(s.trace, r.as_str());
        }
    }
    for ts in &t.spans {
        let s = &ts.span;
        out.push(format!(
            "INSERT INTO obs_spans VALUES ({}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {})",
            lit(&TraceContext::hex(s.trace)),
            lit(&TraceContext::hex(s.id)),
            lit(&s.parent.map(TraceContext::hex).unwrap_or_default()),
            lit(&ts.node),
            lit(&ts.tenant),
            lit(&s.name),
            s.start_us,
            s.end_us,
            s.duration_us(),
            lit(s.attr("outcome").unwrap_or("")),
            lit(reason_of.get(&s.trace).copied().unwrap_or("")),
        ));
    }
    // Metric snapshots: counters, gauges, histograms per node.
    for (node, snap) in &t.metrics {
        for (name, v) in &snap.counters {
            out.push(format!(
                "INSERT INTO obs_metrics VALUES ({}, {}, 'counter', {v}, 0, 0, 0, 0, 0)",
                lit(node),
                lit(name),
            ));
        }
        for (name, v) in &snap.gauges {
            out.push(format!(
                "INSERT INTO obs_metrics VALUES ({}, {}, 'gauge', {v}, 0, 0, 0, 0, 0)",
                lit(node),
                lit(name),
            ));
        }
        for (name, h) in &snap.histograms {
            out.push(format!(
                "INSERT INTO obs_metrics VALUES ({}, {}, 'histogram', 0, {}, {}, {}, {}, {})",
                lit(node),
                lit(name),
                h.count(),
                h.sum(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            ));
            for (i, ex) in h.exemplars().iter().enumerate() {
                if let Some(e) = ex {
                    let le = h
                        .bounds()
                        .get(i)
                        .map(|b| *b as i64)
                        .unwrap_or(-1); // overflow bucket
                    out.push(format!(
                        "INSERT INTO obs_exemplars VALUES ({}, {}, {le}, {}, {})",
                        lit(node),
                        lit(name),
                        e.value,
                        lit(&TraceContext::hex(e.trace)),
                    ));
                }
            }
        }
    }
    // Per-tenant usage accounting.
    for (tenant, u) in usage.iter() {
        out.push(format!(
            "INSERT INTO obs_tenant_usage VALUES ({}, {}, {}, {}, {}, {}, {}, {}, {}, {})",
            lit(tenant),
            u.requests,
            u.ok,
            u.failed,
            u.throttled,
            u.prompt_tokens,
            u.completion_tokens,
            u.rows_written,
            u.latency_sum_us,
            u.latency_max_us,
        ));
    }
    out
}

/// Schema + inserts in one batch, ready to feed an engine statement by
/// statement.
pub fn export_sql(t: &Telemetry, usage: &UsageLedger) -> Vec<String> {
    let mut out = schema_sql();
    out.extend(insert_sql(t, usage));
    out
}

/// The canonical "top `k` slowest `name` spans for `tenant`" query —
/// ordered exactly like
/// [`Telemetry::slowest_spans_per_tenant`], so the SQL result and the
/// in-memory aggregator can be compared row by row.
pub fn slowest_spans_query(name: &str, tenant: &str, k: usize) -> String {
    format!(
        "SELECT duration_us, trace, span FROM obs_spans \
         WHERE name = {} AND tenant = {} \
         ORDER BY duration_us DESC, trace, span LIMIT {k}",
        lit(name),
        lit(tenant),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{Collector, SamplePolicy};
    use crate::trace::{Obs, ObsConfig};

    fn sample_telemetry() -> (Telemetry, UsageLedger) {
        let gw = Obs::new(ObsConfig::enabled(5));
        let root = gw.span("gateway.request", 0);
        root.attr("tenant", "tenant-000");
        root.attr("outcome", "ok");
        let child = root.child("smmf.chat", 10);
        child.end(40);
        root.end(50);
        gw.observe_exemplar("cluster.latency_us", &[100, 1000], 50, root.trace_id().unwrap());
        gw.counter("cluster.requests", 1);
        let mut c = Collector::new();
        c.add_obs("gateway", &gw);
        let t = c.aggregate(&SamplePolicy::keep_all(), &[]);
        let mut usage = UsageLedger::new();
        usage.record_ok("tenant-000", 12, 34, 1, 50);
        (t, usage)
    }

    #[test]
    fn export_emits_all_four_tables() {
        let (t, usage) = sample_telemetry();
        let stmts = export_sql(&t, &usage);
        assert!(stmts[0].starts_with("CREATE TABLE obs_spans"));
        assert_eq!(stmts.iter().filter(|s| s.starts_with("CREATE")).count(), 4);
        assert_eq!(
            stmts.iter().filter(|s| s.contains("INTO obs_spans")).count(),
            2,
            "root + child"
        );
        assert_eq!(
            stmts.iter().filter(|s| s.contains("INTO obs_exemplars")).count(),
            1
        );
        assert_eq!(
            stmts.iter().filter(|s| s.contains("INTO obs_tenant_usage")).count(),
            1
        );
        assert!(stmts.iter().any(|s| s.contains("'counter', 1")));
    }

    #[test]
    fn export_is_deterministic() {
        let run = || {
            let (t, usage) = sample_telemetry();
            export_sql(&t, &usage).join(";\n")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn literals_escape_quotes() {
        assert_eq!(lit("it's"), "'it''s'");
        assert_eq!(lit(""), "''");
    }

    #[test]
    fn slowest_query_shape() {
        let q = slowest_spans_query("sql.exec", "tenant-001", 5);
        assert!(q.contains("WHERE name = 'sql.exec' AND tenant = 'tenant-001'"));
        assert!(q.ends_with("ORDER BY duration_us DESC, trace, span LIMIT 5"));
    }
}
