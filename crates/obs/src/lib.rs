#![warn(missing_docs)]

//! # dbgpt-obs — deterministic tracing + metrics for `db-gpt-rs`
//!
//! The paper's SMMF promises "a unified management perspective …
//! monitoring" (§2.3). This crate is that perspective: a dependency-light
//! observability substrate the serving path (ApiServer → resilience →
//! BatchEngine → prefix cache → RAG retrieval) threads through, in the
//! shape of Dapper-style request traces plus vLLM-style serving metrics.
//!
//! Two properties distinguish it from a wall-clock tracer:
//!
//! - **Deterministic.** Spans are timestamped by the caller — in the
//!   repository's simulated microseconds where a simulated clock exists
//!   (SMMF, the batch engine), and by a logical tick counter where it does
//!   not (RAG retrieval). Span ids come from a seeded counter, never a
//!   wall clock or RNG, so two identical runs produce **byte-identical
//!   trace dumps** and metric snapshots.
//! - **Free when off.** [`Obs::disabled`] carries no allocation — every
//!   recording call is a branch on an `Option` that is `None` — and the
//!   instrumented hot paths are property-tested to be byte-for-byte
//!   identical to the pre-instrumentation code.
//!
//! ## Shape
//!
//! - [`ObsConfig`] — the on/off + seed switch components accept.
//! - [`Obs`] — a cheaply cloneable handle owning one [`Tracer`] and one
//!   [`Metrics`] registry (or nothing, when disabled).
//! - [`Span`] — a handle for one unit of work: nested children, key-value
//!   attributes, point-in-time events, explicit `end(at_us)`.
//! - [`Metrics`] — named counters, gauges and fixed-bucket histograms
//!   with a deterministic-JSON [`Metrics::snapshot`].
//! - [`render`] — a text renderer that prints a trace tree for any
//!   request, the debugging view for "why was this request hedged /
//!   retried / batched / degraded?", plus a metrics table with
//!   p50/p90/p99 quantiles.
//! - [`Profile`] — a deterministic flamegraph profiler: folded stacks,
//!   per-name self/total-time hotspots, critical-path extraction.
//! - [`SloEngine`] — declarative latency/error objectives evaluated with
//!   multi-window burn-rate rules over metrics snapshots, emitting a
//!   byte-reproducible alert log.
//! - [`TraceContext`] + [`collect`] + [`export`] — the cluster-wide
//!   pipeline: wire-portable trace propagation, per-node dumps joined by
//!   a deterministic aggregator with tail-based sampling, and a
//!   SQL-statement exporter that materializes sampled spans, metric
//!   snapshots, histogram exemplars, and per-tenant usage rollups into
//!   `obs_spans` / `obs_metrics` / `obs_exemplars` / `obs_tenant_usage`.
//!
//! ## Quickstart
//!
//! ```
//! use dbgpt_obs::{Obs, ObsConfig};
//!
//! let obs = Obs::new(ObsConfig::enabled(42));
//! let root = obs.span("chat", 0);
//! root.attr("model", "sim-qwen");
//! let attempt = root.child("attempt", 10);
//! attempt.attr("worker", "w0");
//! attempt.event(250, "breaker half-open probe");
//! attempt.end(400);
//! root.end(500);
//! obs.counter("smmf.requests", 1);
//! obs.observe("smmf.request_latency_us", 500);
//! let dump = obs.trace_json();
//! assert!(dump.contains("\"name\":\"attempt\""));
//! println!("{}", obs.render_traces());
//! ```

pub mod collect;
pub mod export;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod render;
pub mod slo;
pub mod trace;

pub use collect::{
    filter_by_root_attr, Collector, KeepReason, NodeDump, SamplePolicy, TaggedSpan, Telemetry,
    TenantUsage, TraceSummary, UsageLedger,
};
pub use export::{export_sql, insert_sql, schema_sql, slowest_spans_query};
pub use metrics::{Exemplar, Histogram, HistogramSnapshot, Metrics, MetricsSnapshot};
pub use profile::{CriticalHop, CriticalPath, HotSpot, Profile};
pub use slo::{Alert, BurnRule, Objective, SloDef, SloEngine};
pub use trace::{Obs, ObsConfig, Span, SpanId, SpanRecord, TraceContext};
