//! Spans, the tracer, and the [`Obs`] handle components thread through.
//!
//! A [`Span`] covers one unit of work (a request, an attempt, an engine
//! drain, a retrieval scan). Spans nest: `root.child(...)` opens a span
//! whose `parent` points at the root, and all spans of one tree share the
//! root's id as their `trace` id — so a per-request trace tree can be
//! reassembled from the flat record list (Dapper's model).
//!
//! Timestamps are supplied by the caller: components with a simulated
//! microsecond clock (SMMF's `ApiServer`, the llm `BatchEngine`) pass
//! simulated µs; components without one (RAG retrieval) pass the logical
//! tick counter from [`Obs::tick`]. Either way no wall clock is read, so
//! identical runs dump identical bytes.
//!
//! Span ids come from a counter whose starting block is derived from the
//! configured seed (SplitMix64 of the seed, high bits), never from time or
//! randomness.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::{array_of, ObjWriter};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::render;

/// Switch + seed for one observability domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch; `false` makes every recording call a no-op branch.
    pub enabled: bool,
    /// Seed for the span-id counter block (tags dumps; no randomness).
    pub seed: u64,
}

impl ObsConfig {
    /// Observability off — the default everywhere, byte-for-byte identical
    /// to the pre-instrumentation hot paths.
    pub fn disabled() -> Self {
        ObsConfig {
            enabled: false,
            seed: 0,
        }
    }

    /// Tracing + metrics on, span ids seeded with `seed`.
    pub fn enabled(seed: u64) -> Self {
        ObsConfig {
            enabled: true,
            seed,
        }
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig::disabled()
    }
}

/// A span identifier (unique within one [`Obs`]).
pub type SpanId = u64;

/// Wire-portable trace context for **cross-node propagation**.
///
/// One process opens a span, exports its coordinates with
/// [`Span::context`], carries them across the wire (the server protocol
/// `Request` has a `with_trace_context` helper), and the receiving
/// process adopts them with [`Obs::span_in_context`] — the remote span
/// joins the originator's trace tree even though it is recorded by a
/// different tracer with its own seed block. Ids travel as fixed-width
/// hex so they sort identically as text (SQL) and as integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceContext {
    /// Root span id of the distributed trace.
    pub trace_id: SpanId,
    /// The span on the sending side that the receiver should parent under.
    pub parent_span_id: SpanId,
    /// Tenant key, so every hop can tag its spans for per-tenant queries.
    pub tenant: String,
}

impl TraceContext {
    /// Fixed-width lowercase hex for a span/trace id — the wire and SQL
    /// representation (16 chars, so lexicographic order == numeric order).
    pub fn hex(id: SpanId) -> String {
        format!("{id:016x}")
    }

    /// Parse a [`TraceContext::hex`] string back to an id.
    pub fn parse_hex(s: &str) -> Option<SpanId> {
        if s.len() != 16 {
            return None;
        }
        SpanId::from_str_radix(s, 16).ok()
    }
}

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// This span's id.
    pub id: SpanId,
    /// Parent span id (`None` for a trace root).
    pub parent: Option<SpanId>,
    /// Root span id of the tree this span belongs to.
    pub trace: SpanId,
    /// Operation name, e.g. `smmf.chat` or `rag.scan.vector`.
    pub name: String,
    /// Start timestamp (simulated µs or logical ticks — caller's clock).
    pub start_us: u64,
    /// End timestamp, same clock as `start_us`.
    pub end_us: u64,
    /// Key-value attributes, in recording order.
    pub attrs: Vec<(String, String)>,
    /// Point-in-time events `(at_us, message)`, in recording order.
    pub events: Vec<(u64, String)>,
}

impl SpanRecord {
    /// `end - start` (0 if the clock did not move).
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// First attribute value recorded under `key`.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Deterministic JSON with a fixed field order.
    pub fn to_json(&self) -> String {
        let attrs = array_of(self.attrs.iter().map(|(k, v)| {
            let mut o = ObjWriter::new();
            o.str_field("k", k).str_field("v", v);
            o.finish()
        }));
        let events = array_of(self.events.iter().map(|(at, msg)| {
            let mut o = ObjWriter::new();
            o.u64_field("at_us", *at).str_field("msg", msg);
            o.finish()
        }));
        let mut o = ObjWriter::new();
        o.u64_field("id", self.id);
        match self.parent {
            Some(p) => o.u64_field("parent", p),
            None => o.raw_field("parent", "null"),
        };
        o.u64_field("trace", self.trace)
            .str_field("name", &self.name)
            .u64_field("start_us", self.start_us)
            .u64_field("end_us", self.end_us)
            .raw_field("attrs", &attrs)
            .raw_field("events", &events);
        o.finish()
    }
}

/// A not-yet-ended span's mutable state.
struct OpenSpan {
    parent: Option<SpanId>,
    trace: SpanId,
    name: String,
    start_us: u64,
    attrs: Vec<(String, String)>,
    events: Vec<(u64, String)>,
}

struct Inner {
    seed: u64,
    next_id: AtomicU64,
    ticks: AtomicU64,
    open: Mutex<BTreeMap<SpanId, OpenSpan>>,
    done: Mutex<Vec<SpanRecord>>,
    metrics: Metrics,
}

/// SplitMix64 finalizer: maps the seed to a span-id block deterministically.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The observability handle (see module docs). Cheap to clone; all clones
/// share one tracer and one metrics registry. A disabled handle holds no
/// allocation at all.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl Obs {
    /// A handle that records nothing, at near-zero cost.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// Build from a config (disabled config → disabled handle).
    pub fn new(config: ObsConfig) -> Self {
        if !config.enabled {
            return Obs::disabled();
        }
        Obs {
            inner: Some(Arc::new(Inner {
                seed: config.seed,
                // Span ids live in a seed-derived block: 16 seed bits up
                // top, a plain counter (from 1) below. Deterministic and
                // collision-free within one handle.
                next_id: AtomicU64::new(((mix(config.seed) >> 48) << 48) | 1),
                ticks: AtomicU64::new(0),
                open: Mutex::new(BTreeMap::new()),
                done: Mutex::new(Vec::new()),
                metrics: Metrics::new(),
            })),
        }
    }

    /// Is this handle recording?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The configured seed (0 when disabled).
    pub fn seed(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.seed)
    }

    /// Next value of the logical tick clock — the timestamp source for
    /// components with no simulated clock. Returns 0 when disabled.
    pub fn tick(&self) -> u64 {
        match &self.inner {
            Some(i) => i.ticks.fetch_add(1, Ordering::Relaxed) + 1,
            None => 0,
        }
    }

    /// Fast-forward the tick clock to at least `us`. Hosts with a
    /// simulated clock call this before handing spans to tick-timestamped
    /// components (e.g. the SQL engine), so tick-clock children stay
    /// time-coherent with their simulated-clock ancestors instead of
    /// starting near zero. Monotonic: never moves the clock backwards.
    pub fn advance_ticks_to(&self, us: u64) {
        if let Some(i) = &self.inner {
            i.ticks.fetch_max(us, Ordering::Relaxed);
        }
    }

    /// Open a root span (a new trace).
    pub fn span(&self, name: &str, start_us: u64) -> Span {
        let Some(inner) = &self.inner else {
            return Span { inner: None };
        };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        inner.open.lock().expect("open spans lock").insert(
            id,
            OpenSpan {
                parent: None,
                trace: id,
                name: name.to_string(),
                start_us,
                attrs: Vec::new(),
                events: Vec::new(),
            },
        );
        Span {
            inner: Some(SpanInner {
                obs: Arc::clone(inner),
                id,
                trace: id,
            }),
        }
    }

    /// Adopt a remote [`TraceContext`]: open a span recorded by *this*
    /// tracer whose parent and trace ids come from the sending process.
    /// The context's tenant is recorded as the span's first attribute
    /// (when non-empty). A disabled handle returns a no-op span, so the
    /// propagation path costs one branch when telemetry is off.
    pub fn span_in_context(&self, name: &str, start_us: u64, ctx: &TraceContext) -> Span {
        let Some(inner) = &self.inner else {
            return Span { inner: None };
        };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let mut attrs = Vec::new();
        if !ctx.tenant.is_empty() {
            attrs.push(("tenant".to_string(), ctx.tenant.clone()));
        }
        inner.open.lock().expect("open spans lock").insert(
            id,
            OpenSpan {
                parent: Some(ctx.parent_span_id),
                trace: ctx.trace_id,
                name: name.to_string(),
                start_us,
                attrs,
                events: Vec::new(),
            },
        );
        Span {
            inner: Some(SpanInner {
                obs: Arc::clone(inner),
                id,
                trace: ctx.trace_id,
            }),
        }
    }

    /// Add `delta` to counter `name` (no-op when disabled).
    pub fn counter(&self, name: &str, delta: u64) {
        if let Some(i) = &self.inner {
            i.metrics.counter(name, delta);
        }
    }

    /// Current counter value (0 when disabled or untouched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.metrics.counter_value(name))
    }

    /// Set gauge `name` (no-op when disabled).
    pub fn gauge(&self, name: &str, value: i64) {
        if let Some(i) = &self.inner {
            i.metrics.gauge(name, value);
        }
    }

    /// Observe into histogram `name` with default latency buckets.
    pub fn observe(&self, name: &str, v: u64) {
        if let Some(i) = &self.inner {
            i.metrics.observe(name, v);
        }
    }

    /// Observe with explicit bucket bounds (applied on first touch).
    pub fn observe_with(&self, name: &str, bounds: &[u64], v: u64) {
        if let Some(i) = &self.inner {
            i.metrics.observe_with(name, bounds, v);
        }
    }

    /// Observe with explicit bounds *and* an exemplar trace-id link: the
    /// bucket the value lands in remembers the largest value seen there
    /// together with the trace that produced it (no-op when disabled).
    pub fn observe_exemplar(&self, name: &str, bounds: &[u64], v: u64, trace: SpanId) {
        if let Some(i) = &self.inner {
            i.metrics.observe_exemplar(name, bounds, v, trace);
        }
    }

    /// Snapshot every metric (empty snapshot when disabled).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner
            .as_ref()
            .map(|i| i.metrics.snapshot())
            .unwrap_or_default()
    }

    /// Deterministic metrics JSON (an empty registry when disabled).
    pub fn metrics_json(&self) -> String {
        self.metrics_snapshot().to_json()
    }

    /// Every *finished* span, sorted `(trace, start_us, id)` so the dump
    /// order is stable whatever order spans ended in. Spans still open are
    /// excluded (they have no end timestamp yet).
    pub fn finished_spans(&self) -> Vec<SpanRecord> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut spans = inner.done.lock().expect("done spans lock").clone();
        spans.sort_by(|a, b| {
            (a.trace, a.start_us, a.id).cmp(&(b.trace, b.start_us, b.id))
        });
        spans
    }

    /// Number of finished spans.
    pub fn span_count(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |i| i.done.lock().expect("done spans lock").len())
    }

    /// Deterministic JSON dump of every finished span:
    /// `{"seed":N,"spans":[...]}`.
    pub fn trace_json(&self) -> String {
        let spans = array_of(self.finished_spans().iter().map(|s| s.to_json()));
        let mut o = ObjWriter::new();
        o.u64_field("seed", self.seed()).raw_field("spans", &spans);
        o.finish()
    }

    /// Render every finished trace as a text tree (see [`render`]).
    pub fn render_traces(&self) -> String {
        render::render_all(&self.finished_spans())
    }

    /// Render one trace tree by its root span id.
    pub fn render_trace(&self, trace: SpanId) -> String {
        render::render_trace(&self.finished_spans(), trace)
    }

    /// Root span ids of every finished trace, in dump order.
    pub fn trace_ids(&self) -> Vec<SpanId> {
        let mut ids: Vec<SpanId> = self
            .finished_spans()
            .iter()
            .filter(|s| s.parent.is_none())
            .map(|s| s.id)
            .collect();
        ids.dedup();
        ids
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .field("seed", &self.seed())
            .field("finished_spans", &self.span_count())
            .finish()
    }
}

#[derive(Clone)]
struct SpanInner {
    obs: Arc<Inner>,
    id: SpanId,
    trace: SpanId,
}

/// A handle to one span; a disabled (no-op) handle is free to pass around.
/// Spans are ended explicitly with [`Span::end`] — a span never ended
/// simply stays out of the dump (deliberate: no Drop-time clock reads).
#[derive(Clone)]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// A span that records nothing (what a disabled [`Obs`] hands out).
    pub fn noop() -> Span {
        Span { inner: None }
    }

    /// Is this span recording?
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// This span's id, if recording.
    pub fn id(&self) -> Option<SpanId> {
        self.inner.as_ref().map(|i| i.id)
    }

    /// The trace (root span) id, if recording.
    pub fn trace_id(&self) -> Option<SpanId> {
        self.inner.as_ref().map(|i| i.trace)
    }

    /// Export this span's coordinates for cross-process propagation (see
    /// [`TraceContext`]). `None` for a no-op span, so a disabled sender
    /// injects nothing and the receiver's hot path stays byte-identical.
    pub fn context(&self, tenant: &str) -> Option<TraceContext> {
        self.inner.as_ref().map(|si| TraceContext {
            trace_id: si.trace,
            parent_span_id: si.id,
            tenant: tenant.to_string(),
        })
    }

    /// Open a child span. A child of a no-op span is a no-op span.
    pub fn child(&self, name: &str, start_us: u64) -> Span {
        let Some(si) = &self.inner else {
            return Span::noop();
        };
        let id = si.obs.next_id.fetch_add(1, Ordering::Relaxed);
        si.obs.open.lock().expect("open spans lock").insert(
            id,
            OpenSpan {
                parent: Some(si.id),
                trace: si.trace,
                name: name.to_string(),
                start_us,
                attrs: Vec::new(),
                events: Vec::new(),
            },
        );
        Span {
            inner: Some(SpanInner {
                obs: Arc::clone(&si.obs),
                id,
                trace: si.trace,
            }),
        }
    }

    /// Next value of the owning tracer's logical tick clock (see
    /// [`Obs::tick`]); 0 for a no-op span. Lets a callee timestamp child
    /// spans given only a `&Span`.
    pub fn tick(&self) -> u64 {
        match &self.inner {
            Some(si) => si.obs.ticks.fetch_add(1, Ordering::Relaxed) + 1,
            None => 0,
        }
    }

    /// An [`Obs`] handle onto the tracer that owns this span (a disabled
    /// handle for a no-op span) — lets a callee record counters and
    /// histograms given only a `&Span`.
    pub fn handle(&self) -> Obs {
        Obs {
            inner: self.inner.as_ref().map(|si| Arc::clone(&si.obs)),
        }
    }

    /// Record a key-value attribute. The value is only formatted when the
    /// span is live, so disabled paths pay one branch.
    pub fn attr(&self, key: &str, value: impl std::fmt::Display) {
        if let Some(si) = &self.inner {
            if let Some(s) = si.obs.open.lock().expect("open spans lock").get_mut(&si.id) {
                s.attrs.push((key.to_string(), value.to_string()));
            }
        }
    }

    /// Record a point-in-time event on this span.
    pub fn event(&self, at_us: u64, msg: impl std::fmt::Display) {
        if let Some(si) = &self.inner {
            if let Some(s) = si.obs.open.lock().expect("open spans lock").get_mut(&si.id) {
                s.events.push((at_us, msg.to_string()));
            }
        }
    }

    /// End the span at `end_us`, moving it into the finished set. Ending
    /// twice (or ending a clone) is a no-op the second time.
    pub fn end(&self, end_us: u64) {
        if let Some(si) = &self.inner {
            let open = si.obs.open.lock().expect("open spans lock").remove(&si.id);
            if let Some(s) = open {
                si.obs.done.lock().expect("done spans lock").push(SpanRecord {
                    id: si.id,
                    parent: s.parent,
                    trace: s.trace,
                    name: s.name,
                    start_us: s.start_us,
                    end_us,
                    attrs: s.attrs,
                    events: s.events,
                });
            }
        }
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("recording", &self.is_recording())
            .field("id", &self.id())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::new(ObsConfig::disabled());
        assert!(!obs.is_enabled());
        let s = obs.span("root", 0);
        assert!(!s.is_recording());
        let c = s.child("child", 1);
        c.attr("k", "v");
        c.event(2, "e");
        c.end(3);
        s.end(4);
        obs.counter("c", 1);
        obs.observe("h", 5);
        assert_eq!(obs.span_count(), 0);
        assert_eq!(obs.counter_value("c"), 0);
        assert_eq!(obs.trace_json(), "{\"seed\":0,\"spans\":[]}");
        assert_eq!(obs.tick(), 0);
    }

    #[test]
    fn spans_nest_and_dump_deterministically() {
        let run = || {
            let obs = Obs::new(ObsConfig::enabled(7));
            let root = obs.span("chat", 0);
            root.attr("model", "sim-qwen");
            let a = root.child("attempt", 5);
            a.attr("worker", "w0");
            a.event(9, "dispatched");
            a.end(20);
            let b = root.child("attempt", 21);
            b.end(30);
            root.end(31);
            obs.trace_json()
        };
        let a = run();
        assert_eq!(a, run(), "same run must dump identical bytes");
        assert!(a.contains("\"name\":\"chat\""));
        assert!(a.contains("\"msg\":\"dispatched\""));
    }

    #[test]
    fn different_seed_different_span_ids_same_shape() {
        let dump = |seed| {
            let obs = Obs::new(ObsConfig::enabled(seed));
            let s = obs.span("x", 0);
            s.end(1);
            (obs.trace_ids(), obs.trace_json())
        };
        let (ids1, _) = dump(1);
        let (ids2, _) = dump(2);
        assert_ne!(ids1, ids2, "id blocks are seed-derived");
    }

    #[test]
    fn unended_spans_stay_out_of_the_dump() {
        let obs = Obs::new(ObsConfig::enabled(1));
        let root = obs.span("root", 0);
        let _child = root.child("never-ended", 1);
        root.end(10);
        let spans = obs.finished_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "root");
    }

    #[test]
    fn double_end_is_idempotent() {
        let obs = Obs::new(ObsConfig::enabled(1));
        let s = obs.span("s", 0);
        s.end(5);
        s.end(99);
        let spans = obs.finished_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].end_us, 5);
    }

    #[test]
    fn record_accessors() {
        let obs = Obs::new(ObsConfig::enabled(3));
        let s = obs.span("s", 10);
        s.attr("k", 42);
        s.end(30);
        let r = &obs.finished_spans()[0];
        assert_eq!(r.duration_us(), 20);
        assert_eq!(r.attr("k"), Some("42"));
        assert_eq!(r.attr("missing"), None);
        assert!(r.to_json().starts_with("{\"id\":"));
    }

    #[test]
    fn ticks_are_monotonic() {
        let obs = Obs::new(ObsConfig::enabled(1));
        let a = obs.tick();
        let b = obs.tick();
        assert!(b > a);
    }

    #[test]
    fn context_propagates_across_tracers() {
        let gateway = Obs::new(ObsConfig::enabled(1));
        let node = Obs::new(ObsConfig::enabled(2));
        let root = gateway.span("gateway.request", 0);
        let ctx = root.context("tenant-003").expect("recording span has a context");
        let serve = node.span_in_context("node.serve", 5, &ctx);
        serve.end(9);
        root.end(10);
        let remote = &node.finished_spans()[0];
        assert_eq!(remote.trace, root.id().unwrap(), "same trace across tracers");
        assert_eq!(remote.parent, Some(ctx.parent_span_id));
        assert_eq!(remote.attr("tenant"), Some("tenant-003"));
        assert_ne!(remote.id, root.id().unwrap(), "local id from the node's block");
    }

    #[test]
    fn context_of_noop_span_is_none_and_adoption_on_disabled_is_inert() {
        assert!(Span::noop().context("t").is_none());
        let obs = Obs::new(ObsConfig::disabled());
        let ctx = TraceContext {
            trace_id: 7,
            parent_span_id: 7,
            tenant: "t".into(),
        };
        let s = obs.span_in_context("node.serve", 0, &ctx);
        assert!(!s.is_recording());
        s.end(1);
        assert_eq!(obs.span_count(), 0);
    }

    #[test]
    fn hex_roundtrip_is_fixed_width() {
        let id: SpanId = 0x00ab_cdef_0123_4567;
        let h = TraceContext::hex(id);
        assert_eq!(h.len(), 16);
        assert_eq!(h, "00abcdef01234567");
        assert_eq!(TraceContext::parse_hex(&h), Some(id));
        assert_eq!(TraceContext::parse_hex("xyz"), None);
    }

    #[test]
    fn clones_share_the_registry() {
        let obs = Obs::new(ObsConfig::enabled(1));
        let clone = obs.clone();
        clone.counter("shared", 2);
        assert_eq!(obs.counter_value("shared"), 2);
    }
}
