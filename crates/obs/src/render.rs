//! Text rendering of trace trees — the debugging view.
//!
//! Given the flat [`SpanRecord`] list a tracer dumps, reassemble each
//! trace into its tree and print it with box-drawing guides, durations,
//! attributes inline and events as timestamped leaf lines:
//!
//! ```text
//! trace 1b2e000000000001 · smmf.chat · 71530us
//! smmf.chat [0..71530us] model=sim-qwen outcome=ok
//! ├─ smmf.attempt [0..71530us] worker=sim-qwen-w0 outcome=ok
//! │  ├─ @50000us hedge fired: primary exceeded 50000us
//! │  └─ smmf.hedge [50000..71530us] worker=sim-qwen-w1 outcome=win
//! └─ ...
//! ```
//!
//! Rendering is a pure function of the records, so it inherits their
//! determinism.

use crate::metrics::MetricsSnapshot;
use crate::trace::{SpanId, SpanRecord};

/// Render a metrics snapshot as a fixed-width text table: counters and
/// gauges as `name value` lines, histograms with count/mean and the
/// p50/p90/p99 quantiles. Deterministic: `BTreeMap` iteration order and
/// fixed number formatting.
pub fn render_metrics(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snap.counters.is_empty() {
        out.push_str("counters\n");
        for (name, v) in &snap.counters {
            out.push_str(&format!("  {name:<38} {v:>12}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges\n");
        for (name, v) in &snap.gauges {
            out.push_str(&format!("  {name:<38} {v:>12}\n"));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("histograms\n");
        out.push_str(&format!(
            "  {:<30} {:>8} {:>11} {:>9} {:>9} {:>9} {:>9}\n",
            "name", "count", "mean", "p50", "p90", "p99", "max"
        ));
        for (name, h) in &snap.histograms {
            out.push_str(&format!(
                "  {:<30} {:>8} {:>11.1} {:>9} {:>9} {:>9} {:>9}\n",
                name,
                h.count(),
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                h.max(),
            ));
        }
    }
    out
}

/// Render every trace found in `spans`, in dump order, separated by a
/// blank line.
pub fn render_all(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    let mut roots: Vec<SpanId> = spans
        .iter()
        .filter(|s| s.parent.is_none())
        .map(|s| s.id)
        .collect();
    roots.dedup();
    for (i, root) in roots.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&render_trace(spans, *root));
    }
    out
}

/// Render one trace tree rooted at span id `trace`. Returns a note line
/// when the trace id is unknown.
pub fn render_trace(spans: &[SpanRecord], trace: SpanId) -> String {
    let Some(root) = spans.iter().find(|s| s.id == trace) else {
        return format!("trace {trace:016x}: no finished spans\n");
    };
    let mut out = format!(
        "trace {:016x} · {} · {}us\n",
        root.trace,
        root.name,
        root.duration_us()
    );
    render_node(spans, root, "", "", &mut out);
    out
}

/// One node line plus its interleaved events and children.
fn render_node(
    spans: &[SpanRecord],
    node: &SpanRecord,
    head_prefix: &str,
    tail_prefix: &str,
    out: &mut String,
) {
    out.push_str(head_prefix);
    out.push_str(&node.name);
    out.push_str(&format!(" [{}..{}us]", node.start_us, node.end_us));
    for (k, v) in &node.attrs {
        out.push_str(&format!(" {k}={v}"));
    }
    out.push('\n');

    // Children sorted by (start, id) — stable however ends interleaved.
    let mut children: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.parent == Some(node.id))
        .collect();
    children.sort_by_key(|s| (s.start_us, s.id));

    // Events and children merge into one timeline, events first on ties.
    enum Line<'a> {
        Event(&'a (u64, String)),
        Child(&'a SpanRecord),
    }
    let mut lines: Vec<(u64, u8, Line)> = Vec::new();
    for e in &node.events {
        lines.push((e.0, 0, Line::Event(e)));
    }
    for c in children {
        lines.push((c.start_us, 1, Line::Child(c)));
    }
    lines.sort_by_key(|(at, kind, l)| {
        (
            *at,
            *kind,
            match l {
                Line::Event(_) => 0,
                Line::Child(c) => c.id,
            },
        )
    });

    let n = lines.len();
    for (i, (_, _, line)) in lines.into_iter().enumerate() {
        let last = i + 1 == n;
        let (branch, cont) = if last {
            ("└─ ", "   ")
        } else {
            ("├─ ", "│  ")
        };
        match line {
            Line::Event((at, msg)) => {
                out.push_str(tail_prefix);
                out.push_str(branch);
                out.push_str(&format!("@{at}us {msg}\n"));
            }
            Line::Child(c) => {
                render_node(
                    spans,
                    c,
                    &format!("{tail_prefix}{branch}"),
                    &format!("{tail_prefix}{cont}"),
                    out,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Obs, ObsConfig};

    fn sample() -> (Obs, SpanId) {
        let obs = Obs::new(ObsConfig::enabled(5));
        let root = obs.span("smmf.chat", 0);
        root.attr("model", "sim-qwen");
        let attempt = root.child("smmf.attempt", 0);
        attempt.attr("worker", "w0");
        attempt.event(50, "hedge fired");
        let hedge = attempt.child("smmf.hedge", 50);
        hedge.attr("worker", "w1");
        hedge.end(80);
        attempt.end(90);
        root.end(100);
        let id = root.id().unwrap();
        (obs, id)
    }

    #[test]
    fn renders_tree_with_guides_attrs_events() {
        let (obs, id) = sample();
        let text = obs.render_trace(id);
        assert!(text.contains("smmf.chat [0..100us] model=sim-qwen"));
        assert!(text.contains("└─ smmf.attempt [0..90us] worker=w0"));
        assert!(text.contains("├─ @50us hedge fired"));
        assert!(text.contains("└─ smmf.hedge [50..80us] worker=w1"));
        // Nested child is indented under the attempt.
        assert!(text.contains("   └─ smmf.hedge"));
    }

    #[test]
    fn unknown_trace_is_reported_not_paniced() {
        let (obs, _) = sample();
        assert!(obs.render_trace(0xdead).contains("no finished spans"));
    }

    #[test]
    fn render_all_covers_every_trace() {
        let (obs, _) = sample();
        let r2 = obs.span("rag.retrieve", 1);
        r2.end(2);
        let all = obs.render_traces();
        assert!(all.contains("smmf.chat"));
        assert!(all.contains("rag.retrieve"));
    }

    #[test]
    fn metrics_table_pins_its_bytes() {
        let m = crate::metrics::Metrics::new();
        m.counter("smmf.requests", 26);
        m.gauge("queue.depth", -2);
        m.observe_with("lat_us", &[100, 1000], 50);
        m.observe_with("lat_us", &[100, 1000], 400);
        m.observe_with("lat_us", &[100, 1000], 5000);
        let text = render_metrics(&m.snapshot());
        assert_eq!(
            text,
            "counters\n\
             \x20 smmf.requests                                    26\n\
             gauges\n\
             \x20 queue.depth                                      -2\n\
             histograms\n\
             \x20 name                              count        mean       p50       p90       p99       max\n\
             \x20 lat_us                                3      1816.7      1000      5000      5000      5000\n"
        );
    }

    #[test]
    fn same_tick_siblings_from_different_id_blocks_render_pinned_bytes() {
        // A merged multi-node dump: the root lives on the gateway tracer
        // (seed 1) while two sibling children are adopted remotely on two
        // node tracers with different seed blocks (2 and 3) — and both
        // start at the same tick. Sibling order must be (start, span_id),
        // never dump concatenation order, so the merged render is stable
        // bytes no matter which node's dump arrives first.
        let render_merged = |flip: bool| {
            let gw = Obs::new(ObsConfig::enabled(1));
            let na = Obs::new(ObsConfig::enabled(2));
            let nb = Obs::new(ObsConfig::enabled(3));
            let root = gw.span("gateway.request", 0);
            let ctx = root.context("").unwrap();
            let a = na.span_in_context("node.serve", 10, &ctx);
            let b = nb.span_in_context("node.apply", 10, &ctx);
            a.attr("node", 0);
            b.attr("node", 1);
            a.end(30);
            b.end(20);
            root.end(40);
            let mut spans = Vec::new();
            if flip {
                spans.extend(nb.finished_spans());
                spans.extend(na.finished_spans());
            } else {
                spans.extend(na.finished_spans());
                spans.extend(nb.finished_spans());
            }
            spans.extend(gw.finished_spans());
            render_trace(&spans, spans.iter().find(|s| s.parent.is_none()).unwrap().id)
        };
        let text = render_merged(false);
        assert_eq!(text, render_merged(true), "dump order must not matter");
        // Seed 3's id block sorts below seed 2's, so node.apply renders
        // first despite being recorded second — (start, span_id) decides.
        assert_eq!(
            text,
            "trace 910a000000000001 · gateway.request · 40us\n\
             gateway.request [0..40us]\n\
             ├─ node.apply [10..20us] node=1\n\
             └─ node.serve [10..30us] node=0\n"
        );
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render_metrics(&MetricsSnapshot::default()), "");
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = {
            let (obs, id) = sample();
            obs.render_trace(id)
        };
        let b = {
            let (obs, id) = sample();
            obs.render_trace(id)
        };
        assert_eq!(a, b);
    }
}
