//! Typed inter-agent messages.

use serde::{Deserialize, Serialize};
use serde_json::Value;

/// What a message carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MessageKind {
    /// A user goal entering the system.
    Goal,
    /// A plan produced by the planner.
    Plan,
    /// A task assignment to a specialist agent.
    Task,
    /// A specialist's result.
    Result,
    /// The aggregated final report.
    Report,
    /// An error surfaced during execution.
    Error,
}

/// One archived communication between agents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentMessage {
    /// Monotonic sequence number within a conversation.
    pub seq: u64,
    /// Conversation (one `execute_goal` call) this belongs to.
    pub conversation: String,
    /// Sending agent (or "user" / "system").
    pub from: String,
    /// Receiving agent.
    pub to: String,
    /// Payload kind.
    pub kind: MessageKind,
    /// Payload.
    pub content: Value,
}

impl AgentMessage {
    /// Render as one JSONL line (the archive format).
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).expect("message serializes")
    }

    /// Parse one JSONL line.
    pub fn from_jsonl(line: &str) -> Option<AgentMessage> {
        serde_json::from_str(line).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn msg() -> AgentMessage {
        AgentMessage {
            seq: 3,
            conversation: "conv-1".into(),
            from: "planner".into(),
            to: "chart_generator".into(),
            kind: MessageKind::Task,
            content: json!({"chart": "donut"}),
        }
    }

    #[test]
    fn jsonl_roundtrip() {
        let m = msg();
        let line = m.to_jsonl();
        assert!(!line.contains('\n'));
        assert_eq!(AgentMessage::from_jsonl(&line).unwrap(), m);
    }

    #[test]
    fn bad_jsonl_is_none() {
        assert!(AgentMessage::from_jsonl("{not json").is_none());
        assert!(AgentMessage::from_jsonl("{}").is_none());
    }

    #[test]
    fn kinds_serialize_distinctly() {
        let kinds = [
            MessageKind::Goal,
            MessageKind::Plan,
            MessageKind::Task,
            MessageKind::Result,
            MessageKind::Report,
            MessageKind::Error,
        ];
        let mut seen = std::collections::HashSet::new();
        for k in kinds {
            assert!(seen.insert(serde_json::to_string(&k).unwrap()));
        }
    }
}
