//! Error type for the agent framework.

use std::fmt;

use dbgpt_llm::LlmError;
use dbgpt_smmf::SmmfError;

/// Errors from planning, dispatch and agent execution.
#[derive(Debug, Clone, PartialEq)]
pub enum AgentError {
    /// The planner's output could not be parsed into a plan.
    PlanParse(String),
    /// No agent is registered for a required role.
    NoAgentForRole(String),
    /// An agent failed while executing a step.
    StepFailed {
        /// 1-based plan step id.
        step: usize,
        /// Role of the failing agent.
        role: String,
        /// Cause description.
        cause: String,
    },
    /// The model backend failed.
    Llm(String),
    /// Archiving to local storage failed.
    Archive(String),
    /// An agent name was registered twice.
    DuplicateAgent(String),
}

impl fmt::Display for AgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentError::PlanParse(m) => write!(f, "cannot parse plan: {m}"),
            AgentError::NoAgentForRole(r) => write!(f, "no agent registered for role `{r}`"),
            AgentError::StepFailed { step, role, cause } => {
                write!(f, "step {step} ({role}) failed: {cause}")
            }
            AgentError::Llm(m) => write!(f, "model error: {m}"),
            AgentError::Archive(m) => write!(f, "archive error: {m}"),
            AgentError::DuplicateAgent(a) => write!(f, "duplicate agent `{a}`"),
        }
    }
}

impl std::error::Error for AgentError {}

impl From<LlmError> for AgentError {
    fn from(e: LlmError) -> Self {
        AgentError::Llm(e.to_string())
    }
}

impl From<SmmfError> for AgentError {
    fn from(e: SmmfError) -> Self {
        AgentError::Llm(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(AgentError::NoAgentForRole("chart".into()).to_string().contains("chart"));
        assert!(AgentError::StepFailed {
            step: 2,
            role: "w".into(),
            cause: "x".into()
        }
        .to_string()
        .contains("step 2"));
    }

    #[test]
    fn conversions() {
        let e: AgentError = LlmError::EmptyPrompt.into();
        assert!(matches!(e, AgentError::Llm(_)));
        let e: AgentError = SmmfError::UnknownModel("m".into()).into();
        assert!(matches!(e, AgentError::Llm(_)));
    }
}
