//! Built-in agent roles: planner, worker, aggregator.
//!
//! These three ship with the framework because every workflow needs them
//! (Fig. 3: planner → specialists → aggregator). Domain specialists —
//! chart generators, SQL agents — are *custom* agents defined by the
//! application layer and registered alongside these.

use dbgpt_llm::skills::planner::PlanStep;
use dbgpt_llm::GenerationParams;
use serde_json::{json, Value};

use crate::agent::{Agent, AgentContext, AgentReply, TaskRequest};
use crate::error::AgentError;

/// The planning agent: turns a goal into a [`PlanStep`] list via the
/// model's planning skill.
#[derive(Debug, Default)]
pub struct PlannerAgent;

impl PlannerAgent {
    /// Create the agent.
    pub fn new() -> Self {
        PlannerAgent
    }

    /// Ask the model for a plan for `goal`.
    pub fn plan(&self, goal: &str, ctx: &AgentContext) -> Result<Vec<PlanStep>, AgentError> {
        let prompt = format!("### Task: plan\n### Input:\n{goal}");
        let params = GenerationParams::default().with_seed(ctx.seed);
        let completion = ctx.llm.complete(&prompt, &params)?;
        let steps: Vec<PlanStep> = serde_json::from_str(completion.text.trim())
            .map_err(|e| AgentError::PlanParse(format!("{e}: {}", completion.text)))?;
        if steps.is_empty() {
            return Err(AgentError::PlanParse("empty plan".into()));
        }
        Ok(steps)
    }
}

impl Agent for PlannerAgent {
    fn name(&self) -> &str {
        "planner"
    }

    fn role(&self) -> &str {
        "planner"
    }

    fn handle(&self, task: &TaskRequest, ctx: &AgentContext) -> Result<AgentReply, AgentError> {
        let steps = self.plan(&task.goal, ctx)?;
        let summary = format!("planned {} step(s)", steps.len());
        Ok(AgentReply::structured(
            serde_json::to_value(steps).expect("plan serializes"),
            summary,
        ))
    }
}

/// The generic worker: executes a step by asking the model about it,
/// carrying the goal as framing.
#[derive(Debug, Default)]
pub struct WorkerAgent;

impl WorkerAgent {
    /// Create the agent.
    pub fn new() -> Self {
        WorkerAgent
    }
}

impl Agent for WorkerAgent {
    fn name(&self) -> &str {
        "worker"
    }

    fn role(&self) -> &str {
        "worker"
    }

    fn handle(&self, task: &TaskRequest, ctx: &AgentContext) -> Result<AgentReply, AgentError> {
        let prompt = format!(
            "### Context:\nOverall goal: {}\n### Input:\n{}",
            task.goal, task.step.description
        );
        let params = GenerationParams::default().with_seed(ctx.seed);
        let completion = ctx.llm.complete(&prompt, &params)?;
        Ok(AgentReply::structured(
            json!({"step": task.step.id, "output": completion.text}),
            format!("executed step {}: {}", task.step.id, task.step.description),
        ))
    }
}

/// The aggregator: collects prior step results into the final report,
/// with a model-written narrative summary.
#[derive(Debug, Default)]
pub struct AggregatorAgent;

impl AggregatorAgent {
    /// Create the agent.
    pub fn new() -> Self {
        AggregatorAgent
    }
}

impl Agent for AggregatorAgent {
    fn name(&self) -> &str {
        "aggregator"
    }

    fn role(&self) -> &str {
        "aggregator"
    }

    fn handle(&self, task: &TaskRequest, ctx: &AgentContext) -> Result<AgentReply, AgentError> {
        // Build a narrative over the collected results.
        let mut lines = String::new();
        for (i, r) in task.prior_results.iter().enumerate() {
            let line = match r {
                Value::Object(o) => o
                    .get("summary")
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .unwrap_or_else(|| r.to_string()),
                Value::String(s) => s.clone(),
                other => other.to_string(),
            };
            lines.push_str(&format!("Step {}: {line}\n", i + 1));
        }
        let prompt = format!("### Task: summarize\n### Context:\n{lines}\n### Input:\n{}", task.goal);
        let params = GenerationParams::default().with_seed(ctx.seed);
        let narrative = ctx
            .llm
            .complete(&prompt, &params)
            .map(|c| c.text)
            .unwrap_or_else(|_| lines.clone());
        Ok(AgentReply::structured(
            json!({
                "results": task.prior_results,
                "narrative": narrative,
            }),
            format!("aggregated {} result(s)", task.prior_results.len()),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::LlmClient;
    use crate::memory::HistoryArchive;
    use dbgpt_llm::catalog::builtin_model;
    use std::sync::Arc;

    fn ctx() -> AgentContext {
        AgentContext {
            llm: LlmClient::direct(builtin_model("sim-qwen").unwrap()),
            archive: Arc::new(HistoryArchive::in_memory()),
            seed: 7,
        }
    }

    fn task(desc: &str, prior: Vec<Value>) -> TaskRequest {
        TaskRequest {
            conversation: "c".into(),
            goal: "Build sales reports and analyze user orders from three distinct dimensions"
                .into(),
            step: PlanStep {
                id: 1,
                description: desc.into(),
                agent: "worker".into(),
                chart: None,
                dimension: None,
            },
            prior_results: prior,
        }
    }

    #[test]
    fn planner_produces_demo_plan() {
        let p = PlannerAgent::new();
        let steps = p
            .plan(
                "Build sales reports and analyze user orders from at least three distinct dimensions",
                &ctx(),
            )
            .unwrap();
        assert_eq!(steps.len(), 4);
        assert_eq!(steps.last().unwrap().agent, "aggregator");
    }

    #[test]
    fn planner_as_agent_returns_plan_json() {
        let p = PlannerAgent::new();
        let r = p.handle(&task("anything", vec![]), &ctx()).unwrap();
        let steps: Vec<PlanStep> = serde_json::from_value(r.content).unwrap();
        assert!(!steps.is_empty());
        assert!(r.summary.contains("planned"));
    }

    #[test]
    fn worker_executes_step() {
        let w = WorkerAgent::new();
        let r = w.handle(&task("inspect the database schema", vec![]), &ctx()).unwrap();
        assert_eq!(r.content["step"], 1);
        assert!(r.content["output"].as_str().unwrap().len() > 5);
    }

    #[test]
    fn aggregator_collects_and_narrates() {
        let a = AggregatorAgent::new();
        let prior = vec![
            json!({"summary": "made donut chart"}),
            json!({"summary": "made bar chart"}),
            json!("raw string result"),
        ];
        let r = a.handle(&task("aggregate", prior.clone()), &ctx()).unwrap();
        assert_eq!(r.content["results"], json!(prior));
        assert!(r.content["narrative"].as_str().unwrap().len() > 3);
        assert!(r.summary.contains('3'));
    }

    #[test]
    fn roles_are_stable() {
        assert_eq!(PlannerAgent::new().role(), "planner");
        assert_eq!(WorkerAgent::new().role(), "worker");
        assert_eq!(AggregatorAgent::new().role(), "aggregator");
    }
}
