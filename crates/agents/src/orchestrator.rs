//! The orchestrator: goal → plan → role dispatch → aggregated report.
//!
//! Implements the Fig. 3 control flow. Every hop — the incoming goal, the
//! plan, each task assignment, each result, the final report — is recorded
//! in the [`HistoryArchive`] before execution proceeds, so a crash or a
//! bad generation leaves a complete audit trail (the paper's reliability
//! argument for local history storage).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde_json::{json, Value};

use dbgpt_llm::skills::planner::PlanStep;
use dbgpt_obs::{Obs, Span};

use crate::agent::{AgentContext, AgentReply, SharedAgent, TaskRequest};
use crate::client::LlmClient;
use crate::error::AgentError;
use crate::memory::HistoryArchive;
use crate::message::{AgentMessage, MessageKind};
use crate::roles::{AggregatorAgent, PlannerAgent, WorkerAgent};

/// The outcome of one `execute_goal` call.
#[derive(Debug, Clone)]
pub struct TaskReport {
    /// Conversation id (for archive lookups).
    pub conversation: String,
    /// The plan that was executed.
    pub plan: Vec<PlanStep>,
    /// Each non-aggregator step's result, in plan order.
    pub step_results: Vec<AgentReply>,
    /// The aggregator's final output.
    pub final_report: AgentReply,
}

/// The multi-agent orchestrator (see module docs).
pub struct Orchestrator {
    llm: LlmClient,
    archive: Arc<HistoryArchive>,
    /// role → agent. Custom agents override/extend the built-ins.
    agents: HashMap<String, SharedAgent>,
    planner: PlannerAgent,
    conversation_counter: AtomicU64,
    seed: u64,
    obs: Obs,
}

impl Orchestrator {
    /// Orchestrator with an in-memory archive and the built-in roles
    /// (`worker`, `aggregator`).
    pub fn new(llm: LlmClient) -> Self {
        Self::with_archive(llm, Arc::new(HistoryArchive::in_memory()))
    }

    /// Orchestrator using a caller-supplied (possibly durable) archive.
    pub fn with_archive(llm: LlmClient, archive: Arc<HistoryArchive>) -> Self {
        let mut agents: HashMap<String, SharedAgent> = HashMap::new();
        agents.insert("worker".into(), Arc::new(WorkerAgent::new()));
        agents.insert("aggregator".into(), Arc::new(AggregatorAgent::new()));
        Orchestrator {
            llm,
            archive,
            agents,
            planner: PlannerAgent::new(),
            conversation_counter: AtomicU64::new(0),
            seed: 42,
            obs: Obs::disabled(),
        }
    }

    /// Override the deterministic seed used for model calls.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Record `agents.goal` / `agents.plan` / `agents.step` /
    /// `agents.aggregate` spans and an `agents.messages` counter on `obs`.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Register a custom agent under its role (replaces any existing
    /// holder of that role).
    pub fn register_agent(&mut self, agent: SharedAgent) {
        self.agents.insert(agent.role().to_string(), agent);
    }

    /// Registered roles, sorted.
    pub fn roles(&self) -> Vec<String> {
        let mut r: Vec<String> = self.agents.keys().cloned().collect();
        r.sort();
        r
    }

    /// The archive (inspect communication history).
    pub fn archive(&self) -> &Arc<HistoryArchive> {
        &self.archive
    }

    /// Execute a goal end to end.
    pub fn execute_goal(&mut self, goal: &str) -> Result<TaskReport, AgentError> {
        self.execute_goal_under(goal, &Span::noop())
    }

    /// Execute a goal, joining the `agents.goal` span to `parent` when it
    /// is recording (else rooting it on this orchestrator's own handle).
    /// Byte-identical to [`Orchestrator::execute_goal`] when neither
    /// records.
    pub fn execute_goal_under(
        &mut self,
        goal: &str,
        parent: &Span,
    ) -> Result<TaskReport, AgentError> {
        let span = if parent.is_recording() {
            parent.child("agents.goal", parent.tick())
        } else if self.obs.is_enabled() {
            self.obs.span("agents.goal", self.obs.tick())
        } else {
            Span::noop()
        };
        let res = self.execute_goal_inner(goal, &span);
        match &res {
            Ok(r) => {
                span.attr("outcome", "ok");
                span.attr("steps", r.step_results.len());
            }
            Err(_) => span.attr("outcome", "error"),
        }
        span.end(span.tick());
        res
    }

    fn execute_goal_inner(&mut self, goal: &str, span: &Span) -> Result<TaskReport, AgentError> {
        let conv = format!(
            "conv-{}",
            self.conversation_counter.fetch_add(1, Ordering::Relaxed)
        );
        span.attr("conversation", &conv);
        let obs = span.handle();
        obs.counter("agents.goals", 1);
        let mut seq = 0u64;
        let record_obs = obs.clone();
        let mut record = |from: &str, to: &str, kind: MessageKind, content: Value| {
            record_obs.counter("agents.messages", 1);
            let msg = AgentMessage {
                seq,
                conversation: conv.clone(),
                from: from.into(),
                to: to.into(),
                kind,
                content,
            };
            seq += 1;
            self.archive.record(msg)
        };

        let ctx = AgentContext {
            llm: self.llm.clone(),
            archive: self.archive.clone(),
            seed: self.seed,
        };

        // 1. Goal in.
        record("user", "planner", MessageKind::Goal, json!(goal))?;

        // 2. Plan.
        let plan_span = span.child("agents.plan", span.tick());
        let plan = match self.planner.plan(goal, &ctx) {
            Ok(plan) => {
                plan_span.attr("steps", plan.len());
                plan_span.end(span.tick());
                plan
            }
            Err(e) => {
                plan_span.attr("outcome", "error");
                plan_span.end(span.tick());
                return Err(e);
            }
        };
        record(
            "planner",
            "orchestrator",
            MessageKind::Plan,
            serde_json::to_value(&plan).expect("plan serializes"),
        )?;

        // 3. Execute non-aggregator steps in order, feeding prior results.
        let mut step_results: Vec<AgentReply> = Vec::new();
        let mut prior: Vec<Value> = Vec::new();
        let mut aggregator_step: Option<PlanStep> = None;
        for step in &plan {
            if step.agent == "aggregator" {
                aggregator_step = Some(step.clone());
                continue;
            }
            let agent = self
                .agents
                .get(&step.agent)
                .or_else(|| self.agents.get("worker"))
                .cloned()
                .ok_or_else(|| AgentError::NoAgentForRole(step.agent.clone()))?;
            let task = TaskRequest {
                conversation: conv.clone(),
                goal: goal.to_string(),
                step: step.clone(),
                prior_results: prior.clone(),
            };
            let step_span = span.child("agents.step", span.tick());
            step_span.attr("step", step.id);
            step_span.attr("role", &step.agent);
            step_span.attr("agent", agent.name());
            record(
                "orchestrator",
                agent.name(),
                MessageKind::Task,
                serde_json::to_value(&task.step).expect("step serializes"),
            )?;
            // One retry with a bumped seed: transient failures (worker
            // faults, sampling mishaps) get a second chance; deterministic
            // failures surface after the retry.
            let reply = match agent.handle(&task, &ctx) {
                Ok(r) => r,
                Err(first) => {
                    step_span.event(span.tick(), format!("attempt 1 failed: {first}"));
                    record(
                        agent.name(),
                        "orchestrator",
                        MessageKind::Error,
                        json!(format!("attempt 1 failed: {first}")),
                    )?;
                    let retry_ctx = AgentContext {
                        llm: self.llm.clone(),
                        archive: self.archive.clone(),
                        seed: self.seed.wrapping_add(1),
                    };
                    match agent.handle(&task, &retry_ctx) {
                        Ok(r) => r,
                        Err(e) => {
                            let _ = record(
                                agent.name(),
                                "orchestrator",
                                MessageKind::Error,
                                json!(e.to_string()),
                            );
                            step_span.attr("outcome", "error");
                            step_span.end(span.tick());
                            return Err(AgentError::StepFailed {
                                step: step.id,
                                role: step.agent.clone(),
                                cause: e.to_string(),
                            });
                        }
                    }
                }
            };
            record(
                agent.name(),
                "orchestrator",
                MessageKind::Result,
                json!({"summary": reply.summary, "content": reply.content}),
            )?;
            step_span.attr("outcome", "ok");
            step_span.end(span.tick());
            prior.push(json!({"summary": reply.summary, "content": reply.content}));
            step_results.push(reply);
        }

        // 4. Aggregate (synthesizing a final step if the plan lacked one).
        let agg_step = aggregator_step.unwrap_or(PlanStep {
            id: plan.len() + 1,
            description: "Aggregate results".into(),
            agent: "aggregator".into(),
            chart: None,
            dimension: None,
        });
        let aggregator = self
            .agents
            .get("aggregator")
            .cloned()
            .ok_or_else(|| AgentError::NoAgentForRole("aggregator".into()))?;
        let task = TaskRequest {
            conversation: conv.clone(),
            goal: goal.to_string(),
            step: agg_step,
            prior_results: prior,
        };
        let agg_span = span.child("agents.aggregate", span.tick());
        agg_span.attr("inputs", task.prior_results.len());
        let final_report = match aggregator.handle(&task, &ctx) {
            Ok(r) => {
                agg_span.attr("outcome", "ok");
                agg_span.end(span.tick());
                r
            }
            Err(e) => {
                agg_span.attr("outcome", "error");
                agg_span.end(span.tick());
                return Err(AgentError::StepFailed {
                    step: task.step.id,
                    role: "aggregator".into(),
                    cause: e.to_string(),
                });
            }
        };
        record(
            "aggregator",
            "user",
            MessageKind::Report,
            json!({"summary": final_report.summary, "content": final_report.content}),
        )?;

        Ok(TaskReport {
            conversation: conv,
            plan,
            step_results,
            final_report,
        })
    }
}

impl std::fmt::Debug for Orchestrator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Orchestrator")
            .field("llm", &self.llm)
            .field("roles", &self.roles())
            .field("archived", &self.archive.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Agent;
    use dbgpt_llm::catalog::builtin_model;

    const DEMO_GOAL: &str =
        "Build sales reports and analyze user orders from at least three distinct dimensions";

    fn orch() -> Orchestrator {
        Orchestrator::new(LlmClient::direct(builtin_model("sim-qwen").unwrap()))
    }

    #[test]
    fn demo_goal_runs_end_to_end() {
        let mut o = orch();
        let report = o.execute_goal(DEMO_GOAL).unwrap();
        assert_eq!(report.plan.len(), 4);
        assert_eq!(report.step_results.len(), 3);
        assert!(report.final_report.content["narrative"].is_string());
    }

    #[test]
    fn full_history_is_archived() {
        let mut o = orch();
        let report = o.execute_goal(DEMO_GOAL).unwrap();
        let msgs = o.archive().conversation(&report.conversation);
        // goal + plan + 3×(task+result) + report = 9
        assert_eq!(msgs.len(), 9);
        assert_eq!(msgs[0].kind, MessageKind::Goal);
        assert_eq!(msgs[1].kind, MessageKind::Plan);
        assert_eq!(msgs.last().unwrap().kind, MessageKind::Report);
        // Sequence numbers are dense and ordered.
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(m.seq, i as u64);
        }
    }

    #[test]
    fn conversations_are_isolated() {
        let mut o = orch();
        let a = o.execute_goal(DEMO_GOAL).unwrap();
        let b = o.execute_goal("collect the logs, email the summary").unwrap();
        assert_ne!(a.conversation, b.conversation);
        assert_eq!(o.archive().conversations().len(), 2);
    }

    #[test]
    fn custom_agent_receives_matching_steps() {
        struct ChartStub;
        impl Agent for ChartStub {
            fn name(&self) -> &str {
                "chart_stub"
            }
            fn role(&self) -> &str {
                "chart_generator"
            }
            fn handle(
                &self,
                task: &TaskRequest,
                _ctx: &AgentContext,
            ) -> Result<AgentReply, AgentError> {
                Ok(AgentReply::structured(
                    json!({"chart": task.step.chart}),
                    format!("chart for {}", task.step.dimension.clone().unwrap_or_default()),
                ))
            }
        }
        let mut o = orch();
        o.register_agent(Arc::new(ChartStub));
        let report = o.execute_goal(DEMO_GOAL).unwrap();
        // All three chart steps handled by the stub.
        let charts: Vec<&str> = report
            .step_results
            .iter()
            .filter_map(|r| r.content["chart"].as_str())
            .collect();
        assert_eq!(charts.len(), 3);
        assert!(charts.contains(&"donut"));
    }

    #[test]
    fn failing_agent_reports_step_and_archives_error() {
        struct Broken;
        impl Agent for Broken {
            fn name(&self) -> &str {
                "broken"
            }
            fn role(&self) -> &str {
                "chart_generator"
            }
            fn handle(&self, _t: &TaskRequest, _c: &AgentContext) -> Result<AgentReply, AgentError> {
                Err(AgentError::Llm("synthetic failure".into()))
            }
        }
        let mut o = orch();
        o.register_agent(Arc::new(Broken));
        let e = o.execute_goal(DEMO_GOAL).unwrap_err();
        assert!(matches!(e, AgentError::StepFailed { step: 1, .. }));
        // The error made it into the archive.
        let all: Vec<_> = o.archive().by_agent("broken");
        assert!(all.iter().any(|m| m.kind == MessageKind::Error));
    }

    #[test]
    fn generic_goal_falls_back_to_worker() {
        let mut o = orch();
        let report = o.execute_goal("fetch the logs, parse the errors").unwrap();
        assert!(!report.step_results.is_empty());
        assert!(report.final_report.summary.contains("aggregated"));
    }

    #[test]
    fn prior_results_flow_to_later_steps() {
        struct Probe;
        impl Agent for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn role(&self) -> &str {
                "worker"
            }
            fn handle(&self, task: &TaskRequest, _c: &AgentContext) -> Result<AgentReply, AgentError> {
                Ok(AgentReply::structured(
                    json!({"saw_prior": task.prior_results.len()}),
                    "probed",
                ))
            }
        }
        let mut o = orch();
        o.register_agent(Arc::new(Probe));
        let report = o.execute_goal("first thing, second thing, third thing").unwrap();
        let counts: Vec<u64> = report
            .step_results
            .iter()
            .map(|r| r.content["saw_prior"].as_u64().unwrap())
            .collect();
        assert_eq!(counts, vec![0, 1, 2]);
    }

    #[test]
    fn roles_listing() {
        let o = orch();
        assert_eq!(o.roles(), vec!["aggregator".to_string(), "worker".to_string()]);
    }
}

#[cfg(test)]
mod retry_tests {
    use super::*;
    use crate::agent::Agent;
    use dbgpt_llm::catalog::builtin_model;
    use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};

    /// Fails on its first call, succeeds afterwards.
    struct FlakyOnce(AtomicUsize);
    impl Agent for FlakyOnce {
        fn name(&self) -> &str {
            "flaky_once"
        }
        fn role(&self) -> &str {
            "worker"
        }
        fn handle(&self, _t: &TaskRequest, _c: &AgentContext) -> Result<AgentReply, AgentError> {
            if self.0.fetch_add(1, AtomicOrdering::SeqCst) == 0 {
                Err(AgentError::Llm("transient".into()))
            } else {
                Ok(AgentReply::text("recovered"))
            }
        }
    }

    /// Always fails.
    struct AlwaysBroken;
    impl Agent for AlwaysBroken {
        fn name(&self) -> &str {
            "always_broken"
        }
        fn role(&self) -> &str {
            "worker"
        }
        fn handle(&self, _t: &TaskRequest, _c: &AgentContext) -> Result<AgentReply, AgentError> {
            Err(AgentError::Llm("permanent".into()))
        }
    }

    #[test]
    fn transient_failure_is_retried_and_recovered() {
        let mut o = Orchestrator::new(LlmClient::direct(builtin_model("sim-qwen").unwrap()));
        o.register_agent(Arc::new(FlakyOnce(AtomicUsize::new(0))));
        let report = o.execute_goal("do one flaky thing").unwrap();
        assert!(report
            .step_results
            .iter()
            .any(|r| r.summary == "recovered"));
        // The failed first attempt is in the archive.
        let errors: Vec<_> = o
            .archive()
            .conversation(&report.conversation)
            .into_iter()
            .filter(|m| m.kind == MessageKind::Error)
            .collect();
        assert_eq!(errors.len(), 1);
        assert!(errors[0].content.as_str().unwrap().contains("attempt 1"));
    }

    #[test]
    fn permanent_failure_still_fails_after_retry() {
        let mut o = Orchestrator::new(LlmClient::direct(builtin_model("sim-qwen").unwrap()));
        o.register_agent(Arc::new(AlwaysBroken));
        let e = o.execute_goal("do one broken thing").unwrap_err();
        assert!(matches!(e, AgentError::StepFailed { .. }));
        // Two error records: the failed attempt + the final failure.
        let conv = o.archive().conversations()[0].clone();
        let errors = o
            .archive()
            .conversation(&conv)
            .into_iter()
            .filter(|m| m.kind == MessageKind::Error)
            .count();
        assert_eq!(errors, 2);
    }
}
