#![warn(missing_docs)]

//! # dbgpt-agents — the Multi-Agents framework
//!
//! Implements DB-GPT's Multi-Agents framework (paper §2.3): "Once users
//! have entered their final goals, the Multi-Agents framework can free
//! their hands, autonomously generate the planning of tasks and execute
//! particular tasks."
//!
//! The framework's differentiator versus MetaGPT/AutoGen is reproduced
//! faithfully: "DB-GPT's Multi-Agent framework archives the entire
//! communication history among its agents within a local storage system,
//! thereby significantly enhancing the reliability of the generated
//! content" — see [`memory::HistoryArchive`], an append-only JSONL store on
//! disk with replay and query.
//!
//! And versus LlamaIndex's "constrained behaviours", the framework "allows
//! users to custom-define agents tailored to their specific data
//! interaction tasks": anything implementing [`Agent`] can be registered
//! with the [`Orchestrator`] under any role — the application layer's chart
//! and SQL agents are exactly such custom agents.
//!
//! ## Flow (mirrors Fig. 3)
//!
//! ```text
//! goal ──▶ planner agent ──▶ [step₁ … stepₙ] ──▶ role-matched agents
//!                                         └──▶ aggregator ──▶ report
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use dbgpt_agents::{Orchestrator, LlmClient};
//! use dbgpt_llm::catalog::builtin_model;
//!
//! let client = LlmClient::direct(builtin_model("sim-qwen").unwrap());
//! let mut orch = Orchestrator::new(client);
//! let report = orch.execute_goal("Build sales reports and analyze user orders \
//!                                 from at least three distinct dimensions").unwrap();
//! assert_eq!(report.plan.len(), 4);          // 3 charts + aggregate
//! assert!(report.step_results.len() >= 3);
//! ```

pub mod agent;
pub mod client;
pub mod error;
pub mod memory;
pub mod message;
pub mod orchestrator;
pub mod roles;

pub use agent::{Agent, AgentContext, AgentReply, SharedAgent, TaskRequest};
pub use client::LlmClient;
pub use error::AgentError;
pub use memory::HistoryArchive;
pub use message::{AgentMessage, MessageKind};
pub use orchestrator::{Orchestrator, TaskReport};
pub use roles::{AggregatorAgent, PlannerAgent, WorkerAgent};
