//! The local-storage communication archive.
//!
//! The paper's differentiator vs MetaGPT/AutoGen: "DB-GPT's Multi-Agent
//! framework archives the entire communication history among its agents
//! within a local storage system, thereby significantly enhancing the
//! reliability of the generated content" (§2.3).
//!
//! [`HistoryArchive`] is that storage system: an append-only JSONL file per
//! archive (optional — in-memory only when no path is given), with an
//! in-memory index for queries by conversation and by agent, and a
//! `replay` that reloads everything from disk — which is what makes agent
//! output *auditable*: every plan, task and result can be traced after the
//! fact.

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use crate::error::AgentError;
use crate::message::AgentMessage;

/// The archive (see module docs).
pub struct HistoryArchive {
    messages: Mutex<Vec<AgentMessage>>,
    file: Option<Mutex<File>>,
    path: Option<PathBuf>,
}

impl HistoryArchive {
    /// In-memory archive (tests, ephemeral sessions).
    pub fn in_memory() -> Self {
        HistoryArchive {
            messages: Mutex::new(Vec::new()),
            file: None,
            path: None,
        }
    }

    /// Durable archive appending to `path` (created if missing; existing
    /// content is loaded so the archive continues across sessions).
    pub fn at_path(path: impl AsRef<Path>) -> Result<Self, AgentError> {
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| AgentError::Archive(format!("create dir: {e}")))?;
            }
        }
        let mut existing = Vec::new();
        if path.exists() {
            let f = File::open(&path).map_err(|e| AgentError::Archive(e.to_string()))?;
            for line in BufReader::new(f).lines() {
                let line = line.map_err(|e| AgentError::Archive(e.to_string()))?;
                if let Some(m) = AgentMessage::from_jsonl(&line) {
                    existing.push(m);
                }
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| AgentError::Archive(e.to_string()))?;
        Ok(HistoryArchive {
            messages: Mutex::new(existing),
            file: Some(Mutex::new(file)),
            path: Some(path),
        })
    }

    /// Where the archive persists, if durable.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Append one message (written through to disk when durable).
    ///
    /// Disk append and in-memory push happen inside one critical section
    /// (the messages lock): releasing the file lock before taking the
    /// messages lock would let a racing writer interleave, so a `replay`
    /// could observe a different order on disk than in memory.
    pub fn record(&self, msg: AgentMessage) -> Result<(), AgentError> {
        let mut messages = self.messages.lock();
        if let Some(f) = &self.file {
            let mut f = f.lock();
            writeln!(f, "{}", msg.to_jsonl()).map_err(|e| AgentError::Archive(e.to_string()))?;
        }
        messages.push(msg);
        Ok(())
    }

    /// Total archived messages.
    pub fn len(&self) -> usize {
        self.messages.lock().len()
    }

    /// Is the archive empty?
    pub fn is_empty(&self) -> bool {
        self.messages.lock().is_empty()
    }

    /// All messages of one conversation, in order.
    pub fn conversation(&self, id: &str) -> Vec<AgentMessage> {
        self.messages
            .lock()
            .iter()
            .filter(|m| m.conversation == id)
            .cloned()
            .collect()
    }

    /// Every message sent or received by an agent.
    pub fn by_agent(&self, agent: &str) -> Vec<AgentMessage> {
        self.messages
            .lock()
            .iter()
            .filter(|m| m.from == agent || m.to == agent)
            .cloned()
            .collect()
    }

    /// Distinct conversation ids, in first-seen order.
    pub fn conversations(&self) -> Vec<String> {
        let msgs = self.messages.lock();
        let mut seen = Vec::new();
        for m in msgs.iter() {
            if !seen.contains(&m.conversation) {
                seen.push(m.conversation.clone());
            }
        }
        seen
    }

    /// Reload from disk, replacing in-memory state (durable archives only).
    /// Returns the number of messages loaded.
    pub fn replay(&self) -> Result<usize, AgentError> {
        let Some(path) = &self.path else {
            return Ok(self.len());
        };
        let f = File::open(path).map_err(|e| AgentError::Archive(e.to_string()))?;
        let mut loaded = Vec::new();
        for line in BufReader::new(f).lines() {
            let line = line.map_err(|e| AgentError::Archive(e.to_string()))?;
            if let Some(m) = AgentMessage::from_jsonl(&line) {
                loaded.push(m);
            }
        }
        let n = loaded.len();
        *self.messages.lock() = loaded;
        Ok(n)
    }
}

impl std::fmt::Debug for HistoryArchive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistoryArchive")
            .field("messages", &self.len())
            .field("durable", &self.path.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageKind;
    use serde_json::json;

    fn msg(seq: u64, conv: &str, from: &str, to: &str) -> AgentMessage {
        AgentMessage {
            seq,
            conversation: conv.into(),
            from: from.into(),
            to: to.into(),
            kind: MessageKind::Task,
            content: json!({"seq": seq}),
        }
    }

    #[test]
    fn in_memory_record_and_query() {
        let a = HistoryArchive::in_memory();
        a.record(msg(0, "c1", "user", "planner")).unwrap();
        a.record(msg(1, "c1", "planner", "worker")).unwrap();
        a.record(msg(0, "c2", "user", "planner")).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.conversation("c1").len(), 2);
        assert_eq!(a.by_agent("worker").len(), 1);
        assert_eq!(a.conversations(), vec!["c1".to_string(), "c2".to_string()]);
        assert!(a.path().is_none());
    }

    #[test]
    fn durable_archive_persists_and_replays() {
        let dir = std::env::temp_dir().join(format!("dbgpt-archive-{}", std::process::id()));
        let path = dir.join("history.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let a = HistoryArchive::at_path(&path).unwrap();
            a.record(msg(0, "c1", "user", "planner")).unwrap();
            a.record(msg(1, "c1", "planner", "chart")).unwrap();
            assert_eq!(a.replay().unwrap(), 2);
        }
        // Reopen: existing content is loaded.
        let b = HistoryArchive::at_path(&path).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.conversation("c1").len(), 2);
        b.record(msg(2, "c1", "chart", "user")).unwrap();
        assert_eq!(b.replay().unwrap(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_in_memory_is_noop() {
        let a = HistoryArchive::in_memory();
        a.record(msg(0, "c", "a", "b")).unwrap();
        assert_eq!(a.replay().unwrap(), 1);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn corrupt_lines_skipped_on_load() {
        let dir = std::env::temp_dir().join(format!("dbgpt-archive-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.jsonl");
        std::fs::write(
            &path,
            format!("{}\nnot json at all\n", msg(0, "c", "a", "b").to_jsonl()),
        )
        .unwrap();
        let a = HistoryArchive::at_path(&path).unwrap();
        assert_eq!(a.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_disk_order_matches_memory_order() {
        use std::sync::Arc;
        let dir =
            std::env::temp_dir().join(format!("dbgpt-archive-race-{}", std::process::id()));
        let path = dir.join("h.jsonl");
        let _ = std::fs::remove_file(&path);
        let a = Arc::new(HistoryArchive::at_path(&path).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let a = a.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    a.record(msg(i, &format!("c{t}"), "x", "y")).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // `by_agent("x")` matches every message and preserves stored order.
        let memory_order: Vec<(String, u64)> = a
            .by_agent("x")
            .iter()
            .map(|m| (m.conversation.clone(), m.seq))
            .collect();
        assert_eq!(a.replay().unwrap(), 200);
        let disk_order: Vec<(String, u64)> = a
            .by_agent("x")
            .iter()
            .map(|m| (m.conversation.clone(), m.seq))
            .collect();
        assert_eq!(memory_order, disk_order, "disk and memory must agree on order");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_recording_is_safe() {
        use std::sync::Arc;
        let a = Arc::new(HistoryArchive::in_memory());
        let mut handles = Vec::new();
        for t in 0..4 {
            let a = a.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    a.record(msg(i, &format!("c{t}"), "x", "y")).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.len(), 100);
        assert_eq!(a.conversations().len(), 4);
    }
}
